"""ProjectContext unit tests plus cross-module rule demonstrations.

The second half is the point of the project-level pass: for each of
RPL012/RPL015/RPL017 a two-file synthetic package seeds a violation that a
per-file run (``lint_source`` on the offending file alone) provably cannot
see, while ``lint_paths`` over the package catches it through the shared
import/symbol index.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.project import (
    ProjectContext,
    build_module,
    build_project,
    module_name_candidates,
)


def write_package(root, files):
    """Materialize ``{relative path: source}`` under ``root``; return paths."""
    paths = {}
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        paths[rel] = target
    return paths


class TestModuleNaming:
    def test_candidates_are_dotted_suffixes_shortest_first(self):
        assert module_name_candidates("src/repro/serve/runtime.py") == [
            "runtime",
            "serve.runtime",
            "repro.serve.runtime",
            "src.repro.serve.runtime",
        ]

    def test_init_identifies_its_package(self):
        candidates = module_name_candidates("src/repro/obs/__init__.py")
        assert candidates[0] == "obs"
        assert "repro.obs" in candidates

    def test_bare_filename(self):
        assert module_name_candidates("conf.py") == ["conf"]


class TestProjectContext:
    def test_resolve_module_by_suffix(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "pkg/alpha.py": "X = 1\n",
                "pkg/beta.py": "Y = 2\n",
            },
        )
        project = build_project(paths.values())
        assert project.resolve_module("pkg.alpha") is not None
        assert project.resolve_module("pkg.alpha").path.endswith("alpha.py")
        assert project.resolve_module("pkg.nope") is None

    def test_ambiguous_suffix_requires_longer_name(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "left/utils.py": "A = 1\n",
                "right/utils.py": "B = 2\n",
            },
        )
        project = build_project(paths.values())
        # Two sibling ``utils`` modules: the bare stem is ambiguous and
        # resolves to neither; the qualified suffix picks each out.
        assert project.resolve_module("utils") is None
        assert project.resolve_module("left.utils").path.endswith("left/utils.py")
        assert project.resolve_module("right.utils").path.endswith("right/utils.py")

    def test_import_graph_edges_are_project_internal(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "pkg/core.py": "def f():\n    return 1\n",
                "pkg/user.py": "import json\nfrom pkg.core import f\n",
            },
        )
        project = build_project(paths.values())
        graph = project.import_graph()
        assert graph["pkg.user"] == {"pkg.core"}
        # stdlib imports (json) never appear as edges.
        assert graph["pkg.core"] == set()

    def test_resolve_function_follows_reexport_chain(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "pkg/core.py": "def helper():\n    return 1\n",
                "pkg/api.py": "from pkg.core import helper\n",
                "pkg/user.py": "from pkg.api import helper\n",
            },
        )
        project = build_project(paths.values())
        user = project.resolve_module("pkg.user")
        resolved = project.resolve_function(user, "helper")
        assert resolved is not None
        assert resolved.module.name == "pkg.core"
        assert resolved.qualname == "helper"
        assert resolved.node.name == "helper"

    def test_resolve_function_none_for_external_names(self, tmp_path):
        paths = write_package(
            tmp_path, {"pkg/user.py": "import numpy as np\n"}
        )
        project = build_project(paths.values())
        user = project.resolve_module("pkg.user")
        assert project.resolve_function(user, "np.load") is None
        assert project.resolve_function(user, "undefined_name") is None

    def test_attribute_claims_conflicts_are_dropped(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "pkg/one.py": (
                    "class A:\n"
                    "    data = None  # (I, N) agreed matrix\n"
                    "    rates = None  # (K,) per-class rates\n"
                ),
                "pkg/two.py": (
                    "class B:\n"
                    "    data = None  # (I, N, K) disagreeing tensor\n"
                ),
            },
        )
        project = build_project(paths.values())
        # "data" is claimed 2-dim and 3-dim by different classes: dropped
        # project-wide rather than guessed.  "rates" is unanimous.
        assert "data" not in project.attribute_claims
        assert project.attribute_claims["rates"].ndim == 1

    def test_broken_file_is_skipped_not_fatal(self, tmp_path):
        paths = write_package(
            tmp_path,
            {
                "pkg/good.py": "def f():\n    return 1\n",
                "pkg/bad.py": "def broken(:\n",
            },
        )
        project = build_project(paths.values())
        assert project.resolve_module("pkg.good") is not None
        assert project.resolve_module("pkg.bad") is None

    def test_build_module_indexes_methods(self):
        source = (
            "class C:\n"
            "    def m(self):\n"
            "        return 1\n"
        )
        import ast

        module = build_module("pkg/mod.py", source, ast.parse(source))
        assert module.class_method("C", "m") is not None
        assert module.class_method("C", "absent") is None
        assert isinstance(ProjectContext([module]), ProjectContext)


class TestCrossModuleDetection:
    """Each rule catches a violation only the project pass can see."""

    def test_rpl012_blocking_reached_through_imported_helper(self, tmp_path):
        files = {
            "pkg/storage.py": """\
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
            "pkg/runtime.py": """\
                from pkg.storage import save

                async def coordinate(path):
                    save(path, "state")
                """,
        }
        paths = write_package(tmp_path, files)
        findings = lint_paths([tmp_path])
        rpl012 = [f for f in findings if f.code == "RPL012"]
        assert len(rpl012) == 1
        assert rpl012[0].path.endswith("runtime.py")
        assert "save" in rpl012[0].message

        # The same file linted alone cannot resolve ``save`` and stays
        # silent — the finding exists only because of the project index.
        solo = lint_source(
            paths["pkg/runtime.py"].read_text(), path=str(paths["pkg/runtime.py"])
        )
        assert [f for f in solo if f.code == "RPL012"] == []

    def test_rpl015_raw_generator_behind_reexport_alias(self, tmp_path):
        files = {
            "pkg/streams.py": """\
                from numpy.random import default_rng as make_stream
                """,
            "pkg/sim.py": """\
                from pkg.streams import make_stream

                rng = make_stream(7)
                """,
        }
        paths = write_package(tmp_path, files)
        findings = lint_paths([tmp_path])
        rpl015 = [f for f in findings if f.code == "RPL015"]
        assert len(rpl015) == 1
        assert rpl015[0].path.endswith("sim.py")
        assert "numpy.random.default_rng" in rpl015[0].message

        solo = lint_source(
            paths["pkg/sim.py"].read_text(), path=str(paths["pkg/sim.py"])
        )
        assert [f for f in solo if f.code == "RPL015"] == []

    def test_rpl017_attribute_claim_enforced_across_modules(self, tmp_path):
        files = {
            "pkg/shapes.py": """\
                class Scenario:
                    latencies = None  # (I, N) latency matrix
                """,
            "pkg/use.py": """\
                def total(scenario):
                    return scenario.latencies[0, 1, 2]
                """,
        }
        paths = write_package(tmp_path, files)
        findings = lint_paths([tmp_path])
        rpl017 = [f for f in findings if f.code == "RPL017"]
        assert len(rpl017) == 1
        assert rpl017[0].path.endswith("use.py")
        assert "3 subscripts" in rpl017[0].message

        solo = lint_source(
            paths["pkg/use.py"].read_text(), path=str(paths["pkg/use.py"])
        )
        assert [f for f in solo if f.code == "RPL017"] == []

    def test_clean_package_stays_clean_under_project_pass(self, tmp_path):
        files = {
            "pkg/storage.py": """\
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
            "pkg/runtime.py": """\
                import asyncio

                from pkg.storage import save

                async def coordinate(path):
                    await asyncio.to_thread(save, path, "state")
                """,
        }
        write_package(tmp_path, files)
        assert lint_paths([tmp_path]) == []

    def test_noqa_still_suppresses_project_findings(self, tmp_path):
        files = {
            "pkg/storage.py": """\
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
            "pkg/runtime.py": """\
                from pkg.storage import save

                async def coordinate(path):
                    save(path, "state")  # noqa: RPL012 -- fixture suppression
                """,
        }
        write_package(tmp_path, files)
        assert [f for f in lint_paths([tmp_path]) if f.code == "RPL012"] == []
