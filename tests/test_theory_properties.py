"""Empirical checks of the paper's theoretical guarantees (Theorems 1-3).

These are statistical smoke tests on controlled synthetic bandit/trading
instances: they verify the *rates* (sub-linear growth of regret, switching
cost and fit) rather than constants.
"""

import numpy as np
import pytest

from repro.core.blocks import build_schedule
from repro.core.carbon_trading import OnlineCarbonTrading
from repro.core.model_selection import OnlineModelSelection
from repro.metrics.regret import power_law_slope
from repro.policies.trading import TradingContext


def bandit_regret(horizon: int, seed: int, switch_cost: float = 2.0) -> tuple[float, int]:
    """Run Algorithm 1 on a fixed stochastic instance; return (regret, switches)."""
    means = np.array([0.2, 0.5, 0.8, 1.1])
    rng = np.random.default_rng(seed)
    policy = OnlineModelSelection(4, horizon, switch_cost, np.random.default_rng(seed + 1))
    total = 0.0
    previous = -1
    switches = 0
    for t in range(horizon):
        model = policy.select(t)
        if model != previous:
            switches += 1
            previous = model
        loss = float(np.clip(means[model] + 0.1 * rng.standard_normal(), 0, 2))
        policy.observe(t, model, loss)
        total += means[model]
    best = means.min() * horizon
    return total - best, switches


class TestTheorem1:
    HORIZONS = (200, 800, 3200)

    @pytest.fixture(scope="class")
    def measurements(self):
        regrets, switch_costs = [], []
        for horizon in self.HORIZONS:
            per_seed = [bandit_regret(horizon, seed=10 * s) for s in range(4)]
            regrets.append(float(np.mean([r for r, _ in per_seed])))
            switch_costs.append(float(np.mean([2.0 * k for _, k in per_seed])))
        return regrets, switch_costs

    def test_regret_plus_switching_sublinear(self, measurements):
        regrets, switch_costs = measurements
        combined = np.asarray(regrets) + np.asarray(switch_costs)
        slope = power_law_slope(self.HORIZONS, combined)
        assert slope < 0.85, f"regret+switching grows with exponent {slope:.2f}"

    def test_switch_count_matches_block_bound(self):
        for horizon in self.HORIZONS:
            _, switches = bandit_regret(horizon, seed=3)
            schedule = build_schedule(horizon, 2.0, 4)
            assert switches <= schedule.num_blocks

    def test_switching_cost_exponent_near_two_thirds(self, measurements):
        """K_i = O(T^{2/3}); the measured exponent should be close."""
        _, switch_costs = measurements
        slope = power_law_slope(self.HORIZONS, switch_costs)
        assert 0.4 < slope < 0.85


def trading_run(horizon: int, seed: int) -> tuple[float, float]:
    """Run Algorithm 2 on a synthetic emission stream; return (fit, regret_proxy)."""
    rng = np.random.default_rng(seed)
    gamma1, gamma2 = OnlineCarbonTrading.step_sizes_for_horizon(horizon)
    policy = OnlineCarbonTrading(gamma1=gamma1, gamma2=gamma2)
    cap = 0.25 * 20.0 * horizon  # cap covers a quarter of expected emissions
    bought = sold = emitted = cost = 0.0
    for t in range(horizon):
        price = float(rng.uniform(5.9, 10.9))
        ctx = TradingContext(
            t=t, horizon=horizon, cap=cap,
            buy_price=price, sell_price=0.9 * price,
            prev_buy_price=price, prev_sell_price=0.9 * price,
            prev_emissions=20.0, cumulative_emissions=emitted,
            holdings=cap + bought - sold, mean_slot_emissions=20.0,
            trade_bound=80.0,
        )
        decision = policy.decide(ctx)
        emissions = float(rng.uniform(10, 30))
        policy.observe(ctx, decision, emissions)
        bought += decision.buy
        sold += decision.sell
        emitted += emissions
        cost += decision.buy * price - decision.sell * 0.9 * price
    fit = max(emitted - (cap + bought - sold), 0.0)
    return fit, cost


class TestTheorem2:
    HORIZONS = (100, 400, 1600)

    def test_fit_sublinear(self):
        fits = []
        for horizon in self.HORIZONS:
            fits.append(float(np.mean([trading_run(horizon, s)[0] for s in range(4)])))
        slope = power_law_slope(self.HORIZONS, fits)
        assert slope < 0.95, f"fit grows with exponent {slope:.2f} (fits={fits})"

    def test_fit_fraction_of_emissions_vanishes(self):
        fractions = []
        for horizon in self.HORIZONS:
            fit, _ = trading_run(horizon, seed=1)
            fractions.append(fit / (20.0 * horizon))
        assert fractions[-1] < max(fractions[0], 0.05)


class TestTheorem3:
    def test_joint_regret_sublinear_in_simulation(self, small_config):
        """Full-system regret vs Offline grows sub-linearly with T."""
        from repro.experiments.runner import run_combo, run_offline
        from repro.sim.scenario import build_scenario

        horizons = (40, 160, 640)
        regrets = []
        for horizon in horizons:
            config = small_config.with_overrides(horizon=horizon)
            scenario = build_scenario(config)
            weights = config.weights
            per_seed = []
            for seed in range(2):
                ours = run_combo(scenario, "Ours", "Ours", seed).total_cost(weights)
                offline = run_offline(scenario, seed).total_cost(weights)
                per_seed.append(ours - offline)
            regrets.append(float(np.mean(per_seed)))
        slope = power_law_slope(horizons, regrets)
        assert slope < 0.95, f"P0 regret exponent {slope:.2f} (regrets={regrets})"
