"""Property-based invariant tests for graceful degradation under faults.

Seeded ``random.Random`` instances generate arbitrary fault realizations —
per-slot feedback-loss patterns for Algorithm 1, and randomized
FeedbackLoss/EdgeOutage/DownloadFailure plans for whole simulations — and
the invariants are asserted exactly, never against recorded outputs:

* every Tsallis-INF sampling distribution opened under an arbitrary
  observed/lost interleaving lies on the probability simplex;
* the importance-weighted estimator stays finite no matter which blocks
  lose all, some, or none of their feedback (unbiasedness over observed
  slots means lost slots fold in nothing, rather than folding in zeros);
* end-to-end faulted simulations stay finite and remain bit-reproducible
  for every generated plan.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.model_selection import OnlineModelSelection
from repro.experiments.runner import run_combo
from repro.faults import DownloadFailure, EdgeOutage, FaultPlan, FeedbackLoss
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from repro.sim.scenario import build_scenario
from repro.utils.validation import check_simplex

SEEDS = [0, 1, 2, 7, 11, 23, 42, 1234]
CASES_PER_SEED = 10


def random_plan(gen: random.Random, *, num_edges: int, horizon: int) -> FaultPlan:
    """An arbitrary well-formed plan of losses, outages, and failed downloads."""
    specs = []
    for _ in range(gen.randint(0, 2)):
        start = gen.randrange(horizon - 1)
        specs.append(
            EdgeOutage(
                edge=gen.randrange(num_edges),
                start=start,
                end=gen.randint(start + 1, horizon),
            )
        )
    if gen.random() < 0.8:
        specs.append(FeedbackLoss(probability=gen.uniform(0.0, 1.0)))
    if gen.random() < 0.5:
        specs.append(
            DownloadFailure(
                probability=gen.uniform(0.0, 1.0),
                max_backoff=gen.choice([1, 2, 4, 8]),
            )
        )
    return FaultPlan(tuple(specs))


class TestAlgorithmOneUnderLoss:
    """Algorithm 1 driven directly with arbitrary observed/lost patterns."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_simplex_and_finiteness_hold(self, seed):
        gen = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            num_models = gen.randint(2, 6)
            horizon = gen.randint(10, 120)
            policy = OnlineModelSelection(
                num_models,
                horizon,
                gen.uniform(0.0, 5.0),
                np.random.default_rng(seed),
            )
            for t in range(horizon):
                model = policy.select(t)
                if gen.random() < 0.4:
                    policy.observe_lost(t, model)
                else:
                    policy.observe(t, model, gen.uniform(0.0, 3.0))
            for probabilities in policy.probability_history:
                check_simplex(probabilities, "sampling distribution under loss")
            assert np.all(np.isfinite(policy._estimator.cumulative))
            assert policy.pending_blocks == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fully_lost_run_folds_nothing(self, seed):
        gen = random.Random(seed)
        num_models = gen.randint(2, 6)
        horizon = gen.randint(10, 80)
        policy = OnlineModelSelection(
            num_models, horizon, gen.uniform(0.0, 5.0), np.random.default_rng(seed)
        )
        for t in range(horizon):
            policy.observe_lost(t, policy.select(t))
        assert np.all(policy._estimator.cumulative == 0)
        assert policy.feedback_losses == horizon


class TestFaultedSimulationProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_arbitrary_plans_stay_finite_and_reproducible(self, seed):
        gen = random.Random(seed)
        config = ScenarioConfig(
            dataset="synthetic", num_edges=2, horizon=24, num_models=3,
            n_test=300, seed=seed,
        )
        scenario = build_scenario(config)
        for _ in range(3):
            plan = random_plan(gen, num_edges=2, horizon=24)
            first = run_combo(scenario, "Ours", "Ours", seed, faults=plan)
            for series in (
                first.expected_inference_cost,
                first.emissions,
                first.bought,
                first.sold,
                first.accuracy,
            ):
                assert np.all(np.isfinite(series))
            second = run_combo(scenario, "Ours", "Ours", seed, faults=plan)
            assert result_digest(first) == result_digest(second)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tinf_baseline_survives_arbitrary_plans(self, seed):
        # The block-free Tsallis-INF baseline must also degrade gracefully.
        gen = random.Random(seed)
        config = ScenarioConfig(
            dataset="synthetic", num_edges=2, horizon=20, num_models=3,
            n_test=300, seed=seed,
        )
        scenario = build_scenario(config)
        plan = random_plan(gen, num_edges=2, horizon=20)
        result = run_combo(scenario, "TINF", "LY", seed, faults=plan)
        assert np.all(np.isfinite(result.expected_inference_cost))
        assert np.all(np.isfinite(result.emissions))
