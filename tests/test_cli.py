"""Tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.selection == "Ours"
        assert args.trading == "Ours"
        assert args.edges == 10

    def test_unknown_selection_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--selection", "Thompson"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSimulateCommand:
    def test_runs_and_prints_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--selection", "Greedy",
                "--trading", "LY",
                "--edges", "2",
                "--horizon", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Greedy-LY" in out
        assert "total_cost" in out

    def test_offline_trading_option(self, capsys):
        code = main(
            ["simulate", "--trading", "Offline", "--edges", "2", "--horizon", "16"]
        )
        assert code == 0
        assert "Offline" in capsys.readouterr().out

    def test_save_json(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        code = main(
            [
                "simulate",
                "--edges", "2",
                "--horizon", "16",
                "--save-json", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        from repro.sim.io import load_result_json

        assert load_result_json(target).horizon == 16

    def test_save_npz(self, capsys, tmp_path):
        target = tmp_path / "run.npz"
        code = main(
            ["simulate", "--edges", "2", "--horizon", "16", "--save-npz", str(target)]
        )
        assert code == 0
        from repro.sim.io import load_result_npz

        assert load_result_npz(target).num_edges == 2

    def test_switching_weight_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--edges", "2",
                "--horizon", "16",
                "--switching-weight", "4.0",
            ]
        )
        assert code == 0


class TestTraceCommand:
    def run_trace(self, tmp_path, *extra):
        target = tmp_path / "events.jsonl"
        code = main(
            ["trace", "--edges", "3", "--horizon", "16",
             "--output", str(target), "--summary", *extra]
        )
        assert code == 0
        return target

    def test_unfiltered_trace_has_all_event_types(self, capsys, tmp_path):
        from repro.obs import read_events

        target = self.run_trace(tmp_path)
        types = {event.type for event in read_events(target)}
        assert "slot_start" in types and "model_switch" in types

    def test_edge_filter_keeps_only_that_edge(self, capsys, tmp_path):
        from repro.obs import read_events

        target = self.run_trace(tmp_path, "--edge", "1")
        events = read_events(target)
        assert events, "edge 1 must produce at least its first model download"
        assert all(getattr(event, "edge", None) == 1 for event in events)
        out = capsys.readouterr().out
        assert "(edge 1)" in out

    def test_edge_filter_summary_counts_filtered_events(self, capsys, tmp_path):
        from repro.obs import read_events

        target = self.run_trace(tmp_path, "--edge", "0")
        events = read_events(target)
        out = capsys.readouterr().out
        # The summary must describe the filtered stream, not the full run.
        assert f"traced Ours-Ours: {len(events)} events (edge 0)" in out
        assert "slot_start" not in out, "edgeless event types must not be listed"

    def test_edge_filter_empty_match(self, capsys, tmp_path):
        target = self.run_trace(tmp_path, "--edge", "99")
        assert target.read_text() == ""
        out = capsys.readouterr().out
        assert "0 events (edge 99)" in out

    def test_filtered_stream_round_trips_as_jsonl(self, capsys, tmp_path):
        import json

        target = self.run_trace(tmp_path, "--edge", "2")
        for line in target.read_text().splitlines():
            payload = json.loads(line)
            assert payload["edge"] == 2
            assert payload["type"] in ("model_switch", "block_boundary")


class TestExperimentCommand:
    def test_runs_named_figure(self, capsys):
        code = main(["experiment", "fig14", "--no-cache"])
        assert code == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_workers_and_cache_flags_thread_through(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        code = main(
            ["experiment", "fig03", "--workers", "2", "--cache", str(cache_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "0 cache hits" in out
        assert any(cache_dir.glob("*/*.json")), "sweep results must be cached"

        code = main(
            ["experiment", "fig03", "--workers", "2", "--cache", str(cache_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 executed" in out, "second run must be served from the cache"

    def test_invalid_worker_count_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig14", "--workers", "0", "--no-cache"])


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage/IO errors."""

    CLEAN = "def double(x):\n    return 2 * x\n"
    DIRTY = "import time\nstamp = time.time()\n"

    def test_clean_file_exits_zero(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        assert main(["lint", str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target)]) == 1
        assert "RPL008" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "absent.py")]) == 2

    def test_unknown_select_exits_two(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        assert main(["lint", "--select", "RPL999", str(target)]) == 2

    def test_json_format(self, capsys, tmp_path):
        import json

        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", "--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total_findings"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL008" in out

    def test_sarif_format(self, capsys, tmp_path):
        import json

        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", "--format", "sarif", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        results = run["results"]
        assert [r["ruleId"] for r in results] == ["RPL008"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert results[0]["ruleIndex"] == rule_ids.index("RPL008")

    def test_baseline_workflow(self, capsys, tmp_path):
        # Write a baseline over the dirty file, then lint against it: the
        # known finding is absorbed and the exit code drops 1 -> 0.  A new
        # finding on top of the baseline gates again.
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        baseline = tmp_path / "lint-baseline.json"

        assert main(
            ["lint", "--write-baseline", str(baseline), str(target)]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()

        assert main(["lint", str(target)]) == 1
        capsys.readouterr()
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 0
        assert "matched the baseline" in capsys.readouterr().out

        target.write_text(self.DIRTY + "flag = (0.1 + 0.2) == 0.3\n")
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 1
        out = capsys.readouterr().out
        # Every finding is still reported; only the new one gates.
        assert "RPL003" in out
        assert "gating on 1 new" in out

    def test_corrupt_baseline_exits_two(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        baseline = tmp_path / "bad.json"
        baseline.write_text("not json")
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 2

    def test_python_dash_m_contract(self, tmp_path):
        """``python -m repro.lint`` exits nonzero on findings, zero when clean."""
        src_root = Path(repro.__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        clean = tmp_path / "clean.py"
        clean.write_text(self.CLEAN)

        run = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(dirty)],
            capture_output=True, text=True, env=env,
        )
        assert run.returncode == 1
        assert "RPL008" in run.stdout

        run = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(clean)],
            capture_output=True, text=True, env=env,
        )
        assert run.returncode == 0


class TestZooCommand:
    def test_prints_zoo_table(self, capsys):
        code = main(
            ["zoo", "--dataset", "mnist", "--zoo-seed", "55",
             "--n-train", "300", "--n-test", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mnist zoo" in out
        assert "cnn-32" in out

    def test_quantized_variants_shown(self, capsys):
        code = main(
            ["zoo", "--dataset", "mnist", "--zoo-seed", "55",
             "--n-train", "300", "--n-test", "300", "--bits", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "int8 variants" in out
        assert "-int8" in out


class TestFaultsCommand:
    def test_template_round_trips_through_validate(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        assert main(["faults", "template", "--output", str(plan_path)]) == 0
        assert main(["faults", "validate", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "6 spec(s), valid" in out
        assert "edge_outage" in out
        assert "trade_rejection" in out

    def test_template_prints_to_stdout(self, capsys):
        assert main(["faults", "template"]) == 0
        payload = capsys.readouterr().out
        from repro.faults import FaultPlan

        assert len(FaultPlan.from_json(payload)) == 6

    def test_malformed_plan_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"faults": [{"kind": "solar_flare"}]}', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown fault kind"):
            main(["faults", "validate", str(bad)])

    def test_run_reports_fault_events(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        main(["faults", "template", "--output", str(plan_path)])
        capsys.readouterr()
        code = main(
            ["faults", "run", str(plan_path),
             "--edges", "2", "--horizon", "48", "--selection", "Greedy",
             "--trading", "LY"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Greedy-LY" in out
        assert "Fault events" in out
        assert "fault_injected" in out

    def test_faults_command_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])


class TestCacheCommand:
    def populate(self, tmp_path):
        from repro.experiments.cache import ResultCache, cell_key
        from repro.experiments.runner import run_combo
        from repro.sim import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=2, horizon=12)
        )
        cache = ResultCache(tmp_path)
        for seed in range(2):
            cache.store(
                cell_key(scenario, "Greedy", "LY", seed),
                run_combo(scenario, "Greedy", "LY", seed),
            )
        return cache

    def test_prune_without_criteria_is_an_error(self, capsys, tmp_path):
        assert main(["cache", "prune", "--dir", str(tmp_path)]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_dry_run_reports_without_deleting(self, capsys, tmp_path):
        cache = self.populate(tmp_path)
        code = main(
            ["cache", "prune", "--dir", str(tmp_path),
             "--max-size-mb", "0", "--dry-run"]
        )
        assert code == 0
        assert "would remove 2" in capsys.readouterr().out
        assert len(cache) == 2

    def test_real_prune_deletes(self, capsys, tmp_path):
        cache = self.populate(tmp_path)
        code = main(["cache", "prune", "--dir", str(tmp_path), "--max-size-mb", "0"])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out
        assert len(cache) == 0


class TestExperimentFaultsPassthrough:
    def test_faults_and_checkpoint_reach_the_engine(self, tmp_path, monkeypatch):
        from repro.experiments import run_all

        plan_path = tmp_path / "plan.json"
        main(["faults", "template", "--output", str(plan_path)])
        journal = tmp_path / "sweep.jsonl"

        captured = {}

        def spy_main(argv):
            args = run_all.build_parser().parse_args(argv)
            captured["engine"] = run_all.make_engine(args)

        monkeypatch.setattr("repro.experiments.run_all.main", spy_main)
        code = main(
            ["experiment", "fig03", "--no-cache",
             "--faults", str(plan_path), "--checkpoint", str(journal)]
        )
        assert code == 0
        engine = captured["engine"]
        assert engine.faults is not None and len(engine.faults) == 6
        assert engine.checkpoint is not None
        assert engine.cache is None
