"""Tests for batch-normalization layers."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1D, BatchNorm2D, Dense, ReLU
from repro.nn.network import Sequential
from tests.test_nn_layers import check_layer_gradients


@pytest.fixture()
def rng():
    return np.random.default_rng(31)


class TestBatchNorm1D:
    def test_normalizes_batch_in_training(self, rng):
        layer = BatchNorm1D(4)
        x = rng.standard_normal((64, 4)) * 3.0 + 5.0
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        layer = BatchNorm1D(2)
        layer.params["W"][:] = [2.0, 3.0]
        layer.params["b"][:] = [1.0, -1.0]
        x = rng.standard_normal((32, 2))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), [1.0, -1.0], atol=1e-9)

    def test_inference_uses_running_statistics(self, rng):
        layer = BatchNorm1D(3, momentum=0.0)  # running = last batch
        x = rng.standard_normal((128, 3)) + 10.0
        layer.forward(x, training=True)
        single = layer.forward(x[:1], training=False)
        expected = (x[:1] - x.mean(axis=0)) / np.sqrt(x.var(axis=0) + layer.eps)
        np.testing.assert_allclose(single, expected, atol=1e-9)

    def test_gradients(self, rng):
        layer = BatchNorm1D(3)
        check_layer_gradients(layer, rng.standard_normal((8, 3)))

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1D(3).forward(rng.standard_normal((2, 3, 4)))

    def test_feature_count_checked(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1D(3).forward(rng.standard_normal((4, 5)))

    @pytest.mark.parametrize(
        "kwargs", [{"num_features": 0}, {"momentum": 1.0}, {"eps": 0.0}]
    )
    def test_invalid_params(self, kwargs):
        full = {"num_features": 3, **kwargs}
        with pytest.raises(ValueError):
            BatchNorm1D(**full)


class TestBatchNorm2D:
    def test_per_channel_normalization(self, rng):
        layer = BatchNorm2D(3)
        x = rng.standard_normal((16, 3, 4, 4)) * 2.0 + 7.0
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-9)

    def test_gradients(self, rng):
        layer = BatchNorm2D(2)
        check_layer_gradients(layer, rng.standard_normal((4, 2, 3, 3)))

    def test_shape_preserved(self, rng):
        layer = BatchNorm2D(5)
        x = rng.standard_normal((2, 5, 6, 6))
        assert layer.forward(x, training=True).shape == x.shape

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2D(3).forward(rng.standard_normal((2, 3)))

    def test_backward_without_forward(self, rng):
        with pytest.raises(RuntimeError):
            BatchNorm2D(3).backward(rng.standard_normal((2, 3, 4, 4)))


class TestBatchNormInNetwork:
    def test_trains_inside_sequential(self, rng):
        """A BN-equipped head trains end-to-end (loss decreases)."""
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.nn.optimizers import SGD

        net = Sequential(
            [Dense(6, 16, rng), BatchNorm1D(16), ReLU(), Dense(16, 3, rng)]
        )
        x = rng.standard_normal((128, 6))
        labels = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        loss_fn = SoftmaxCrossEntropy()
        optimizer = SGD(lr=0.1, momentum=0.9)
        losses = []
        for _ in range(60):
            logits = net.forward(x, training=True)
            value, grad = loss_fn(logits, labels)
            net.backward(grad)
            optimizer.step(net.layers)
            losses.append(value)
        assert losses[-1] < 0.5 * losses[0]

    def test_num_params_counts_gamma_beta(self, rng):
        layer = BatchNorm1D(8)
        assert layer.num_params() == 16
