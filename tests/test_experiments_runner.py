"""Tests for the experiment runner and policy factories."""

import numpy as np
import pytest

from repro.experiments.runner import (
    SELECTION_NAMES,
    TRADING_NAMES,
    make_selection_policies,
    make_trading_policy,
    run_combo,
    run_many,
    run_offline,
)
from repro.utils.rng import RngFactory


class TestFactories:
    @pytest.mark.parametrize("name", SELECTION_NAMES)
    def test_selection_factory_all_names(self, name, small_scenario):
        policies = make_selection_policies(name, small_scenario, RngFactory(0))
        assert len(policies) == small_scenario.num_edges
        for policy in policies:
            assert policy.num_models == small_scenario.num_models

    def test_selection_factory_unknown(self, small_scenario):
        with pytest.raises(ValueError, match="unknown selection"):
            make_selection_policies("Thompson", small_scenario, RngFactory(0))

    @pytest.mark.parametrize("name", TRADING_NAMES)
    def test_trading_factory_all_names(self, name, small_scenario):
        policy = make_trading_policy(name, small_scenario, RngFactory(0))
        assert policy is not None

    def test_trading_factory_unknown(self, small_scenario):
        with pytest.raises(ValueError, match="unknown trading"):
            make_trading_policy("HODL", small_scenario, RngFactory(0))


class TestRunCombo:
    def test_basic_run(self, small_scenario):
        result = run_combo(small_scenario, "Ran", "Ran", seed=0)
        assert result.horizon == small_scenario.horizon
        assert result.label == "Ran-Ran"

    def test_custom_label(self, small_scenario):
        result = run_combo(small_scenario, "Ours", "Ours", seed=0, label="mine")
        assert result.label == "mine"

    def test_run_many_length(self, small_scenario):
        results = run_many(small_scenario, "Greedy", "LY", seeds=[0, 1])
        assert len(results) == 2

    def test_run_many_empty_seeds_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            run_many(small_scenario, "Greedy", "LY", seeds=[])

    def test_seeds_change_outcomes(self, small_scenario):
        a = run_combo(small_scenario, "Ran", "Ran", seed=0)
        b = run_combo(small_scenario, "Ran", "Ran", seed=1)
        assert not np.array_equal(a.selections, b.selections)

    def test_same_seed_reproduces(self, small_scenario):
        a = run_combo(small_scenario, "Ours", "Ours", seed=3)
        b = run_combo(small_scenario, "Ours", "Ours", seed=3)
        np.testing.assert_allclose(a.trading_cost, b.trading_cost)
        np.testing.assert_array_equal(a.selections, b.selections)


class TestRunOffline:
    def test_offline_is_neutral(self, small_scenario):
        result = run_offline(small_scenario, seed=0)
        assert result.final_fit() == pytest.approx(0.0, abs=1e-6)

    def test_offline_hosts_fixed_models(self, small_scenario):
        result = run_offline(small_scenario, seed=0)
        for i in range(small_scenario.num_edges):
            assert len(np.unique(result.selections[:, i])) == 1
        # One download per edge (first slot) and none after.
        assert result.total_switches() == small_scenario.num_edges

    def test_offline_trading_cheaper_than_naive(self, small_scenario):
        """The LP plan must not cost more than buying the deficit at the
        per-slot average price."""
        result = run_offline(small_scenario, seed=0)
        deficit = max(
            result.emissions.sum() - small_scenario.config.carbon_cap_kg, 0.0
        )
        naive = deficit * result.buy_prices.mean()
        assert result.trading_cost.sum() <= naive + 1e-6

    def test_offline_beats_online_total_cost(self, small_scenario):
        """Offline must lower-bound our online algorithm's cost."""
        weights = small_scenario.config.weights
        offline = run_offline(small_scenario, seed=0).total_cost(weights)
        ours = run_combo(small_scenario, "Ours", "Ours", seed=0).total_cost(weights)
        assert offline <= ours
