"""Tests for the time-slotted simulator."""

import numpy as np
import pytest

from repro.bandits import RandomSelection
from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.offline import FixedSelection, NullTrading
from repro.sim.simulator import Simulator
from repro.utils.rng import RngFactory


def make_ours_policies(scenario, seed=0):
    factory = RngFactory(seed)
    return [
        OnlineModelSelection(
            scenario.num_models,
            scenario.horizon,
            float(scenario.effective_switch_costs()[i]),
            factory.get(f"sel-{i}"),
        )
        for i in range(scenario.num_edges)
    ]


class TestSimulatorBasics:
    def test_result_shapes(self, small_scenario):
        sim = Simulator(
            small_scenario,
            make_ours_policies(small_scenario),
            OnlineCarbonTrading(),
            run_seed=0,
        )
        result = sim.run()
        t, i = small_scenario.horizon, small_scenario.num_edges
        assert result.emissions.shape == (t,)
        assert result.selections.shape == (t, i)
        assert result.switches.shape == (t, i)

    def test_first_slot_downloads_everywhere(self, small_scenario):
        result = Simulator(
            small_scenario,
            make_ours_policies(small_scenario),
            NullTrading(),
            run_seed=1,
        ).run()
        assert result.switches[0].all()

    def test_policy_count_mismatch_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="one selection policy per edge"):
            Simulator(
                small_scenario,
                make_ours_policies(small_scenario)[:-1],
                NullTrading(),
            )

    def test_model_count_mismatch_rejected(self, small_scenario):
        bad = [
            RandomSelection(small_scenario.num_models + 1, np.random.default_rng(0))
            for _ in range(small_scenario.num_edges)
        ]
        with pytest.raises(ValueError, match="models"):
            Simulator(small_scenario, bad, NullTrading())

    def test_deterministic_given_seed(self, small_scenario):
        def run_once():
            return Simulator(
                small_scenario,
                make_ours_policies(small_scenario, seed=5),
                OnlineCarbonTrading(),
                run_seed=5,
            ).run()

        a, b = run_once(), run_once()
        np.testing.assert_allclose(a.emissions, b.emissions)
        np.testing.assert_array_equal(a.selections, b.selections)
        np.testing.assert_allclose(a.trading_cost, b.trading_cost)


class TestAccountingConsistency:
    @pytest.fixture(scope="class")
    def result(self, small_scenario):
        return Simulator(
            small_scenario,
            make_ours_policies(small_scenario, seed=2),
            OnlineCarbonTrading(),
            run_seed=2,
        ).run()

    def test_trading_cost_matches_prices(self, result):
        expected = result.bought * result.buy_prices - result.sold * result.sell_prices
        np.testing.assert_allclose(result.trading_cost, expected)

    def test_trades_within_bound(self, result, small_scenario):
        assert np.all(result.bought <= small_scenario.trade_bound + 1e-9)
        assert np.all(result.sold <= small_scenario.trade_bound + 1e-9)
        assert np.all(result.bought >= 0)
        assert np.all(result.sold >= 0)

    def test_switching_cost_matches_switches(self, result, small_scenario):
        effective = small_scenario.effective_switch_costs()
        expected = (result.switches * effective[None, :]).sum(axis=1)
        np.testing.assert_allclose(result.switching_cost, expected)

    def test_compute_cost_matches_selected_latencies(self, result, small_scenario):
        expected = np.zeros(result.horizon)
        for t in range(result.horizon):
            for i in range(result.num_edges):
                expected[t] += small_scenario.latencies[i, result.selections[t, i]]
        np.testing.assert_allclose(result.compute_cost, expected)

    def test_expected_inference_matches_profiles(self, result, small_scenario):
        means = small_scenario.expected_losses
        expected = means[result.selections].sum(axis=1)
        np.testing.assert_allclose(result.expected_inference_cost, expected)

    def test_emissions_positive(self, result):
        assert np.all(result.emissions > 0)

    def test_accuracy_in_unit_interval(self, result):
        assert np.nanmin(result.accuracy) >= 0.0
        assert np.nanmax(result.accuracy) <= 1.0

    def test_arrivals_at_least_one_per_edge(self, result):
        assert np.all(result.arrivals >= result.num_edges)


class TestCommonRandomNumbers:
    def test_arrivals_identical_across_policies(self, small_scenario):
        """Different policies must face identical workloads (CRN)."""
        fixed = [
            FixedSelection(small_scenario.num_models, 0)
            for _ in range(small_scenario.num_edges)
        ]
        random_pols = [
            RandomSelection(small_scenario.num_models, np.random.default_rng(i))
            for i in range(small_scenario.num_edges)
        ]
        a = Simulator(small_scenario, fixed, NullTrading(), run_seed=7).run()
        b = Simulator(small_scenario, random_pols, NullTrading(), run_seed=7).run()
        np.testing.assert_allclose(a.arrivals, b.arrivals)

    def test_same_policy_same_losses(self, small_scenario):
        fixed = lambda: [  # noqa: E731
            FixedSelection(small_scenario.num_models, 1)
            for _ in range(small_scenario.num_edges)
        ]
        a = Simulator(small_scenario, fixed(), NullTrading(), run_seed=7).run()
        b = Simulator(small_scenario, fixed(), NullTrading(), run_seed=7).run()
        np.testing.assert_allclose(
            a.realized_inference_loss, b.realized_inference_loss
        )


class TestLiveInference:
    def test_lookup_equals_live_forward_pass(self, mnist_scenario):
        """The memoized loss table must be bit-identical to live inference."""
        fixed = lambda: [  # noqa: E731
            FixedSelection(mnist_scenario.num_models, i % mnist_scenario.num_models)
            for i in range(mnist_scenario.num_edges)
        ]
        lookup = Simulator(
            mnist_scenario, fixed(), NullTrading(), run_seed=3, live_inference=False
        ).run()
        live = Simulator(
            mnist_scenario, fixed(), NullTrading(), run_seed=3, live_inference=True
        ).run()
        np.testing.assert_allclose(
            lookup.realized_inference_loss, live.realized_inference_loss, atol=1e-12
        )

    def test_live_inference_requires_pool(self, small_scenario):
        fixed = [
            FixedSelection(small_scenario.num_models, 0)
            for _ in range(small_scenario.num_edges)
        ]
        sim = Simulator(
            small_scenario, fixed, NullTrading(), run_seed=0, live_inference=True
        )
        with pytest.raises(ValueError):
            sim.run()
