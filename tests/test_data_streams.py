"""Tests for arrival processes and data streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.streams import ArrivalProcess, DataStream, StreamBatch


class TestStreamBatch:
    def test_size(self):
        batch = StreamBatch(np.zeros((3, 1, 8, 8)), np.zeros(3, dtype=int))
        assert batch.size == 3

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            StreamBatch(np.zeros((3, 1, 8, 8)), np.zeros(2, dtype=int))


class TestArrivalProcess:
    def test_sample_at_least_one(self):
        process = ArrivalProcess(np.full(10, 0.01), np.random.default_rng(0))
        counts = [process.sample(t) for t in range(10)]
        assert min(counts) >= 1

    def test_sample_mean_tracks_trace(self):
        process = ArrivalProcess(np.full(2000, 40.0), np.random.default_rng(1))
        counts = [process.sample(t) for t in range(2000)]
        assert np.mean(counts) == pytest.approx(40.0, rel=0.05)

    def test_mean_wraps_around(self):
        process = ArrivalProcess(np.array([5.0, 10.0]), np.random.default_rng(2))
        assert process.mean(0) == process.mean(2) == 5.0
        assert process.mean(3) == 10.0

    def test_horizon(self):
        assert ArrivalProcess(np.ones(7), np.random.default_rng(0)).horizon == 7

    def test_negative_means_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(np.array([-1.0]), np.random.default_rng(0))

    def test_matrix_means_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(np.ones((2, 2)), np.random.default_rng(0))

    @given(st.floats(0.5, 200.0))
    @settings(max_examples=20, deadline=None)
    def test_samples_always_positive_integers(self, mean):
        process = ArrivalProcess(np.full(5, mean), np.random.default_rng(3))
        for t in range(5):
            count = process.sample(t)
            assert isinstance(count, int)
            assert count >= 1


class TestDataStream:
    @pytest.fixture()
    def stream(self):
        rng = np.random.default_rng(4)
        features = rng.random((100, 1, 8, 8))
        labels = rng.integers(0, 10, 100)
        return DataStream(features, labels, np.random.default_rng(5))

    def test_draw_shapes(self, stream):
        batch = stream.draw(17)
        assert batch.features.shape == (17, 1, 8, 8)
        assert batch.labels.shape == (17,)

    def test_draw_zero_rejected(self, stream):
        with pytest.raises(ValueError):
            stream.draw(0)

    def test_pool_size(self, stream):
        assert stream.pool_size == 100

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DataStream(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int), np.random.default_rng(0))

    def test_misaligned_pool_rejected(self):
        with pytest.raises(ValueError):
            DataStream(np.zeros((5, 1, 8, 8)), np.zeros(4, dtype=int), np.random.default_rng(0))

    def test_draws_cover_pool_eventually(self, stream):
        batch = stream.draw(5000)
        # With replacement over a 100-item pool, 5000 draws hit everything.
        assert len(np.unique((batch.features.reshape(5000, -1) @ np.arange(64)))) > 50
