"""Tests for model profiles."""

import numpy as np
import pytest

from repro.data.synthetic import make_mnist_like
from repro.nn.losses import squared_label_loss
from repro.nn.models import build_mlp
from repro.sim.profiles import ModelProfile, profiles_from_networks, synthetic_profiles


class TestModelProfile:
    def test_statistics(self):
        profile = ModelProfile(
            name="m",
            size_bytes=100.0,
            loss_per_sample=np.array([0.0, 1.0, 2.0]),
            correct_per_sample=np.array([True, True, False]),
        )
        assert profile.expected_loss == pytest.approx(1.0)
        assert profile.accuracy == pytest.approx(2 / 3)
        assert profile.pool_size == 3
        assert profile.loss_std > 0

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("m", 100.0, np.array([-0.1]), np.array([True]))

    def test_misaligned_correctness_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("m", 100.0, np.array([0.1, 0.2]), np.array([True]))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("m", 0.0, np.array([0.1]), np.array([True]))


class TestProfilesFromNetworks:
    def test_lookup_matches_live_forward_pass(self):
        """The profile table must be a memoized forward pass, exactly."""
        rng = np.random.default_rng(0)
        data = make_mnist_like(rng, n_train=100, n_test=150)
        net = build_mlp(np.random.default_rng(1), hidden=16)
        [profile] = profiles_from_networks([net], data.x_test, data.y_test)

        idx = np.random.default_rng(2).integers(0, 150, size=40)
        proba = net.predict_proba(data.x_test[idx])
        live = squared_label_loss(proba, data.y_test[idx])
        np.testing.assert_allclose(profile.loss_per_sample[idx], live, atol=1e-12)

        live_correct = np.argmax(proba, axis=1) == data.y_test[idx]
        np.testing.assert_array_equal(profile.correct_per_sample[idx], live_correct)

    def test_size_matches_network(self):
        rng = np.random.default_rng(3)
        data = make_mnist_like(rng, n_train=50, n_test=60)
        net = build_mlp(np.random.default_rng(4), hidden=8)
        [profile] = profiles_from_networks([net], data.x_test, data.y_test)
        assert profile.size_bytes == net.size_bytes()
        assert profile.network is net

    def test_empty_pool_rejected(self):
        net = build_mlp(np.random.default_rng(5), hidden=8)
        with pytest.raises(ValueError):
            profiles_from_networks([net], np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))


class TestSyntheticProfiles:
    def test_count_and_pool(self):
        profiles = synthetic_profiles(5, np.random.default_rng(6), pool_size=300)
        assert len(profiles) == 5
        assert all(p.pool_size == 300 for p in profiles)

    def test_losses_in_squared_loss_range(self):
        profiles = synthetic_profiles(4, np.random.default_rng(7))
        for p in profiles:
            assert p.loss_per_sample.min() >= 0.0
            assert p.loss_per_sample.max() <= 2.0

    def test_loss_means_spread(self):
        profiles = synthetic_profiles(6, np.random.default_rng(8))
        means = [p.expected_loss for p in profiles]
        assert max(means) - min(means) > 0.5

    def test_custom_loss_means_respected(self):
        means = np.array([0.3, 0.9])
        profiles = synthetic_profiles(
            2, np.random.default_rng(9), pool_size=20000, loss_means=means
        )
        for p, target in zip(profiles, means):
            assert p.expected_loss == pytest.approx(target, abs=0.05)

    def test_sizes_anticorrelated_with_loss(self):
        """Bigger models must be better (as in the trained zoos)."""
        profiles = synthetic_profiles(6, np.random.default_rng(10))
        losses = np.array([p.expected_loss for p in profiles])
        sizes = np.array([p.size_bytes for p in profiles])
        assert np.corrcoef(losses, sizes)[0, 1] < -0.7

    def test_accuracy_anticorrelated_with_loss(self):
        profiles = synthetic_profiles(6, np.random.default_rng(11), pool_size=5000)
        losses = np.array([p.expected_loss for p in profiles])
        accs = np.array([p.accuracy for p in profiles])
        assert np.corrcoef(losses, accs)[0, 1] < -0.9

    def test_invalid_loss_means(self):
        with pytest.raises(ValueError):
            synthetic_profiles(2, np.random.default_rng(0), loss_means=np.array([0.5]))
        with pytest.raises(ValueError):
            synthetic_profiles(
                2, np.random.default_rng(0), loss_means=np.array([0.5, 2.5])
            )
