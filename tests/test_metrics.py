"""Tests for metrics (regret, summaries)."""

import numpy as np
import pytest

from repro.core import OnlineCarbonTrading
from repro.metrics.regret import final_regret, regret_series, sublinear_reference
from repro.metrics.summary import summarize_many, summarize_run
from repro.offline import NullTrading
from repro.sim.config import CostWeights
from repro.sim.simulator import Simulator
from tests.test_sim_simulator import make_ours_policies


@pytest.fixture(scope="module")
def pair(small_scenario_module):
    scenario = small_scenario_module
    ours = Simulator(
        scenario, make_ours_policies(scenario, seed=1), OnlineCarbonTrading(), run_seed=1
    ).run()
    reference = Simulator(
        scenario, make_ours_policies(scenario, seed=2), NullTrading(), run_seed=1,
        label="ref",
    ).run()
    return ours, reference


@pytest.fixture(scope="module")
def small_scenario_module():
    from repro.sim.config import ScenarioConfig
    from repro.sim.scenario import build_scenario

    return build_scenario(
        ScenarioConfig(dataset="synthetic", num_edges=3, horizon=40, num_models=4, n_test=500)
    )


class TestRegret:
    def test_series_is_cumulative_difference(self, pair):
        ours, reference = pair
        weights = CostWeights()
        series = regret_series(ours, reference, weights)
        expected = ours.cumulative_cost(weights) - reference.cumulative_cost(weights)
        np.testing.assert_allclose(series, expected)

    def test_final_regret_matches_series(self, pair):
        ours, reference = pair
        weights = CostWeights()
        assert final_regret(ours, reference, weights) == pytest.approx(
            regret_series(ours, reference, weights)[-1]
        )

    def test_horizon_mismatch_rejected(self, pair):
        ours, _ = pair
        weights = CostWeights()
        with pytest.raises(ValueError):
            regret_series(ours, _shorten(ours), weights)


def _shorten(result):
    import dataclasses

    kwargs = dataclasses.asdict(result)
    for key, value in kwargs.items():
        if isinstance(value, np.ndarray) and value.shape and value.shape[0] == result.horizon:
            kwargs[key] = value[:-1]
    kwargs["horizon"] = result.horizon - 1
    from repro.sim.results import SimulationResult

    return SimulationResult(**kwargs)


class TestSublinearReference:
    def test_anchor_value_at_horizon(self):
        curve = sublinear_reference(100, 2 / 3, anchor_value=50.0)
        assert curve[-1] == pytest.approx(50.0)
        assert curve.shape == (100,)

    def test_concave_growth(self):
        curve = sublinear_reference(100, 1 / 3, anchor_value=10.0)
        increments = np.diff(curve)
        assert np.all(np.diff(increments) <= 1e-12)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            sublinear_reference(10, 1.0, 1.0)


class TestSummaries:
    def test_summarize_run_fields(self, pair):
        ours, _ = pair
        weights = CostWeights()
        summary = summarize_run(ours, weights)
        assert summary.total_cost == pytest.approx(ours.total_cost(weights))
        assert summary.switches == ours.total_switches()
        assert 0.0 <= summary.mean_accuracy <= 1.0
        assert set(summary.as_dict()) >= {"label", "total_cost", "final_fit"}

    def test_summarize_many_averages(self, pair):
        ours, reference = pair
        weights = CostWeights()
        combined = summarize_many([ours, reference], weights, label="avg")
        expected = 0.5 * (ours.total_cost(weights) + reference.total_cost(weights))
        assert combined.total_cost == pytest.approx(expected)
        assert combined.label == "avg"

    def test_summarize_many_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_many([], CostWeights())


class TestPowerLawSlope:
    def test_recovers_known_exponent(self):
        from repro.metrics.regret import power_law_slope

        horizons = np.array([100, 200, 400, 800])
        values = 3.0 * horizons**0.66
        assert power_law_slope(horizons, values) == pytest.approx(0.66, abs=1e-9)

    def test_fewer_than_two_positive_points_is_zero(self):
        from repro.metrics.regret import power_law_slope

        assert power_law_slope([10, 20], [0.0, 5.0]) == 0.0
        assert power_law_slope([10, 20], [0.0, 0.0]) == 0.0

    def test_misaligned_rejected(self):
        from repro.metrics.regret import power_law_slope

        with pytest.raises(ValueError):
            power_law_slope([1, 2, 3], [1, 2])

    def test_negative_values_ignored(self):
        from repro.metrics.regret import power_law_slope

        horizons = [100, 200, 400]
        values = [-5.0, 10.0, 20.0]
        assert power_law_slope(horizons, values) == pytest.approx(1.0, abs=1e-9)
