"""Tests for the parallel seed-sweep engine.

The contract under test is the strongest one the simulator supports:
results come back in cell order and are *bit-identical* — byte-for-byte
equal canonical serializations — across worker counts and cache hits.
"""

from __future__ import annotations

import pytest

from repro.experiments import engine as engine_module
from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    SweepCell,
    SweepEngine,
    get_default_engine,
    use_engine,
)
from repro.experiments.runner import run_combo, run_many
from repro.sim.io import canonical_result_json

SWEEP_COMBOS = (("Ours", "Ours"), ("UCB", "LY"), ("Ran", "TH"), ("Greedy", "Ran"))
SWEEP_SEEDS = list(range(10))


def sweep_cells() -> list[SweepCell]:
    """The acceptance sweep: 4 combos x 10 seeds = 40 cells."""
    return [
        SweepCell(sel, trade, seed, label=f"{sel}-{trade}")
        for sel, trade in SWEEP_COMBOS
        for seed in SWEEP_SEEDS
    ]


def canon(results) -> list[str]:
    return [canonical_result_json(r) for r in results]


class TestSerialEngine:
    def test_matches_run_combo_per_seed(self, small_scenario):
        engine = SweepEngine(workers=1)
        results = engine.run_many(small_scenario, "UCB", "LY", [0, 1, 2], label="UCB-LY")
        direct = [
            run_combo(small_scenario, "UCB", "LY", seed, label="UCB-LY")
            for seed in (0, 1, 2)
        ]
        assert canon(results) == canon(direct)

    def test_workers_one_never_builds_a_pool(self, small_scenario, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("workers=1 must not construct a process pool")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", forbidden)
        engine = SweepEngine(workers=1)
        results = engine.run_many(small_scenario, "Ours", "Ours", [0, 1])
        assert len(results) == 2

    def test_empty_seeds_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="seed"):
            SweepEngine().run_many(small_scenario, "Ours", "Ours", [])

    def test_unknown_policy_rejected_before_any_run(self, small_scenario):
        engine = SweepEngine()
        with pytest.raises(ValueError, match="selection"):
            engine.run_many(small_scenario, "Thompson", "Ours", [0])
        with pytest.raises(ValueError, match="trading"):
            engine.run_many(small_scenario, "Ours", "Hedge", [0])
        assert engine.stats.cells == 0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepEngine(workers=0)

    def test_empty_cell_list_is_a_noop(self, small_scenario):
        assert SweepEngine().run_cells(small_scenario, []) == []


class TestParallelEngine:
    def test_workers2_bit_identical_to_serial(self, small_scenario):
        serial = SweepEngine(workers=1).run_many(
            small_scenario, "Ours", "Ours", [0, 1, 2, 3], label="Ours"
        )
        parallel = SweepEngine(workers=2).run_many(
            small_scenario, "Ours", "Ours", [0, 1, 2, 3], label="Ours"
        )
        assert canon(parallel) == canon(serial)

    def test_acceptance_sweep_parallel_and_cached(self, small_scenario, tmp_path):
        """4 combos x 10 seeds: workers=4 == serial; second run is all hits."""
        cells = sweep_cells()
        serial = SweepEngine(workers=1).run_cells(small_scenario, cells)
        serial_canon = canon(serial)
        assert len(serial_canon) == 40

        first = SweepEngine(workers=4, cache=ResultCache(tmp_path / "cache"))
        assert canon(first.run_cells(small_scenario, cells)) == serial_canon
        assert first.stats.executed == 40
        assert first.stats.cache_stores == 40

        second = SweepEngine(workers=4, cache=ResultCache(tmp_path / "cache"))
        assert canon(second.run_cells(small_scenario, cells)) == serial_canon
        assert second.stats.executed == 0, "second invocation must simulate nothing"
        assert second.stats.cache_hits == 40


class TestCacheIntegration:
    def test_partial_hits_execute_only_misses(self, small_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        warm = SweepEngine(cache=cache)
        warm.run_many(small_scenario, "Ours", "Ours", [0, 1])
        follow = SweepEngine(cache=ResultCache(tmp_path))
        results = follow.run_many(small_scenario, "Ours", "Ours", [0, 1, 2])
        assert follow.stats.cache_hits == 2
        assert follow.stats.executed == 1
        assert canon(results) == canon(
            SweepEngine().run_many(small_scenario, "Ours", "Ours", [0, 1, 2])
        )

    def test_stats_accumulate_across_calls(self, small_scenario, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        engine.run_many(small_scenario, "Ours", "Ours", [0])
        engine.run_many(small_scenario, "Ours", "Ours", [0])
        assert engine.stats.cells == 2
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 1


class TestDefaultEngineRouting:
    def test_run_many_routes_through_scoped_engine(self, small_scenario):
        engine = SweepEngine()
        with use_engine(engine):
            assert get_default_engine() is engine
            run_many(small_scenario, "Ours", "Ours", [0, 1])
        assert engine.stats.cells == 2
        assert get_default_engine() is not engine

    def test_explicit_engine_wins_over_default(self, small_scenario):
        scoped = SweepEngine()
        explicit = SweepEngine()
        with use_engine(scoped):
            run_many(small_scenario, "Ours", "Ours", [0], engine=explicit)
        assert scoped.stats.cells == 0
        assert explicit.stats.cells == 1

    def test_run_many_rejects_empty_seed_list(self, small_scenario):
        with pytest.raises(ValueError, match="seed"):
            run_many(small_scenario, "Ours", "Ours", [])
