"""Tests for the offline trading LP (greedy-exchange vs scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.lp import (
    solve_offline_trading,
    solve_offline_trading_scipy,
)
from repro.traces.carbon_prices import PriceSeries


def make_prices(buy):
    buy = np.asarray(buy, dtype=float)
    return PriceSeries(buy=buy, sell=0.9 * buy)


class TestGreedySolver:
    def test_no_deficit_no_required_purchase(self):
        prices = make_prices([8.0, 8.0])
        solution = solve_offline_trading(np.array([1.0, 1.0]), prices, cap=100.0, trade_bound=10.0)
        # Net purchase can be negative (pure arbitrage) but never leaves a deficit.
        emissions = 2.0
        assert emissions <= 100.0 + solution.net_purchase + 1e-9

    def test_deficit_covered_at_cheapest_slots(self):
        prices = make_prices([10.0, 6.0, 8.0])
        emissions = np.array([10.0, 10.0, 10.0])
        solution = solve_offline_trading(emissions, prices, cap=15.0, trade_bound=20.0)
        # Deficit 15 covered: 20 units? No - cheapest slot (t=1, price 6) holds 15.
        assert solution.buy[1] >= 15.0 - 1e-9
        assert solution.net_purchase >= 15.0 - 1e-9

    def test_arbitrage_when_profitable(self):
        # Sell at 0.9*10.9 = 9.81 > buy at 5.9: profitable pair exists.
        prices = make_prices([5.9, 10.9])
        solution = solve_offline_trading(np.zeros(2), prices, cap=0.0, trade_bound=5.0)
        assert solution.buy[0] == pytest.approx(5.0)
        assert solution.sell[1] == pytest.approx(5.0)
        assert solution.cost < 0  # net profit

    def test_no_arbitrage_when_unprofitable(self):
        prices = make_prices([8.0, 8.1])  # sell max 7.29 < buy min 8.0
        solution = solve_offline_trading(np.zeros(2), prices, cap=0.0, trade_bound=5.0)
        assert solution.buy.sum() == pytest.approx(0.0)
        assert solution.sell.sum() == pytest.approx(0.0)

    def test_surplus_cap_sold_at_dearest_slots(self):
        """A slack cap is spare allowances: the optimum sells them."""
        prices = make_prices([8.0, 10.0, 6.0])
        solution = solve_offline_trading(
            np.array([1.0, 1.0, 1.0]), prices, cap=10.0, trade_bound=5.0
        )
        # Surplus 7 sold: 5 at t=1 (sell 9.0), 2 at t=0 (sell 7.2); then
        # arbitrage tops up t=0's remaining sale capacity (7.2) against
        # cheap purchases at t=2 (6.0).
        assert solution.sell[1] == pytest.approx(5.0)
        assert solution.sell[0] == pytest.approx(5.0)
        assert solution.buy[2] == pytest.approx(3.0)
        expected = -(5 * 9.0 + 2 * 7.2) + 3 * 6.0 - 3 * 7.2
        assert solution.cost == pytest.approx(expected)
        # Cross-check against the LP.
        lp = solve_offline_trading_scipy(
            np.array([1.0, 1.0, 1.0]), prices, cap=10.0, trade_bound=5.0
        )
        assert solution.cost == pytest.approx(lp.cost, abs=1e-8)

    def test_surplus_beyond_sale_capacity_is_kept(self):
        prices = make_prices([8.0])
        solution = solve_offline_trading(np.zeros(1), prices, cap=100.0, trade_bound=5.0)
        assert solution.sell[0] == pytest.approx(5.0)  # capacity-limited

    def test_infeasible_deficit_raises(self):
        prices = make_prices([8.0, 8.0])
        with pytest.raises(ValueError, match="infeasible"):
            solve_offline_trading(np.array([100.0, 100.0]), prices, cap=0.0, trade_bound=1.0)

    def test_bounds_respected(self):
        prices = make_prices(np.linspace(5.9, 10.9, 10))
        emissions = np.full(10, 5.0)
        solution = solve_offline_trading(emissions, prices, cap=0.0, trade_bound=7.0)
        assert np.all(solution.buy <= 7.0 + 1e-9)
        assert np.all(solution.sell <= 7.0 + 1e-9)

    def test_misaligned_emissions_rejected(self):
        prices = make_prices([8.0, 8.0])
        with pytest.raises(ValueError):
            solve_offline_trading(np.zeros(3), prices, cap=0.0, trade_bound=1.0)


class TestAgainstScipy:
    @given(
        buy=st.lists(st.floats(5.9, 10.9), min_size=2, max_size=12),
        emissions_scale=st.floats(0.0, 30.0),
        cap=st.floats(0.0, 200.0),
        bound=st.floats(1.0, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_matches_lp_optimum(self, buy, emissions_scale, cap, bound):
        """The greedy-exchange cost equals the scipy LP optimum."""
        prices = make_prices(buy)
        horizon = prices.horizon
        rng = np.random.default_rng(0)
        emissions = emissions_scale * rng.random(horizon)
        deficit = max(emissions.sum() - cap, 0.0)
        if deficit > horizon * bound:
            return  # infeasible instance; covered by the dedicated test
        greedy = solve_offline_trading(emissions, prices, cap, bound)
        lp = solve_offline_trading_scipy(emissions, prices, cap, bound)
        assert greedy.cost == pytest.approx(lp.cost, abs=1e-6)

    def test_known_instance(self):
        prices = make_prices([6.0, 9.0, 10.5, 7.0])
        emissions = np.array([5.0, 5.0, 5.0, 5.0])
        greedy = solve_offline_trading(emissions, prices, cap=8.0, trade_bound=10.0)
        lp = solve_offline_trading_scipy(emissions, prices, cap=8.0, trade_bound=10.0)
        assert greedy.cost == pytest.approx(lp.cost, abs=1e-8)
        # Deficit 12 bought at t=0 (10 units @6) then t=3 (2 units @7);
        # plus arbitrage: sell at t=2 (9.45) vs remaining cheap buys (7.0).
        assert greedy.buy[0] == pytest.approx(10.0)

    def test_solution_satisfies_constraint(self):
        prices = make_prices(np.linspace(10.9, 5.9, 8))
        rng = np.random.default_rng(1)
        emissions = 10 * rng.random(8)
        solution = solve_offline_trading(emissions, prices, cap=20.0, trade_bound=15.0)
        assert emissions.sum() <= 20.0 + solution.net_purchase + 1e-9
