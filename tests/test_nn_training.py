"""Tests for the training loop."""

import numpy as np
import pytest

from repro.data.synthetic import make_mnist_like
from repro.nn.models import build_mlp
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer, evaluate_accuracy, evaluate_brier


@pytest.fixture(scope="module")
def easy_data():
    rng = np.random.default_rng(21)
    return make_mnist_like(rng, n_train=400, n_test=300)


class TestTrainer:
    def test_training_improves_accuracy(self, easy_data):
        rng = np.random.default_rng(3)
        net = build_mlp(rng, hidden=32)
        before = evaluate_accuracy(net, easy_data.x_test, easy_data.y_test)
        trainer = Trainer(net, optimizer=SGD(lr=0.1, momentum=0.9))
        result = trainer.fit(
            easy_data.x_train, easy_data.y_train, epochs=4, batch_size=32, rng=rng
        )
        after = evaluate_accuracy(net, easy_data.x_test, easy_data.y_test)
        assert after > before + 0.2
        assert result.train_loss[-1] < result.train_loss[0]

    def test_training_reduces_brier_loss(self, easy_data):
        rng = np.random.default_rng(4)
        net = build_mlp(rng, hidden=32)
        before = evaluate_brier(net, easy_data.x_test, easy_data.y_test)
        Trainer(net).fit(
            easy_data.x_train, easy_data.y_train, epochs=3, batch_size=32, rng=rng
        )
        after = evaluate_brier(net, easy_data.x_test, easy_data.y_test)
        assert after < before

    def test_validation_history_recorded(self, easy_data):
        rng = np.random.default_rng(5)
        net = build_mlp(rng, hidden=16)
        result = Trainer(net).fit(
            easy_data.x_train,
            easy_data.y_train,
            epochs=2,
            batch_size=64,
            rng=rng,
            x_val=easy_data.x_test,
            labels_val=easy_data.y_test,
        )
        assert len(result.val_accuracy) == 2
        assert len(result.train_accuracy) == 2

    def test_deterministic_given_rngs(self, easy_data):
        def train_once():
            init = np.random.default_rng(6)
            net = build_mlp(init, hidden=16)
            Trainer(net).fit(
                easy_data.x_train,
                easy_data.y_train,
                epochs=1,
                batch_size=32,
                rng=np.random.default_rng(7),
            )
            return net.forward(easy_data.x_test[:5])

        np.testing.assert_allclose(train_once(), train_once())

    @pytest.mark.parametrize("kwargs", [{"epochs": 0}, {"batch_size": 0}])
    def test_invalid_args(self, easy_data, kwargs):
        rng = np.random.default_rng(8)
        net = build_mlp(rng, hidden=8)
        full = {"epochs": 1, "batch_size": 32, **kwargs}
        with pytest.raises(ValueError):
            Trainer(net).fit(easy_data.x_train, easy_data.y_train, rng=rng, **full)

    def test_empty_dataset_raises(self):
        rng = np.random.default_rng(9)
        net = build_mlp(rng, hidden=8)
        with pytest.raises(ValueError):
            Trainer(net).fit(
                np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int),
                epochs=1, batch_size=8, rng=rng,
            )

    def test_final_train_loss_requires_history(self):
        from repro.nn.training import TrainingResult

        with pytest.raises(ValueError):
            TrainingResult().final_train_loss
