"""Tests for per-edge data heterogeneity (extension beyond the paper).

The paper assumes every edge draws from one global distribution D; this
extension gives each edge its own class mix, so per-edge best models can
differ — exactly the case the per-edge decomposition of P1 is built for.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import OnlineModelSelection
from repro.offline import NullTrading
from repro.sim.simulator import Simulator
from repro.utils.rng import RngFactory


def with_weights(scenario, weights):
    return dataclasses.replace(scenario, edge_class_weights=weights)


def uniform_weights(num_edges, num_classes):
    return np.full((num_edges, num_classes), 1.0 / num_classes)


@pytest.fixture(scope="module")
def num_classes(mnist_scenario):
    return int(np.max(mnist_scenario.y_pool)) + 1


class TestScenarioValidation:
    def test_requires_labelled_pool(self, small_scenario):
        with pytest.raises(ValueError, match="labelled"):
            with_weights(small_scenario, np.full((3, 10), 0.1))

    def test_shape_checked(self, mnist_scenario):
        with pytest.raises(ValueError, match="num_edges"):
            with_weights(mnist_scenario, np.full((99, 10), 0.1))

    def test_rows_must_be_distributions(self, mnist_scenario, num_classes):
        bad = uniform_weights(mnist_scenario.num_edges, num_classes)
        bad[0, 0] = 0.5  # row no longer sums to 1
        with pytest.raises(ValueError, match="distribution"):
            with_weights(mnist_scenario, bad)

    def test_uniform_weights_accepted(self, mnist_scenario, num_classes):
        scenario = with_weights(
            mnist_scenario, uniform_weights(mnist_scenario.num_edges, num_classes)
        )
        assert scenario.edge_class_weights is not None


class TestExpectedLossesPerEdge:
    def test_global_distribution_repeats_row(self, small_scenario):
        per_edge = small_scenario.expected_losses_per_edge()
        assert per_edge.shape == (small_scenario.num_edges, small_scenario.num_models)
        for i in range(small_scenario.num_edges):
            np.testing.assert_allclose(per_edge[i], small_scenario.expected_losses)

    def test_uniform_mix_close_to_global(self, mnist_scenario, num_classes):
        scenario = with_weights(
            mnist_scenario, uniform_weights(mnist_scenario.num_edges, num_classes)
        )
        per_edge = scenario.expected_losses_per_edge()
        # A uniform class mix differs from the pool mix only by the pool's
        # (slightly non-uniform) class frequencies.
        np.testing.assert_allclose(
            per_edge[0], mnist_scenario.expected_losses, atol=0.1
        )

    def test_biased_mix_changes_losses(self, mnist_scenario, num_classes):
        weights = uniform_weights(mnist_scenario.num_edges, num_classes)
        weights[0] = 0.0
        weights[0, 0] = 1.0  # edge 0 only ever sees class 0
        scenario = with_weights(mnist_scenario, weights)
        per_edge = scenario.expected_losses_per_edge()
        assert not np.allclose(per_edge[0], per_edge[1])


class TestSimulationUnderHeterogeneity:
    def test_single_class_edge_sees_only_that_class(self, mnist_scenario, num_classes):
        weights = uniform_weights(mnist_scenario.num_edges, num_classes)
        weights[0] = 0.0
        weights[0, 3] = 1.0
        scenario = with_weights(mnist_scenario, weights)
        factory = RngFactory(0)
        policies = [
            OnlineModelSelection(
                scenario.num_models,
                scenario.horizon,
                float(scenario.effective_switch_costs()[i]),
                factory.get(f"s{i}"),
            )
            for i in range(scenario.num_edges)
        ]
        result = Simulator(scenario, policies, NullTrading(), run_seed=0).run()
        # The run completes with valid accounting.
        assert result.horizon == scenario.horizon
        assert np.all(result.emissions > 0)

    def test_biased_edge_loss_shifts_toward_class_mean(self, mnist_scenario, num_classes):
        """An edge restricted to one class realizes that class's loss level."""
        target_class = 3
        weights = uniform_weights(mnist_scenario.num_edges, num_classes)
        weights[0] = 0.0
        weights[0, target_class] = 1.0
        scenario = with_weights(mnist_scenario, weights)

        from repro.offline import FixedSelection

        model = 2
        fixed = [
            FixedSelection(scenario.num_models, model)
            for _ in range(scenario.num_edges)
        ]
        result = Simulator(scenario, fixed, NullTrading(), run_seed=1).run()
        profile = scenario.profiles[model]
        mask = scenario.y_pool == target_class
        class_mean = float(profile.loss_per_sample[mask].mean())
        # Edge 0's realized per-slot loss component averages near the class
        # mean; with 2 edges, subtract edge 1's (global) expectation.
        global_mean = profile.expected_loss
        measured_total = float(result.realized_inference_loss.mean())
        assert measured_total == pytest.approx(class_mean + global_mean, abs=0.15)

    def test_weights_do_not_perturb_arrivals(self, mnist_scenario, num_classes):
        scenario = with_weights(
            mnist_scenario, uniform_weights(mnist_scenario.num_edges, num_classes)
        )
        from repro.offline import FixedSelection

        fixed = lambda sc: [  # noqa: E731
            FixedSelection(sc.num_models, 0) for _ in range(sc.num_edges)
        ]
        a = Simulator(mnist_scenario, fixed(mnist_scenario), NullTrading(), run_seed=3).run()
        b = Simulator(scenario, fixed(scenario), NullTrading(), run_seed=3).run()
        np.testing.assert_allclose(a.arrivals, b.arrivals)
