"""Golden-digest regression tests for the simulator's exact outputs.

Each digest is the SHA-256 of the canonical JSON serialization of one
``Simulator.run`` output, pinned at the commit that introduced this file.
A digest moving means the simulation's *numbers* changed — a different
RNG stream, a reordered reduction, a new term in a cost — which is either
a bug or a deliberate behavior change that must update the table here.

The same digests then lock the engine's parity contract: serial,
``workers=2``, and cache-hit execution paths must all reproduce these
exact bytes.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.engine import SweepEngine
from repro.experiments.runner import run_combo
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from repro.sim.scenario import build_scenario

SCENARIO_CONFIGS = {
    "A": ScenarioConfig(
        dataset="synthetic", num_edges=3, horizon=40, num_models=4, n_test=500, seed=0
    ),
    "B": ScenarioConfig(
        dataset="synthetic",
        num_edges=2,
        horizon=24,
        num_models=3,
        n_test=300,
        seed=7,
        carbon_cap_kg=200.0,
    ),
}

#: (scenario, run seed) -> SHA-256 of the canonical serialized result of an
#: Ours/Ours run.  Recompute with ``repro.sim.io.result_digest`` if the
#: simulation's numbers change on purpose.
GOLDEN_DIGESTS = {
    ("A", 0): "35153619477441064db2de266b93a97c45007d4dd713ac524706ec50cac7f62b",
    ("A", 1): "1c81342251a69c597fa32a4e006662d5a4d3b44fcbfff1bcddab050f6a8d9e58",
    ("B", 0): "2a53366a4b1059e0d6547a48e8fccb8ef2f566a4654455d6ed184f271d7341b0",
    ("B", 1): "c6913cfc75e441e9ace2a623e956a9f8b02d0472410eab653495bba4a2210ce3",
}


def golden_run(scenario_name: str, seed: int):
    scenario = build_scenario(SCENARIO_CONFIGS[scenario_name])
    return run_combo(scenario, "Ours", "Ours", seed, label="Ours-Ours")


class TestGoldenDigests:
    @pytest.mark.parametrize("scenario_name,seed", sorted(GOLDEN_DIGESTS))
    def test_simulator_output_digest_is_stable(self, scenario_name, seed):
        digest = result_digest(golden_run(scenario_name, seed))
        assert digest == GOLDEN_DIGESTS[(scenario_name, seed)]

    def test_digest_distinguishes_runs(self):
        # Sanity on the oracle itself: different seeds/scenarios, different bytes.
        assert len(set(GOLDEN_DIGESTS.values())) == len(GOLDEN_DIGESTS)


class TestExecutionPathParity:
    """Serial, workers=2, and cache-hit paths all reproduce the golden bytes."""

    SEEDS = [0, 1]

    def expected(self, scenario_name):
        return [GOLDEN_DIGESTS[(scenario_name, seed)] for seed in self.SEEDS]

    def digests(self, engine, scenario_name):
        scenario = build_scenario(SCENARIO_CONFIGS[scenario_name])
        results = engine.run_many(
            scenario, "Ours", "Ours", self.SEEDS, label="Ours-Ours"
        )
        return [result_digest(r) for r in results]

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIO_CONFIGS))
    def test_serial_path(self, scenario_name):
        assert self.digests(SweepEngine(workers=1), scenario_name) == self.expected(
            scenario_name
        )

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIO_CONFIGS))
    def test_pool_path(self, scenario_name):
        assert self.digests(SweepEngine(workers=2), scenario_name) == self.expected(
            scenario_name
        )

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIO_CONFIGS))
    def test_cache_hit_path(self, scenario_name, tmp_path):
        warm = SweepEngine(cache=ResultCache(tmp_path))
        assert self.digests(warm, scenario_name) == self.expected(scenario_name)
        cached = SweepEngine(cache=ResultCache(tmp_path))
        assert self.digests(cached, scenario_name) == self.expected(scenario_name)
        assert cached.stats.executed == 0
        assert cached.stats.cache_hits == len(self.SEEDS)
