"""Tests for the carbon price trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.carbon_prices import CarbonPriceModel, PriceSeries, generate_prices


class TestPriceSeries:
    def test_horizon(self):
        series = PriceSeries(buy=np.full(5, 8.0), sell=np.full(5, 7.0))
        assert series.horizon == 5

    def test_sell_above_buy_rejected(self):
        with pytest.raises(ValueError):
            PriceSeries(buy=np.array([8.0]), sell=np.array([9.0]))

    def test_nonpositive_buy_rejected(self):
        with pytest.raises(ValueError):
            PriceSeries(buy=np.array([0.0]), sell=np.array([0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PriceSeries(buy=np.ones(3), sell=np.ones(4))


class TestCarbonPriceModel:
    def test_prices_in_paper_range(self):
        series = CarbonPriceModel().generate(500, np.random.default_rng(0))
        assert series.buy.min() >= 5.9
        assert series.buy.max() <= 10.9

    def test_sell_is_ninety_percent_of_buy(self):
        series = CarbonPriceModel().generate(50, np.random.default_rng(1))
        np.testing.assert_allclose(series.sell, 0.9 * series.buy)

    def test_prices_fluctuate(self):
        series = CarbonPriceModel().generate(200, np.random.default_rng(2))
        assert series.buy.std() > 0.1

    def test_temporal_correlation(self):
        """Mean reversion implies positive autocorrelation at lag one."""
        series = CarbonPriceModel().generate(2000, np.random.default_rng(3))
        x = series.buy
        corr = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert corr > 0.5

    def test_deterministic_given_seed(self):
        a = CarbonPriceModel().generate(30, np.random.default_rng(4))
        b = CarbonPriceModel().generate(30, np.random.default_rng(4))
        np.testing.assert_allclose(a.buy, b.buy)

    def test_mean_price(self):
        assert CarbonPriceModel().mean_price == pytest.approx((5.9 + 10.9) / 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low": 0.0},
            {"high": 5.0},  # below default low
            {"kappa": 1.5},
            {"sell_ratio": 1.5},
            {"sigma": -1.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            CarbonPriceModel(**kwargs)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            CarbonPriceModel().generate(0, np.random.default_rng(0))

    @given(
        sell_ratio=st.floats(0.1, 1.0),
        sigma=st.floats(0.0, 2.0),
        kappa=st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_series_always_valid(self, sell_ratio, sigma, kappa):
        model = CarbonPriceModel(sell_ratio=sell_ratio, sigma=sigma, kappa=kappa)
        series = model.generate(40, np.random.default_rng(5))
        assert np.all(series.buy >= model.low - 1e-12)
        assert np.all(series.buy <= model.high + 1e-12)
        assert np.all(series.sell <= series.buy + 1e-12)

    def test_convenience_wrapper(self):
        series = generate_prices(25, np.random.default_rng(6), sell_ratio=0.8)
        assert series.horizon == 25
        np.testing.assert_allclose(series.sell, 0.8 * series.buy)
