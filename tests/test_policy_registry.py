"""Tests for the decorator-based policy registries and the run APIs on top.

Covers the registration contract (duplicates raise, unknown names list the
registered vocabulary), the live name views mirroring the historical
tuples, and the construction surface built on the registry —
``Simulator.from_names`` and ``repro.run``.
"""

import pytest

import repro
from repro.policies import (
    SELECTION_NAMES,
    TRADING_NAMES,
    make_selection_policies,
    make_trading_policy,
    register_selection,
    register_trading,
    selection_names,
    trading_names,
)
from repro.policies.registry import _SELECTION, _TRADING
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingPolicy
from repro.sim import ScenarioConfig, Scenario, Simulator, build_scenario
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def scenario() -> Scenario:
    return build_scenario(ScenarioConfig(dataset="synthetic", num_edges=3, horizon=24))


@pytest.fixture
def clean_registry():
    """Snapshot both registries and restore them afterwards."""
    selection_before = dict(_SELECTION)
    trading_before = dict(_TRADING)
    yield
    _SELECTION.clear()
    _SELECTION.update(selection_before)
    _TRADING.clear()
    _TRADING.update(trading_before)


class _Fixed(SelectionPolicy):
    name = "Fixed"

    def select(self, t: int) -> int:
        return 0

    def observe(self, t: int, model: int, loss: float) -> None:
        pass


class _NoTrade(TradingPolicy):
    name = "NoTrade"

    def decide(self, context) -> TradeDecision:
        return TradeDecision(buy=0.0, sell=0.0)


class TestBuiltinRegistry:
    # Builtin families load before any custom registration can complete, so
    # they are always the registry prefix — prefix checks keep these tests
    # independent of other tests (e.g. examples) registering extra names.
    def test_builtin_selection_names(self):
        assert selection_names()[:8] == (
            "Ours", "Ran", "Greedy", "TINF", "UCB", "UCB1", "EG", "EXP3",
        )

    def test_builtin_trading_names(self):
        assert trading_names()[:6] == ("Ours", "Forecast", "Ran", "TH", "LY", "Null")

    def test_name_views_behave_like_tuples(self):
        assert tuple(SELECTION_NAMES) == selection_names()
        assert SELECTION_NAMES == selection_names()
        assert len(TRADING_NAMES) == len(trading_names())
        assert "Ours" in TRADING_NAMES
        assert TRADING_NAMES[0] == "Ours"
        assert TRADING_NAMES + ("Offline",) == trading_names() + ("Offline",)

    def test_make_selection_builds_one_policy_per_edge(self, scenario):
        policies = make_selection_policies("Ours", scenario, RngFactory(0))
        assert len(policies) == scenario.num_edges
        assert all(isinstance(p, SelectionPolicy) for p in policies)

    def test_make_trading_builds_policy(self, scenario):
        policy = make_trading_policy("LY", scenario, RngFactory(0))
        assert isinstance(policy, TradingPolicy)

    def test_unknown_selection_lists_registered_names(self, scenario):
        with pytest.raises(ValueError, match=r"unknown selection policy 'Nope'"):
            make_selection_policies("Nope", scenario, RngFactory(0))
        with pytest.raises(ValueError, match="'Ours'"):
            make_selection_policies("Nope", scenario, RngFactory(0))

    def test_unknown_trading_lists_registered_names(self, scenario):
        with pytest.raises(ValueError, match=r"unknown trading policy 'Nope'"):
            make_trading_policy("Nope", scenario, RngFactory(0))


class TestRegistration:
    def test_duplicate_selection_name_raises(self, clean_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_selection("Ours")(lambda scenario, rng: [])

    def test_duplicate_trading_name_raises(self, clean_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_trading("LY")(lambda scenario, rng: None)

    def test_replace_overrides(self, clean_registry, scenario):
        @register_trading("LY", replace=True)
        def build(scenario, rng_factory):
            return _NoTrade()

        assert isinstance(make_trading_policy("LY", scenario, RngFactory(0)), _NoTrade)

    def test_new_registration_visible_in_views(self, clean_registry, scenario):
        @register_selection("Fixed")
        def build(scenario, rng_factory):
            return [_Fixed(scenario.num_models) for _ in range(scenario.num_edges)]

        assert "Fixed" in SELECTION_NAMES
        assert selection_names()[-1] == "Fixed"
        policies = make_selection_policies("Fixed", scenario, RngFactory(0))
        assert len(policies) == scenario.num_edges


class TestRunApis:
    def test_from_names_runs(self, scenario):
        result = Simulator.from_names(scenario, "Greedy", "Null", seed=3).run()
        assert result.label == "Greedy-Null"
        assert result.selections.shape == (scenario.horizon, scenario.num_edges)

    def test_from_names_unknown_name(self, scenario):
        with pytest.raises(ValueError, match="unknown trading"):
            Simulator.from_names(scenario, "Ours", "Nope")

    def test_repro_run_accepts_scenario(self, scenario):
        result = repro.run(scenario, selection="Greedy", trading="Null", seed=3)
        assert result.label == "Greedy-Null"

    def test_repro_run_accepts_config(self):
        config = ScenarioConfig(dataset="synthetic", num_edges=3, horizon=24)
        result = repro.run(config, selection="Greedy", trading="Null", seed=3)
        assert result.selections.shape == (24, 3)

    def test_repro_run_matches_from_names(self, scenario):
        via_run = repro.run(scenario, selection="Ours", trading="Ours", seed=5)
        via_names = Simulator.from_names(scenario, "Ours", "Ours", seed=5).run()
        assert (via_run.selections == via_names.selections).all()
        assert (via_run.trading_cost == via_names.trading_cost).all()

    def test_repro_run_rejects_other_types(self):
        with pytest.raises(TypeError):
            repro.run(42)

    def test_custom_registration_reaches_run(self, clean_registry, scenario):
        @register_trading("NoTrade")
        def build(scenario, rng_factory):
            return _NoTrade()

        result = repro.run(scenario, selection="Greedy", trading="NoTrade", seed=3)
        assert float(result.trading_cost.sum()) == 0.0
