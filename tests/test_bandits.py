"""Tests for the baseline bandit selection policies."""

import numpy as np
import pytest

from repro.bandits import (
    EpsilonGreedySelection,
    Exp3Selection,
    GreedySelection,
    RandomSelection,
    TsallisInfSelection,
    UCB1Selection,
    UCB2Selection,
)


def drive(policy, loss_fn, horizon, rng):
    selections = []
    for t in range(horizon):
        model = policy.select(t)
        policy.observe(t, model, loss_fn(model, rng))
        selections.append(model)
    return np.array(selections)


def gapped_loss(means):
    def loss_fn(m, rng):
        return float(np.clip(means[m] + 0.05 * rng.standard_normal(), 0, 2.5))

    return loss_fn


class TestRandomSelection:
    def test_covers_all_arms(self):
        policy = RandomSelection(4, np.random.default_rng(0))
        selections = drive(policy, lambda m, r: 1.0, 200, np.random.default_rng(1))
        assert set(np.unique(selections)) == {0, 1, 2, 3}

    def test_roughly_uniform(self):
        policy = RandomSelection(4, np.random.default_rng(2))
        selections = drive(policy, lambda m, r: 1.0, 4000, np.random.default_rng(3))
        counts = np.bincount(selections, minlength=4)
        assert counts.min() > 800

    def test_invalid_num_models(self):
        with pytest.raises(ValueError):
            RandomSelection(0, np.random.default_rng(0))


class TestGreedySelection:
    def test_picks_lowest_energy(self):
        policy = GreedySelection(3, energies=np.array([3.0, 1.0, 2.0]))
        assert policy.choice == 1
        assert policy.select(0) == 1
        assert policy.select(5) == 1

    def test_never_switches(self):
        policy = GreedySelection(3, energies=np.array([3.0, 1.0, 2.0]))
        selections = drive(policy, lambda m, r: 9.9, 100, np.random.default_rng(0))
        assert len(np.unique(selections)) == 1

    def test_energy_length_mismatch(self):
        with pytest.raises(ValueError):
            GreedySelection(3, energies=np.array([1.0, 2.0]))


class TestEpsilonGreedy:
    def test_finds_best_arm(self):
        policy = EpsilonGreedySelection(4, np.random.default_rng(4), epsilon=0.3)
        selections = drive(
            policy, gapped_loss([0.1, 1.0, 1.0, 1.0]), 2000, np.random.default_rng(5)
        )
        counts = np.bincount(selections, minlength=4)
        assert counts[0] == max(counts)
        assert counts[0] > 1000

    def test_tries_every_arm_first(self):
        policy = EpsilonGreedySelection(5, np.random.default_rng(6))
        first = []
        for t in range(5):
            m = policy.select(t)
            policy.observe(t, m, 1.0)
            first.append(m)
        assert sorted(first) == [0, 1, 2, 3, 4]

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedySelection(3, np.random.default_rng(0), epsilon=1.5)


class TestUCB1:
    def test_finds_best_arm(self):
        policy = UCB1Selection(4)
        selections = drive(
            policy, gapped_loss([0.1, 1.0, 1.0, 1.0]), 2000, np.random.default_rng(7)
        )
        counts = np.bincount(selections, minlength=4)
        assert counts[0] > 1200

    def test_invalid_loss_range(self):
        with pytest.raises(ValueError):
            UCB1Selection(3, loss_range=0.0)


class TestUCB2:
    def test_finds_best_arm(self):
        policy = UCB2Selection(4)
        selections = drive(
            policy, gapped_loss([0.1, 1.0, 1.0, 1.0]), 2000, np.random.default_rng(8)
        )
        counts = np.bincount(selections, minlength=4)
        assert counts[0] > 1200

    def test_logarithmic_switching(self):
        """UCB2's epoch structure keeps switches O(log T) per arm."""
        policy = UCB2Selection(4, alpha=0.5)
        selections = drive(
            policy, gapped_loss([0.2, 0.5, 0.8, 1.1]), 4000, np.random.default_rng(9)
        )
        switches = int(np.sum(selections[1:] != selections[:-1]))
        assert switches < 250  # Random would switch ~3000 times

    def test_switches_fewer_than_ucb1(self):
        def count_switches(policy):
            selections = drive(
                policy, gapped_loss([0.2, 0.6, 1.0, 1.4]), 1500, np.random.default_rng(10)
            )
            return int(np.sum(selections[1:] != selections[:-1]))

        assert count_switches(UCB2Selection(4)) <= count_switches(UCB1Selection(4))

    def test_epochs_grow_geometrically(self):
        policy = UCB2Selection(2, alpha=0.5)
        # tau(r) = ceil(1.5^r): 1, 2, 3, 4, 6, 8 ...
        assert policy._tau(0) == 1
        assert policy._tau(3) == 4
        assert policy._tau(6) > 2 * policy._tau(3)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            UCB2Selection(3, alpha=1.0)


class TestExp3:
    def test_finds_best_arm(self):
        policy = Exp3Selection(4, np.random.default_rng(11))
        selections = drive(
            policy, gapped_loss([0.1, 1.2, 1.2, 1.2]), 4000, np.random.default_rng(12)
        )
        counts = np.bincount(selections, minlength=4)
        assert counts[0] == max(counts)

    def test_probabilities_valid(self):
        policy = Exp3Selection(3, np.random.default_rng(13))
        drive(policy, gapped_loss([0.5, 1.0, 1.5]), 100, np.random.default_rng(14))
        p = policy._probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)


class TestTsallisInf:
    def test_unit_blocks(self):
        policy = TsallisInfSelection(4, horizon=50, rng=np.random.default_rng(15))
        assert policy.schedule.num_blocks == 50
        assert np.all(policy.schedule.lengths == 1)

    def test_finds_best_arm(self):
        policy = TsallisInfSelection(4, horizon=2000, rng=np.random.default_rng(16))
        selections = drive(
            policy, gapped_loss([0.1, 1.0, 1.0, 1.0]), 2000, np.random.default_rng(17)
        )
        counts = np.bincount(selections, minlength=4)
        assert counts[0] > 1000

    def test_name(self):
        policy = TsallisInfSelection(4, horizon=10, rng=np.random.default_rng(18))
        assert policy.name == "TINF"
