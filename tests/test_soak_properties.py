"""Property battery for the load-shape generator and the soak harness.

The guarantees under test are the ones the soak harness leans on:

* **conservation** — every generated grid sums to exactly the requested
  event total, for all shapes and awkward sizes (largest-remainder
  rounding, not truncation);
* **bit-reproducibility** — equal ``(shape, horizon, edges, total, seed)``
  gives bit-equal grids across calls; different seeds differ;
* **non-negativity** — no cell ever goes negative;
* the P² quantile sketch tracks known distributions within tolerance and
  is exact while small;
* soak reports round-trip their schema and project onto the bench compare
  gate.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.report import BenchReport, compare_ratios
from repro.serve.load import (
    SHAPE_NAMES,
    make_load_grid,
    shape_profile,
)
from repro.serve.soak import (
    SOAK_FORMAT_VERSION,
    P2Quantile,
    SoakReport,
    StageStats,
    run_soak,
)

AWKWARD_SIZES = [
    (1, 1, 1),
    (7, 3, 100),
    (48, 4, 2000),
    (13, 5, 9973),  # prime total, uneven grid
    (96, 64, 12345),
]


class TestShapeProfiles:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_profiles_are_strictly_positive(self, shape):
        for horizon in (1, 2, 7, 48, 100):
            profile = shape_profile(shape, horizon)
            assert profile.shape == (horizon,)
            assert (profile > 0).all()

    def test_shapes_are_actually_different(self):
        profiles = {s: shape_profile(s, 64) for s in SHAPE_NAMES}
        seen = set()
        for shape, profile in profiles.items():
            key = profile.tobytes()
            assert key not in seen, f"{shape} duplicates another profile"
            seen.add(key)

    def test_spike_spikes_and_step_steps(self):
        spike = shape_profile("spike", 64)
        assert spike.max() == 20.0 and spike.min() == 1.0
        step = shape_profile("step", 64)
        assert (step[:32] == 1.0).all() and (step[32:] == 4.0).all()

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="sawtooth"):
            shape_profile("triangle", 10)


class TestLoadGridProperties:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("horizon,edges,total", AWKWARD_SIZES)
    def test_conservation_is_exact(self, shape, horizon, edges, total):
        grid = make_load_grid(
            shape, horizon=horizon, num_edges=edges, total_events=total, seed=3
        )
        assert grid.shape == (horizon, edges)
        assert int(grid.sum()) == total

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("horizon,edges,total", AWKWARD_SIZES)
    def test_non_negative_integer_counts(self, shape, horizon, edges, total):
        grid = make_load_grid(
            shape, horizon=horizon, num_edges=edges, total_events=total, seed=3
        )
        assert grid.dtype == np.int64
        assert (grid >= 0).all()

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_bit_reproducible_per_seed(self, shape):
        kwargs = dict(horizon=48, num_edges=6, total_events=5000)
        first = make_load_grid(shape, seed=11, **kwargs)
        second = make_load_grid(shape, seed=11, **kwargs)
        assert np.array_equal(first, second)
        other = make_load_grid(shape, seed=12, **kwargs)
        assert not np.array_equal(first, other)

    def test_zero_events_is_an_all_zero_grid(self):
        grid = make_load_grid(
            "spike", horizon=16, num_edges=4, total_events=0, seed=0
        )
        assert grid.sum() == 0 and (grid == 0).all()

    def test_grid_follows_its_profile(self):
        # A step grid's second half must carry (about 4x) more events.
        grid = make_load_grid(
            "step", horizon=64, num_edges=8, total_events=100_000, seed=0
        )
        low, high = grid[:32].sum(), grid[32:].sum()
        assert high > 2.5 * low

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            make_load_grid(
                "constant", horizon=4, num_edges=2, total_events=10, jitter=1.0
            )


class TestP2Quantile:
    def test_exact_while_small(self):
        sketch = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            sketch.add(x)
        assert sketch.value() == 3.0

    def test_empty_sketch_is_nan(self):
        assert np.isnan(P2Quantile(0.95).value())

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_tracks_uniform_distribution(self, q):
        rng = np.random.default_rng(7)
        sketch = P2Quantile(q)
        samples = rng.uniform(0.0, 1.0, size=20_000)
        for x in samples:
            sketch.add(float(x))
        assert sketch.value() == pytest.approx(q, abs=0.03)

    def test_tracks_exponential_tail(self):
        rng = np.random.default_rng(21)
        sketch = P2Quantile(0.99)
        samples = rng.exponential(1.0, size=20_000)
        for x in samples:
            sketch.add(float(x))
        exact = float(np.quantile(samples, 0.99))
        assert sketch.value() == pytest.approx(exact, rel=0.15)

    def test_quantile_domain_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(1.0)

    def test_stage_stats_summary_fields(self):
        stats = StageStats()
        for x in (0.1, 0.2, 0.3, 0.4):
            stats.observe(x)
        summary = stats.summary()
        assert summary["count"] == 4
        assert summary["max_s"] == 0.4
        assert summary["mean_s"] == pytest.approx(0.25)
        assert set(summary) >= {"p50_s", "p95_s", "p99_s"}


class TestSoakReportSchema:
    @staticmethod
    def _report(**overrides):
        fields = dict(
            shape="spike",
            seed=0,
            num_edges=4,
            num_workers=2,
            horizon=48,
            total_events=2000,
            wall_seconds=1.5,
            events_in=2000,
            events_served=1900,
            events_shed=100,
            events_dropped_offline=0,
            accounting_ok=True,
            throughput_eps=1266.7,
            stages={
                "slot": {
                    "count": 48,
                    "mean_s": 0.01,
                    "max_s": 0.05,
                    "p50_s": 0.01,
                    "p95_s": 0.02,
                    "p99_s": 0.03,
                }
            },
        )
        fields.update(overrides)
        return SoakReport(**fields)

    def test_round_trips_through_json(self):
        report = self._report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["format_version"] == SOAK_FORMAT_VERSION
        assert SoakReport.from_dict(payload) == report

    def test_unknown_format_version_rejected(self):
        payload = self._report().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            SoakReport.from_dict(payload)

    def test_projects_onto_the_bench_compare_gate(self):
        bench = self._report().to_bench_report()
        assert bench.suite == "soak_spike"
        # Round-trips the bench schema (the gate reads it back from disk)...
        loaded = BenchReport.from_json(bench.to_json())
        assert loaded.get("slot/p95") is not None
        assert loaded.ratios["served_fraction"] == pytest.approx(0.95)
        # ...and ratio regressions actually trip the gate.
        slower = self._report(events_served=400, throughput_eps=266.0)
        comparisons = compare_ratios(loaded, slower.to_bench_report())
        regressed = {c.name for c in comparisons if c.regressed}
        assert "served_fraction" in regressed

    def test_accounting_equation_is_what_gates(self):
        bad = self._report(events_served=1899, accounting_ok=False)
        assert bad.events_in != (
            bad.events_served + bad.events_shed + bad.events_dropped_offline
        )
        assert not bad.accounting_ok


class TestRunSoakProperties:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_accounting_exact_under_every_shape(self, shape):
        report = run_soak(
            shape,
            num_edges=3,
            num_workers=2,
            horizon=16,
            total_events=600,
            seed=1,
        )
        assert report.accounting_ok
        assert report.events_in == 600
        assert report.events_in == (
            report.events_served
            + report.events_shed
            + report.events_dropped_offline
        )
        for stage in ("queue", "serve", "trade", "slot"):
            assert report.stages[stage]["count"] > 0

    def test_shedding_still_balances_the_books(self):
        # A tiny queue under the spike shape must shed — and the equation
        # still has to hold exactly.
        report = run_soak(
            "spike",
            num_edges=2,
            num_workers=2,
            horizon=16,
            total_events=4000,
            queue_capacity=1,
            seed=0,
        )
        assert report.accounting_ok
        assert report.events_shed > 0
