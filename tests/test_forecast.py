"""Tests for the price-forecasting extension."""

import numpy as np
import pytest

from repro.core import OnlineCarbonTrading
from repro.forecast.price_models import AR1Forecaster, EwmaForecaster
from repro.forecast.trading import ForecastCarbonTrading
from repro.policies.trading import TradeDecision, TradingContext


class TestEwmaForecaster:
    def test_predict_before_update_raises(self):
        with pytest.raises(RuntimeError):
            EwmaForecaster().predict()

    def test_constant_series_converges(self):
        forecaster = EwmaForecaster(alpha=0.5)
        for _ in range(20):
            forecaster.update(8.0)
        assert forecaster.predict() == pytest.approx(8.0)

    def test_tracks_level_shift(self):
        forecaster = EwmaForecaster(alpha=0.5)
        for _ in range(10):
            forecaster.update(6.0)
        for _ in range(10):
            forecaster.update(10.0)
        assert forecaster.predict() == pytest.approx(10.0, abs=0.1)

    def test_flat_multi_step_forecast(self):
        forecaster = EwmaForecaster()
        forecaster.update(7.0)
        assert forecaster.predict(1) == forecaster.predict(5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        forecaster = EwmaForecaster()
        with pytest.raises(ValueError):
            forecaster.update(-1.0)


class TestAR1Forecaster:
    def test_learns_ar1_coefficients(self):
        rng = np.random.default_rng(0)
        a, b = 0.8, 1.6  # stationary mean 8
        forecaster = AR1Forecaster(forgetting=0.9999)  # long memory for identification
        price = 8.0
        for _ in range(5000):
            price = a * price + b + 0.5 * rng.standard_normal()
            forecaster.update(price)
        a_hat, b_hat = forecaster.coefficients
        assert a_hat == pytest.approx(a, abs=0.1)
        # The intercept is collinear with the slope around the mean; check
        # the implied stationary mean instead of b directly.
        assert b_hat / (1 - a_hat) == pytest.approx(b / (1 - a), rel=0.1)

    def test_one_step_prediction_beats_last_value(self):
        """On a strongly mean-reverting series, AR(1) must beat persistence."""
        rng = np.random.default_rng(1)
        a, b = 0.5, 4.0
        forecaster = AR1Forecaster()
        price = 8.0
        ar_errors, last_errors = [], []
        for t in range(1500):
            next_price = a * price + b + 0.1 * rng.standard_normal()
            if t > 300:
                ar_errors.append((forecaster.predict(1) - next_price) ** 2)
                last_errors.append((price - next_price) ** 2)
            forecaster.update(next_price)
            price = next_price
        assert np.mean(ar_errors) < 0.8 * np.mean(last_errors)

    def test_fallback_before_two_observations(self):
        forecaster = AR1Forecaster()
        forecaster.update(7.5)
        assert forecaster.predict() == pytest.approx(7.5)

    def test_multi_step_iterates(self):
        forecaster = AR1Forecaster()
        for price in [8.0, 8.0, 8.0, 8.0]:
            forecaster.update(price)
        assert forecaster.predict(3) > 0

    def test_prediction_stays_positive(self):
        forecaster = AR1Forecaster()
        for price in [10.0, 5.0, 2.0, 1.0, 0.5]:
            forecaster.update(price)
        assert forecaster.predict(10) > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AR1Forecaster(forgetting=0.3)
        with pytest.raises(ValueError):
            AR1Forecaster(regularization=0.0)


def make_context(t, buy, sell, horizon=200, cap=100.0, bound=60.0, emissions_sum=0.0):
    return TradingContext(
        t=t, horizon=horizon, cap=cap,
        buy_price=buy, sell_price=sell,
        prev_buy_price=buy, prev_sell_price=sell,
        prev_emissions=20.0, cumulative_emissions=emissions_sum,
        holdings=cap, mean_slot_emissions=20.0, trade_bound=bound,
    )


class TestForecastCarbonTrading:
    def test_first_slot_idle(self):
        policy = ForecastCarbonTrading()
        decision = policy.decide(make_context(0, 8.0, 7.2))
        assert decision.buy == decision.sell == 0.0

    def test_falls_back_to_prev_prices_without_history(self):
        """Before the forecaster saw anything, behave like Algorithm 2."""
        plain = OnlineCarbonTrading(gamma1=0.2, gamma2=4.0)
        forecast = ForecastCarbonTrading(gamma1=0.2, gamma2=4.0)
        ctx0 = make_context(0, 8.0, 7.2)
        plain.observe(ctx0, TradeDecision(0.0, 0.0), 30.0)
        # Mimic internal state but skip the forecaster update.
        forecast._lambda = plain.dual_variable
        ctx1 = make_context(1, 8.0, 7.2)
        assert forecast.decide(ctx1).buy == pytest.approx(plain.decide(ctx1).buy)

    def _drive(self, policy, prices, emissions=25.0):
        bought = sold = cost = emitted = 0.0
        horizon = len(prices)
        for t, price in enumerate(prices):
            ctx = make_context(t, price, 0.9 * price, horizon=horizon,
                               emissions_sum=emitted)
            decision = policy.decide(ctx)
            policy.observe(ctx, decision, emissions)
            bought += decision.buy
            sold += decision.sell
            cost += decision.buy * price - decision.sell * 0.9 * price
            emitted += emissions
        return bought, sold, cost, emitted

    def test_covers_emissions_like_vanilla(self):
        rng = np.random.default_rng(2)
        prices = rng.uniform(5.9, 10.9, size=300)
        policy = ForecastCarbonTrading(gamma1=0.2, gamma2=4.0)
        bought, sold, _, emitted = self._drive(policy, prices)
        violation = max(emitted - (100.0 + bought - sold), 0.0)
        assert violation < 0.05 * emitted

    def test_buys_cheaper_than_vanilla_on_predictable_prices(self):
        """On a mean-reverting (predictable) series, forecasting must not
        pay more per unit than the previous-price rule."""
        rng = np.random.default_rng(3)
        a, b = 0.7, 2.5  # mean ~8.3
        prices = []
        price = 8.3
        for _ in range(400):
            price = float(np.clip(a * price + b + 0.6 * rng.standard_normal(), 5.9, 10.9))
            prices.append(price)
        results = {}
        for name, policy in {
            "plain": OnlineCarbonTrading(gamma1=0.2, gamma2=4.0),
            "forecast": ForecastCarbonTrading(
                gamma1=0.2, gamma2=4.0, trend_weight=1.0
            ),
        }.items():
            bought, sold, cost, emitted = self._drive(policy, prices)
            net = bought - sold
            assert net > 0
            results[name] = cost / net
        assert results["forecast"] <= results["plain"] * 1.03

    def test_trend_tilt_slashes_violation_on_predictable_prices(self):
        """With a strong tilt, coverage arrives earlier: fit collapses."""
        rng = np.random.default_rng(5)
        a, b = 0.55, 3.7
        prices = []
        price = 8.3
        for _ in range(300):
            price = float(np.clip(a * price + b + 0.5 * rng.standard_normal(), 5.9, 10.9))
            prices.append(price)

        def final_fit(policy):
            bought, sold, _, emitted = self._drive(policy, prices)
            return max(emitted - (100.0 + bought - sold), 0.0)

        plain = final_fit(OnlineCarbonTrading(gamma1=0.2, gamma2=4.0))
        tilted = final_fit(
            ForecastCarbonTrading(gamma1=0.2, gamma2=4.0, trend_weight=40.0)
        )
        assert tilted < 0.5 * plain

    def test_trend_weight_validation(self):
        with pytest.raises(ValueError):
            ForecastCarbonTrading(trend_weight=-1.0)

    def test_runner_integration(self, small_scenario):
        from repro.experiments.runner import run_combo

        result = run_combo(small_scenario, "Ours", "Forecast", seed=0)
        assert result.horizon == small_scenario.horizon
        assert result.final_fit() < 0.2 * result.emissions.sum()
