"""Shared scenario pool: content addressing, memoized resolve, parity."""

import pickle

import pytest

from repro.experiments.scenario_pool import (
    _RESOLVE_MEMO,
    ScenarioPool,
    ScenarioRef,
    resolve,
    scenario_digest,
)
from repro.experiments.engine import SweepEngine, _execute_cell_ref
from repro.sim import ScenarioConfig, build_scenario
from repro.sim.io import result_digest
from repro.spec import RunSpec


@pytest.fixture
def scenario():
    return build_scenario(
        ScenarioConfig(dataset="synthetic", num_edges=4, horizon=24)
    )


@pytest.fixture(autouse=True)
def clean_memo():
    _RESOLVE_MEMO.clear()
    yield
    _RESOLVE_MEMO.clear()


class TestContentAddressing:
    def test_equal_scenarios_share_one_file(self, tmp_path, scenario):
        pool = ScenarioPool(tmp_path)
        twin = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=4, horizon=24)
        )
        ref_a, ref_b = pool.share(scenario), pool.share(twin)
        assert ref_a == ref_b
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_distinct_scenarios_get_distinct_digests(self, tmp_path, scenario):
        pool = ScenarioPool(tmp_path)
        other = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=5, horizon=24)
        )
        assert pool.share(scenario).digest != pool.share(other).digest
        assert len(list(tmp_path.glob("*.pkl"))) == 2

    def test_digest_is_stable_across_calls(self, scenario):
        assert scenario_digest(scenario) == scenario_digest(scenario)

    def test_share_is_idempotent_and_trusts_existing_files(
        self, tmp_path, scenario
    ):
        pool = ScenarioPool(tmp_path)
        ref = pool.share(scenario)
        stamp = tuple(
            (p.name, p.stat().st_mtime_ns) for p in tmp_path.glob("*.pkl")
        )
        assert pool.share(scenario) == ref
        assert stamp == tuple(
            (p.name, p.stat().st_mtime_ns) for p in tmp_path.glob("*.pkl")
        )


class TestResolve:
    def test_resolve_loads_from_disk_and_memoizes(self, tmp_path, scenario):
        pool = ScenarioPool(tmp_path)
        ref = pool.share(scenario)
        _RESOLVE_MEMO.clear()  # simulate a fresh worker process
        loaded = resolve(ref)
        assert loaded is not scenario  # came off disk
        assert scenario_digest(loaded) == ref.digest
        assert resolve(ref) is loaded  # second hit is the memo

    def test_share_seeds_the_local_memo(self, tmp_path, scenario):
        pool = ScenarioPool(tmp_path)
        ref = pool.share(scenario)
        assert resolve(ref) is scenario

    def test_ref_pickles_small(self, tmp_path, scenario):
        ref = ScenarioPool(tmp_path).share(scenario)
        assert len(pickle.dumps(ref)) < 1024
        assert len(pickle.dumps(ref)) < len(pickle.dumps(scenario))


class TestEngineIntegration:
    SPECS = [RunSpec(selection="Ours", trading="Ours", seed=s) for s in (0, 1)]

    def test_execute_cell_ref_matches_direct_execution(
        self, tmp_path, scenario
    ):
        from repro.experiments.engine import SweepCell, _execute_cell

        ref = ScenarioPool(tmp_path).share(scenario)
        _RESOLVE_MEMO.clear()
        cell = SweepCell.from_spec(self.SPECS[0])
        assert result_digest(_execute_cell_ref(ref, cell)) == result_digest(
            _execute_cell(scenario, cell)
        )

    def test_pooled_parallel_sweep_is_bit_identical_to_serial(
        self, tmp_path, scenario
    ):
        serial = SweepEngine(workers=1).run_specs(scenario, self.SPECS)
        pooled = SweepEngine(
            workers=2, scenario_pool=ScenarioPool(tmp_path)
        ).run_specs(scenario, self.SPECS)
        assert [result_digest(r) for r in pooled] == [
            result_digest(r) for r in serial
        ]
        assert len(list(tmp_path.glob("*.pkl"))) == 1
