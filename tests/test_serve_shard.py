"""Tests for repro.serve.shard: the multi-process sharded edge tier.

Parity across worker counts lives in ``tests/test_serve.py`` next to the
other golden-digest locks (``TestShardedParity``); this file covers the
shard machinery itself:

* the edge partition and the wire protocol;
* resilience — a worker killed mid-horizon under both death policies,
  with the survivors' trajectories bit-identical and the accounting
  equation intact;
* sharded snapshot/resume (and cross-resume against the in-process
  runtime — snapshots are runtime-agnostic);
* the deterministic per-shard trace merge;
* a 64-edge x 4-worker fleet smoke and the ``repro soak`` CLI.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle

import numpy as np
import pytest

from repro.obs import JsonlSink, Tracer, summarize_trace, summarize_traces
from repro.serve import (
    ChaosPlan,
    RandomKills,
    ServeConfig,
    ServeRuntime,
    ShardRuntime,
    TransportDrop,
    WorkerKill,
    WorkerStall,
    realize_chaos,
    release_target,
    runtime_from_snapshot,
    serve_run,
    shard_edges,
)
from repro.serve.frames import (
    FRAME_TYPES,
    drain_frames,
    recv_frame,
    send_frame,
)
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from tests.test_golden_digests import GOLDEN_DIGESTS, SCENARIO_CONFIGS

#: Fast heartbeat so liveness machinery is exercised within test runtimes.
FAST = dict(heartbeat_interval=0.05)


def shard_config(scenario_name="A", seed=0, **overrides):
    return ServeConfig(
        scenario=SCENARIO_CONFIGS[scenario_name],
        seed=seed,
        label="Ours-Ours",
        **overrides,
    )


def kill_plan(worker: int, at: int) -> ChaosPlan:
    return ChaosPlan((WorkerKill(worker=worker, at=at),))


class TestShardEdges:
    @pytest.mark.parametrize(
        "num_edges,num_workers", [(1, 1), (3, 2), (7, 3), (8, 8), (64, 4)]
    )
    def test_partition_covers_disjointly_in_order(self, num_edges, num_workers):
        shards = shard_edges(num_edges, num_workers)
        flat = [e for shard in shards for e in shard]
        assert flat == list(range(num_edges))  # cover, disjoint, contiguous
        assert all(shard for shard in shards)  # never an empty shard
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1  # near-even

    def test_more_workers_than_edges_caps_at_edges(self):
        assert shard_edges(3, 8) == [(0,), (1,), (2,)]

    def test_validation(self):
        with pytest.raises(ValueError, match="num_edges"):
            shard_edges(0, 2)
        with pytest.raises(ValueError, match="num_workers"):
            shard_edges(2, 0)


class TestFrames:
    def test_round_trip_over_a_pipe(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            frame = {"type": "slot", "worker": 1, "t": 3, "outcomes": [1, 2]}
            send_frame(parent, frame)
            assert recv_frame(child) == frame
        finally:
            parent.close()
            child.close()

    def test_unknown_frame_type_rejected_at_send(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            with pytest.raises(ValueError, match="frame type"):
                send_frame(parent, {"type": "gossip"})
        finally:
            parent.close()
            child.close()

    def test_malformed_wire_bytes_rejected_at_recv(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            parent.send_bytes(pickle.dumps(["not", "a", "frame"]))
            with pytest.raises(ValueError, match="malformed"):
                recv_frame(child)
        finally:
            parent.close()
            child.close()

    def test_dead_peer_is_eof_and_drain_yields_the_backlog(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        send_frame(parent, {"type": "heartbeat", "worker": 0})
        send_frame(parent, {"type": "bye", "worker": 0})
        parent.close()
        backlog = list(drain_frames(child))
        assert [f["type"] for f in backlog] == ["heartbeat", "bye"]
        with pytest.raises(EOFError):
            recv_frame(child)
        child.close()

    def test_every_frame_type_is_wire_legal(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            for kind in FRAME_TYPES:
                send_frame(parent, {"type": kind})
                assert recv_frame(child)["type"] == kind
        finally:
            parent.close()
            child.close()


class TestReleaseTarget:
    def test_lockstep_releases_one_slot(self):
        assert release_target(4, horizon=40, lockstep=True, pipeline_depth=8) == 5

    def test_pipelined_releases_depth_slots(self):
        assert release_target(4, horizon=40, lockstep=False, pipeline_depth=8) == 12

    def test_never_crosses_a_snapshot_boundary(self):
        # completed slot 4, boundary at 8: the furthest safe slot is 7.
        assert (
            release_target(
                4, horizon=40, lockstep=False, pipeline_depth=8, snapshot_every=8
            )
            == 7
        )

    def test_clamped_to_the_horizon(self):
        assert release_target(38, horizon=40, lockstep=False, pipeline_depth=8) == 39


class TestWorkerDeath:
    def test_degrade_completes_with_survivors_bit_identical(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="degrade")
        tracer = Tracer()
        runtime = ShardRuntime(
            config, tracer=tracer, chaos=kill_plan(1, 10), **FAST
        )
        degraded = runtime.run()
        clean = ShardRuntime(shard_config("A", 0, num_workers=3), **FAST).run()

        # Edges couple only through trading (no feedback into selection), so
        # the survivors' whole trajectories are bit-equal to a clean run.
        survivors = [0, 2]
        assert np.array_equal(
            degraded.selections[:, survivors], clean.selections[:, survivors]
        )
        # The dead shard's edge is pinned offline at its last model.
        assert (degraded.selections[10:, 1] == degraded.selections[9, 1]).all()
        # Its offline slots contribute nothing to system cost or emissions.
        assert not np.array_equal(degraded.emissions, clean.emissions)

        health = runtime.health()
        assert health["status"] == "done"
        shard_status = {s["worker"]: s["failed"] for s in health["shards"]}
        assert shard_status == {0: False, 1: True, 2: False}

        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 1
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted

    def test_degrade_from_slot_zero_marks_whole_shard_offline(self):
        config = shard_config("B", 0, num_workers=2, on_worker_death="degrade")
        runtime = ShardRuntime(config, chaos=kill_plan(0, 0), **FAST)
        result = runtime.run()
        # Worker 0 owns edge 0 and never reported a slot: no model was ever
        # seen for it, and every one of its slots is synthesized offline.
        assert (result.selections[:, 0] == -1).all()
        assert runtime.health()["shards"][0]["failed"]

    def test_fail_policy_raises_and_names_the_shard(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="fail")
        runtime = ShardRuntime(config, chaos=kill_plan(2, 5), **FAST)
        with pytest.raises(RuntimeError, match="shard worker 2"):
            runtime.run()

    def test_degraded_partial_run_refuses_results(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="degrade")
        runtime = ShardRuntime(config, chaos=kill_plan(1, 10), **FAST)
        runtime.run(max_slots=20)
        with pytest.raises(RuntimeError, match="resume"):
            runtime.result()


class TestShardedSnapshots:
    def test_sharded_kill_resume_to_identical_digest(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        runtime = ShardRuntime(config, **FAST)
        partial = runtime.run(max_slots=19)  # dies mid-horizon (slot 18)
        assert partial is None and runtime.completed_slot == 18
        assert snap.exists()

        resumed = runtime_from_snapshot(snap, **FAST)
        assert isinstance(resumed, ShardRuntime)
        assert resumed.completed_slot + 1 == 16  # last boundary before kill
        result = resumed.run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_sharded_snapshot_resumes_in_process(self, tmp_path):
        # Snapshots are runtime-agnostic: a sharded run's file restores
        # into the in-process runtime and still hits the golden digest.
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        ShardRuntime(config, **FAST).run(max_slots=10)
        result = ServeRuntime.from_snapshot(snap).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_in_process_snapshot_resumes_sharded(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        # ServeRuntime ignores num_workers, so the first leg is in-process;
        # the snapshot's config then routes the resume to the shard tier.
        ServeRuntime(config).run(max_slots=10)
        resumed = runtime_from_snapshot(snap, **FAST)
        assert isinstance(resumed, ShardRuntime)
        result = resumed.run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_dataset_rng_identity_survives_sharded_snapshot(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A",
            0,
            adapter="dataset",
            num_workers=2,
            snapshot_every=8,
            snapshot_path=str(snap),
        )
        ShardRuntime(config, **FAST).run(max_slots=8)
        result = runtime_from_snapshot(snap, **FAST).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_partial_sharded_run_without_snapshot_cannot_continue(self):
        runtime = ShardRuntime(shard_config("B", 0, num_workers=2), **FAST)
        runtime.run(max_slots=5)
        # The edge state exited with the workers; only a snapshot file can
        # continue the run, and the runtime says so instead of corrupting it.
        with pytest.raises(RuntimeError, match="snapshot"):
            runtime.run()


class TestShardTraceMerge:
    def test_merged_shard_traces_match_the_single_process_summary(
        self, tmp_path
    ):
        config = shard_config("B", 1, num_workers=2)
        shard_logs = [tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"]
        parent_log = tmp_path / "parent.jsonl"
        tracer = Tracer([JsonlSink(parent_log)])
        ShardRuntime(
            config, tracer=tracer, shard_trace_paths=shard_logs, **FAST
        ).run()
        tracer.close()

        single_log = tmp_path / "single.jsonl"
        single_tracer = Tracer([JsonlSink(single_log)])
        serve_run(shard_config("B", 1), tracer=single_tracer)
        single_tracer.close()

        merged = summarize_traces([parent_log, *shard_logs])
        single = summarize_trace(single_log)
        # The sharded parent additionally records worker lifecycle events
        # (one spawn per shard here); everything else must match exactly.
        spawns = merged.event_counts.pop("worker_spawn")
        assert spawns == 2
        merged = dataclasses.replace(
            merged, events_total=merged.events_total - spawns
        )
        assert merged == single

    def test_shard_trace_path_count_must_match_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardRuntime(
                shard_config("A", 0, num_workers=2),
                shard_trace_paths=["only-one.jsonl"],
            )


class TestFleetSmoke:
    def test_64_edges_4_workers_shape_load_all_accounted(self):
        scenario = ScenarioConfig(
            dataset="synthetic",
            num_edges=64,
            horizon=12,
            num_models=4,
            n_test=200,
            seed=9,
        )
        config = ServeConfig(
            scenario=scenario,
            seed=9,
            adapter="shape",
            shape="sawtooth",
            shape_total_events=6000,
            shape_seed=9,
            virtual_clock=False,
            backpressure="shed",
            num_workers=4,
        )
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, **FAST)
        result = runtime.run()
        assert result is not None and result.num_edges == 64
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/events_in"] == 6000
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted
        assert counters["serve/slots_completed"] == 12
        assert len(runtime.health()["shards"]) == 4

    def test_heartbeats_flow_during_slow_slots(self):
        scenario = ScenarioConfig(
            dataset="synthetic", num_edges=2, horizon=6, seed=5
        )
        config = ServeConfig(
            scenario=scenario,
            seed=5,
            virtual_clock=False,
            slot_duration=0.1,
            num_workers=2,
        )
        tracer = Tracer()
        ShardRuntime(config, tracer=tracer, heartbeat_interval=0.02).run()
        assert tracer.metrics_snapshot()["counters"]["serve/heartbeats"] > 0


class TestChaosPlans:
    def plan(self) -> ChaosPlan:
        return ChaosPlan((
            WorkerKill(worker=1, at=10),
            WorkerStall(worker=0, at=5, seconds=0.1),
            TransportDrop(worker=0, at=3, count=2),
            RandomKills(probability=0.2, start=4, end=20, max_per_worker=1),
        ))

    def test_json_round_trip(self):
        plan = self.plan()
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        from repro.serve import load_chaos_plan

        path = tmp_path / "chaos.json"
        path.write_text(self.plan().to_json())
        assert load_chaos_plan(path) == self.plan()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="gremlin"):
            ChaosPlan.from_dict({"chaos": [{"kind": "gremlin", "at": 1}]})

    def test_realize_is_deterministic_and_bounded(self):
        plan = self.plan()
        kwargs = dict(num_workers=3, horizon=40, seed=0)
        first = realize_chaos(plan, **kwargs)
        assert first == realize_chaos(plan, **kwargs)
        for schedule in first.values():
            for at in schedule.kills:
                assert 0 <= at < 40
        # RandomKills honors max_per_worker on top of the named kill.
        assert all(len(s.kills) <= 2 for s in first.values())

    def test_realize_ignores_out_of_range_workers(self):
        plan = ChaosPlan((WorkerKill(worker=7, at=1),))
        assert realize_chaos(plan, num_workers=2, horizon=40, seed=0) == {}


class TestTransportFaults:
    def test_injected_transient_errors_are_retried(self):
        from repro.serve.frames import arm_transport_faults

        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            arm_transport_faults(3)
            send_frame(parent, {"type": "heartbeat", "worker": 0})
            assert recv_frame(child)["type"] == "heartbeat"
        finally:
            arm_transport_faults(0)
            parent.close()
            child.close()

    def test_transport_drop_chaos_is_invisible_in_the_results(self):
        # The bounded retry masks the drops entirely: the run still hits
        # the golden digest.
        config = shard_config("A", 0, num_workers=2)
        chaos = ChaosPlan((TransportDrop(worker=0, at=3, count=2),))
        result = ShardRuntime(config, chaos=chaos, **FAST).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_worker_stall_only_delays_the_run(self):
        config = shard_config("A", 0, num_workers=2)
        chaos = ChaosPlan((WorkerStall(worker=1, at=5, seconds=0.2),))
        result = ShardRuntime(config, chaos=chaos, **FAST).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]


#: Tight restart knobs so supervised-restart tests finish quickly.
RESTART = dict(
    on_worker_death="restart", restart_backoff_s=0.01, restart_backoff_max_s=0.1
)


class TestWorkerRestart:
    def test_restart_recovers_with_exact_accounting(self):
        config = shard_config("A", 0, num_workers=3, **RESTART)
        tracer = Tracer()
        samples = []
        runtime = ShardRuntime(
            config,
            tracer=tracer,
            chaos=kill_plan(1, 10),
            on_stage_sample=lambda stage, s: samples.append(stage),
            **FAST,
        )
        healed = runtime.run()
        clean_tracer = Tracer()
        clean = ShardRuntime(
            shard_config("A", 0, num_workers=3), tracer=clean_tracer, **FAST
        ).run()

        # Survivors are bit-identical to an unfaulted run; the killed
        # shard's edge went offline only for the replayed gap.
        survivors = [0, 2]
        assert np.array_equal(
            healed.selections[:, survivors], clean.selections[:, survivors]
        )
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 1
        assert counters["serve/restarts"] == 1
        # Full recovery: every arrival is still accounted for — the
        # replayed offline slots carry their real arrival counts, so even
        # events_in matches the clean run exactly.
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted
        clean_counters = clean_tracer.metrics_snapshot()["counters"]
        assert counters["serve/events_in"] == clean_counters["serve/events_in"]
        assert "recovery" in samples

        health = runtime.health()
        assert health["status"] == "done"
        by_worker = {s["worker"]: s for s in health["shards"]}
        assert not any(s["failed"] for s in by_worker.values())
        assert by_worker[1]["generation"] == 1

    def test_restart_run_is_reproducible_against_itself(self):
        def digest():
            config = shard_config("A", 0, num_workers=3, **RESTART)
            return result_digest(
                ShardRuntime(config, chaos=kill_plan(1, 10), **FAST).run()
            )

        assert digest() == digest()

    def test_simultaneous_deaths_restart_all_workers(self):
        config = shard_config("A", 0, num_workers=3, **RESTART)
        chaos = ChaosPlan((
            WorkerKill(worker=0, at=6),
            WorkerKill(worker=2, at=6),
        ))
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, chaos=chaos, **FAST)
        healed = runtime.run()
        clean = ShardRuntime(shard_config("A", 0, num_workers=3), **FAST).run()

        assert np.array_equal(healed.selections[:, 1], clean.selections[:, 1])
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 2
        assert counters["serve/restarts"] == 2
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted
        assert not any(s["failed"] for s in runtime.health()["shards"])

    def test_simultaneous_deaths_degrade_keeps_accounting(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="degrade")
        chaos = ChaosPlan((
            WorkerKill(worker=0, at=6),
            WorkerKill(worker=2, at=6),
        ))
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, chaos=chaos, **FAST)
        degraded = runtime.run()
        clean = ShardRuntime(shard_config("A", 0, num_workers=3), **FAST).run()

        assert np.array_equal(
            degraded.selections[:, 1], clean.selections[:, 1]
        )
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 2
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted
        failed = {s["worker"] for s in runtime.health()["shards"] if s["failed"]}
        assert failed == {0, 2}

    def test_restart_budget_exhaustion_falls_back_to_degrade(self):
        config = shard_config(
            "A", 0, num_workers=3, max_restarts=1, **RESTART
        )
        chaos = ChaosPlan((
            WorkerKill(worker=1, at=4),
            WorkerKill(worker=1, at=12),
        ))
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, chaos=chaos, **FAST)
        result = runtime.run()
        assert result is not None
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 2
        assert counters["serve/restarts"] == 1
        assert runtime.health()["shards"][1]["failed"]
        # From the second death on, the shard's edge is pinned offline.
        assert (result.selections[13:, 1] == result.selections[12, 1]).all()

    def test_lifecycle_events_emitted(self):
        from repro.obs import InMemorySink

        sink = InMemorySink()
        config = shard_config("A", 0, num_workers=3, **RESTART)
        ShardRuntime(
            config, tracer=Tracer([sink]), chaos=kill_plan(1, 10), **FAST
        ).run()
        spawns = sink.of_type("worker_spawn")
        deaths = sink.of_type("worker_death")
        restarts = sink.of_type("worker_restart")
        assert len(spawns) == 4  # 3 initial + 1 respawn
        assert [e.generation for e in spawns].count(1) == 1
        assert len(deaths) == 1 and deaths[0].worker == 1
        assert deaths[0].policy == "restart"
        assert len(restarts) == 1 and restarts[0].attempt == 1
        assert restarts[0].replay_from <= restarts[0].t

    def test_worker_traceback_travels_to_the_fail_exception(self):
        # A worker-side crash (a real exception, not a kill) surfaces with
        # the worker's traceback attached under on_worker_death='fail' —
        # here, worker 1's trace sink points into a nonexistent directory.
        runtime = ShardRuntime(
            shard_config("A", 0, num_workers=3, on_worker_death="fail"),
            shard_trace_paths=[
                "/dev/null", "/nonexistent-dir/shard1.jsonl", "/dev/null"
            ],
            **FAST,
        )
        with pytest.raises(RuntimeError) as excinfo:
            runtime.run()
        message = str(excinfo.value)
        assert "shard worker 1" in message
        assert "Traceback" in message  # the worker-side traceback rode along


class TestReconfig:
    def test_plan_round_trip_and_loading(self, tmp_path):
        from repro.serve import AddEdge, Rebalance, ReconfigPlan, RemoveEdge
        from repro.serve import load_reconfig_plan

        plan = ReconfigPlan((
            RemoveEdge(at=4, edge=0),
            AddEdge(at=12, edge=0),
            Rebalance(at=20, num_workers=3),
        ))
        assert ReconfigPlan.from_json(plan.to_json()) == plan
        path = tmp_path / "reconfig.json"
        path.write_text(plan.to_json())
        assert load_reconfig_plan(path) == plan
        assert plan.barriers() == (4, 12, 20)

    def test_pure_rebalance_is_bit_identical_to_golden(self):
        from repro.serve import Rebalance, ReconfigPlan

        config = shard_config("A", 0, num_workers=2)
        plan = ReconfigPlan((Rebalance(at=8, num_workers=3),))
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, reconfig=plan, **FAST)
        result = runtime.run()
        # Repartitioning moves no state and rescales nothing: the digest
        # still matches the unreconfigured golden bit for bit.
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]
        assert runtime.health()["num_workers"] == 3
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/reconfigs"] == 1

    def test_remove_edge_pins_it_offline_and_is_reproducible(self):
        from repro.serve import ReconfigPlan, RemoveEdge

        def run_once():
            config = shard_config("A", 0, num_workers=2)
            plan = ReconfigPlan((RemoveEdge(at=10, edge=2),))
            runtime = ShardRuntime(config, reconfig=plan, **FAST)
            return runtime, runtime.run()

        runtime, result = run_once()
        assert (result.selections[10:, 2] == result.selections[9, 2]).all()
        assert runtime.health()["active_edges"] == 2
        _, again = run_once()
        assert result_digest(result) == result_digest(again)

    def test_remove_then_readd_catches_the_edge_back_up(self):
        from repro.serve import AddEdge, ReconfigPlan, RemoveEdge

        def run_once():
            config = shard_config("A", 0, num_workers=2)
            plan = ReconfigPlan((
                RemoveEdge(at=4, edge=0),
                AddEdge(at=12, edge=0),
            ))
            return ShardRuntime(config, reconfig=plan, **FAST).run()

        result = run_once()
        # Offline while inactive, live again after readmission.
        assert (result.selections[4:12, 0] == result.selections[3, 0]).all()
        assert result_digest(result) == result_digest(run_once())

    def test_reconfig_rejects_snapshots_and_out_of_horizon_ops(self, tmp_path):
        from repro.serve import Rebalance, ReconfigPlan

        plan = ReconfigPlan((Rebalance(at=8, num_workers=1),))
        with pytest.raises(ValueError, match="snapshot"):
            ShardRuntime(
                shard_config(
                    "A",
                    0,
                    num_workers=2,
                    snapshot_every=8,
                    snapshot_path=str(tmp_path / "s.pkl"),
                ),
                reconfig=plan,
            )
        late = ReconfigPlan((Rebalance(at=400, num_workers=1),))
        with pytest.raises(ValueError, match="horizon"):
            ShardRuntime(shard_config("A", 0, num_workers=2), reconfig=late)

    def test_plans_force_the_shard_runtime(self):
        from repro.serve import Rebalance, ReconfigPlan, make_runtime

        config = shard_config("A", 0, num_workers=1)
        plan = ReconfigPlan((Rebalance(at=8, num_workers=1),))
        assert isinstance(make_runtime(config, reconfig=plan), ShardRuntime)
        assert isinstance(
            make_runtime(config, chaos=kill_plan(0, 35)), ShardRuntime
        )
        assert isinstance(make_runtime(config), ServeRuntime)


class TestSoakCli:
    def test_soak_smoke_single_shape(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "soak.json"
        code = main([
            "soak", "--smoke", "--shape", "spike", "--output", str(out)
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format_version"] == 3
        (report,) = payload["reports"]
        assert report["shape"] == "spike"
        assert report["accounting_ok"] is True
        assert report["events_in"] == 2000
        assert report["worker_deaths"] == 0
        assert report["recovery_ok"] is True
        for stage in ("queue", "serve", "trade", "slot"):
            assert report["stages"][stage]["count"] > 0
            assert report["stages"][stage]["p95_s"] >= 0.0

    def test_soak_chaos_smoke_heals_and_accounts(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.serve import ChaosPlan, WorkerKill

        plan_path = tmp_path / "chaos.json"
        plan_path.write_text(
            ChaosPlan((WorkerKill(worker=1, at=10),)).to_json()
        )
        out = tmp_path / "soak.json"
        code = main([
            "soak",
            "--smoke",
            "--shape", "sawtooth",
            "--chaos", str(plan_path),
            "--recovery-p99", "30.0",
            "--output", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        (report,) = payload["reports"]
        assert report["worker_deaths"] == 1
        assert report["restarts"] == 1
        assert report["degraded_workers"] == 0
        assert report["recovery_ok"] is True
        assert report["accounting_ok"] is True
        # Full recovery: the replayed slots carried their real arrivals.
        assert report["events_in"] == 2000
        assert report["stages"]["recovery"]["count"] == 1

    def test_soak_bench_projection_written(self, tmp_path):
        from repro.bench.report import load_report
        from repro.cli import main

        code = main([
            "soak",
            "--shape", "constant",
            "--edges", "2",
            "--workers", "2",
            "--horizon", "8",
            "--events", "200",
            "--output", str(tmp_path / "soak.json"),
            "--bench-output", str(tmp_path),
        ])
        assert code == 0
        bench = load_report(str(tmp_path / "BENCH_soak_constant.json"))
        assert bench.suite == "soak_constant"
        assert "served_fraction" in bench.ratios
