"""Tests for repro.serve.shard: the multi-process sharded edge tier.

Parity across worker counts lives in ``tests/test_serve.py`` next to the
other golden-digest locks (``TestShardedParity``); this file covers the
shard machinery itself:

* the edge partition and the wire protocol;
* resilience — a worker killed mid-horizon under both death policies,
  with the survivors' trajectories bit-identical and the accounting
  equation intact;
* sharded snapshot/resume (and cross-resume against the in-process
  runtime — snapshots are runtime-agnostic);
* the deterministic per-shard trace merge;
* a 64-edge x 4-worker fleet smoke and the ``repro soak`` CLI.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.obs import JsonlSink, Tracer, summarize_trace, summarize_traces
from repro.serve import (
    ServeConfig,
    ServeRuntime,
    ShardRuntime,
    release_target,
    runtime_from_snapshot,
    serve_run,
    shard_edges,
)
from repro.serve.frames import (
    FRAME_TYPES,
    drain_frames,
    recv_frame,
    send_frame,
)
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from tests.test_golden_digests import GOLDEN_DIGESTS, SCENARIO_CONFIGS

#: Fast heartbeat so liveness machinery is exercised within test runtimes.
FAST = dict(heartbeat_interval=0.05)


def shard_config(scenario_name="A", seed=0, **overrides):
    return ServeConfig(
        scenario=SCENARIO_CONFIGS[scenario_name],
        seed=seed,
        label="Ours-Ours",
        **overrides,
    )


class TestShardEdges:
    @pytest.mark.parametrize(
        "num_edges,num_workers", [(1, 1), (3, 2), (7, 3), (8, 8), (64, 4)]
    )
    def test_partition_covers_disjointly_in_order(self, num_edges, num_workers):
        shards = shard_edges(num_edges, num_workers)
        flat = [e for shard in shards for e in shard]
        assert flat == list(range(num_edges))  # cover, disjoint, contiguous
        assert all(shard for shard in shards)  # never an empty shard
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1  # near-even

    def test_more_workers_than_edges_caps_at_edges(self):
        assert shard_edges(3, 8) == [(0,), (1,), (2,)]

    def test_validation(self):
        with pytest.raises(ValueError, match="num_edges"):
            shard_edges(0, 2)
        with pytest.raises(ValueError, match="num_workers"):
            shard_edges(2, 0)


class TestFrames:
    def test_round_trip_over_a_pipe(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            frame = {"type": "slot", "worker": 1, "t": 3, "outcomes": [1, 2]}
            send_frame(parent, frame)
            assert recv_frame(child) == frame
        finally:
            parent.close()
            child.close()

    def test_unknown_frame_type_rejected_at_send(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            with pytest.raises(ValueError, match="frame type"):
                send_frame(parent, {"type": "gossip"})
        finally:
            parent.close()
            child.close()

    def test_malformed_wire_bytes_rejected_at_recv(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            parent.send_bytes(pickle.dumps(["not", "a", "frame"]))
            with pytest.raises(ValueError, match="malformed"):
                recv_frame(child)
        finally:
            parent.close()
            child.close()

    def test_dead_peer_is_eof_and_drain_yields_the_backlog(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        send_frame(parent, {"type": "heartbeat", "worker": 0})
        send_frame(parent, {"type": "bye", "worker": 0})
        parent.close()
        backlog = list(drain_frames(child))
        assert [f["type"] for f in backlog] == ["heartbeat", "bye"]
        with pytest.raises(EOFError):
            recv_frame(child)
        child.close()

    def test_every_frame_type_is_wire_legal(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            for kind in FRAME_TYPES:
                send_frame(parent, {"type": kind})
                assert recv_frame(child)["type"] == kind
        finally:
            parent.close()
            child.close()


class TestReleaseTarget:
    def test_lockstep_releases_one_slot(self):
        assert release_target(4, horizon=40, lockstep=True, pipeline_depth=8) == 5

    def test_pipelined_releases_depth_slots(self):
        assert release_target(4, horizon=40, lockstep=False, pipeline_depth=8) == 12

    def test_never_crosses_a_snapshot_boundary(self):
        # completed slot 4, boundary at 8: the furthest safe slot is 7.
        assert (
            release_target(
                4, horizon=40, lockstep=False, pipeline_depth=8, snapshot_every=8
            )
            == 7
        )

    def test_clamped_to_the_horizon(self):
        assert release_target(38, horizon=40, lockstep=False, pipeline_depth=8) == 39


class TestWorkerDeath:
    def test_degrade_completes_with_survivors_bit_identical(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="degrade")
        tracer = Tracer()
        runtime = ShardRuntime(
            config, tracer=tracer, _worker_chaos={1: 10}, **FAST
        )
        degraded = runtime.run()
        clean = ShardRuntime(shard_config("A", 0, num_workers=3), **FAST).run()

        # Edges couple only through trading (no feedback into selection), so
        # the survivors' whole trajectories are bit-equal to a clean run.
        survivors = [0, 2]
        assert np.array_equal(
            degraded.selections[:, survivors], clean.selections[:, survivors]
        )
        # The dead shard's edge is pinned offline at its last model.
        assert (degraded.selections[10:, 1] == degraded.selections[9, 1]).all()
        # Its offline slots contribute nothing to system cost or emissions.
        assert not np.array_equal(degraded.emissions, clean.emissions)

        health = runtime.health()
        assert health["status"] == "done"
        shard_status = {s["worker"]: s["failed"] for s in health["shards"]}
        assert shard_status == {0: False, 1: True, 2: False}

        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/shard_deaths"] == 1
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted

    def test_degrade_from_slot_zero_marks_whole_shard_offline(self):
        config = shard_config("B", 0, num_workers=2, on_worker_death="degrade")
        runtime = ShardRuntime(config, _worker_chaos={0: 0}, **FAST)
        result = runtime.run()
        # Worker 0 owns edge 0 and never reported a slot: no model was ever
        # seen for it, and every one of its slots is synthesized offline.
        assert (result.selections[:, 0] == -1).all()
        assert runtime.health()["shards"][0]["failed"]

    def test_fail_policy_raises_and_names_the_shard(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="fail")
        runtime = ShardRuntime(config, _worker_chaos={2: 5}, **FAST)
        with pytest.raises(RuntimeError, match="shard worker 2"):
            runtime.run()

    def test_degraded_partial_run_refuses_results(self):
        config = shard_config("A", 0, num_workers=3, on_worker_death="degrade")
        runtime = ShardRuntime(config, _worker_chaos={1: 10}, **FAST)
        runtime.run(max_slots=20)
        with pytest.raises(RuntimeError, match="resume"):
            runtime.result()


class TestShardedSnapshots:
    def test_sharded_kill_resume_to_identical_digest(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        runtime = ShardRuntime(config, **FAST)
        partial = runtime.run(max_slots=19)  # dies mid-horizon (slot 18)
        assert partial is None and runtime.completed_slot == 18
        assert snap.exists()

        resumed = runtime_from_snapshot(snap, **FAST)
        assert isinstance(resumed, ShardRuntime)
        assert resumed.completed_slot + 1 == 16  # last boundary before kill
        result = resumed.run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_sharded_snapshot_resumes_in_process(self, tmp_path):
        # Snapshots are runtime-agnostic: a sharded run's file restores
        # into the in-process runtime and still hits the golden digest.
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        ShardRuntime(config, **FAST).run(max_slots=10)
        result = ServeRuntime.from_snapshot(snap).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_in_process_snapshot_resumes_sharded(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A", 0, num_workers=2, snapshot_every=8, snapshot_path=str(snap)
        )
        # ServeRuntime ignores num_workers, so the first leg is in-process;
        # the snapshot's config then routes the resume to the shard tier.
        ServeRuntime(config).run(max_slots=10)
        resumed = runtime_from_snapshot(snap, **FAST)
        assert isinstance(resumed, ShardRuntime)
        result = resumed.run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_dataset_rng_identity_survives_sharded_snapshot(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = shard_config(
            "A",
            0,
            adapter="dataset",
            num_workers=2,
            snapshot_every=8,
            snapshot_path=str(snap),
        )
        ShardRuntime(config, **FAST).run(max_slots=8)
        result = runtime_from_snapshot(snap, **FAST).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_partial_sharded_run_without_snapshot_cannot_continue(self):
        runtime = ShardRuntime(shard_config("B", 0, num_workers=2), **FAST)
        runtime.run(max_slots=5)
        # The edge state exited with the workers; only a snapshot file can
        # continue the run, and the runtime says so instead of corrupting it.
        with pytest.raises(RuntimeError, match="snapshot"):
            runtime.run()


class TestShardTraceMerge:
    def test_merged_shard_traces_match_the_single_process_summary(
        self, tmp_path
    ):
        config = shard_config("B", 1, num_workers=2)
        shard_logs = [tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"]
        parent_log = tmp_path / "parent.jsonl"
        tracer = Tracer([JsonlSink(parent_log)])
        ShardRuntime(
            config, tracer=tracer, shard_trace_paths=shard_logs, **FAST
        ).run()
        tracer.close()

        single_log = tmp_path / "single.jsonl"
        single_tracer = Tracer([JsonlSink(single_log)])
        serve_run(shard_config("B", 1), tracer=single_tracer)
        single_tracer.close()

        merged = summarize_traces([parent_log, *shard_logs])
        single = summarize_trace(single_log)
        assert merged == single

    def test_shard_trace_path_count_must_match_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardRuntime(
                shard_config("A", 0, num_workers=2),
                shard_trace_paths=["only-one.jsonl"],
            )


class TestFleetSmoke:
    def test_64_edges_4_workers_shape_load_all_accounted(self):
        scenario = ScenarioConfig(
            dataset="synthetic",
            num_edges=64,
            horizon=12,
            num_models=4,
            n_test=200,
            seed=9,
        )
        config = ServeConfig(
            scenario=scenario,
            seed=9,
            adapter="shape",
            shape="sawtooth",
            shape_total_events=6000,
            shape_seed=9,
            virtual_clock=False,
            backpressure="shed",
            num_workers=4,
        )
        tracer = Tracer()
        runtime = ShardRuntime(config, tracer=tracer, **FAST)
        result = runtime.run()
        assert result is not None and result.num_edges == 64
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/events_in"] == 6000
        accounted = (
            counters["serve/events_served"]
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert counters["serve/events_in"] == accounted
        assert counters["serve/slots_completed"] == 12
        assert len(runtime.health()["shards"]) == 4

    def test_heartbeats_flow_during_slow_slots(self):
        scenario = ScenarioConfig(
            dataset="synthetic", num_edges=2, horizon=6, seed=5
        )
        config = ServeConfig(
            scenario=scenario,
            seed=5,
            virtual_clock=False,
            slot_duration=0.1,
            num_workers=2,
        )
        tracer = Tracer()
        ShardRuntime(config, tracer=tracer, heartbeat_interval=0.02).run()
        assert tracer.metrics_snapshot()["counters"]["serve/heartbeats"] > 0


class TestSoakCli:
    def test_soak_smoke_single_shape(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "soak.json"
        code = main([
            "soak", "--smoke", "--shape", "spike", "--output", str(out)
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format_version"] == 1
        (report,) = payload["reports"]
        assert report["shape"] == "spike"
        assert report["accounting_ok"] is True
        assert report["events_in"] == 2000
        for stage in ("queue", "serve", "trade", "slot"):
            assert report["stages"][stage]["count"] > 0
            assert report["stages"][stage]["p95_s"] >= 0.0

    def test_soak_bench_projection_written(self, tmp_path):
        from repro.bench.report import load_report
        from repro.cli import main

        code = main([
            "soak",
            "--shape", "constant",
            "--edges", "2",
            "--workers", "2",
            "--horizon", "8",
            "--events", "200",
            "--output", str(tmp_path / "soak.json"),
            "--bench-output", str(tmp_path),
        ])
        assert code == 0
        bench = load_report(str(tmp_path / "BENCH_soak_constant.json"))
        assert bench.suite == "soak_constant"
        assert "served_fraction" in bench.ratios
