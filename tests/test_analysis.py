"""Tests for theoretical bounds and diagnostics."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    block_count_bound,
    suboptimality_gaps,
    theorem1_bound,
    theorem2_bounds,
    theorem3_bound,
)
from repro.analysis.diagnostics import (
    dual_tracking_error,
    emission_coverage_ratio,
    exploration_fraction,
    switch_rate_series,
)
from repro.core.blocks import build_schedule
from repro.experiments.runner import run_combo


class TestBlockCountBound:
    @pytest.mark.parametrize("u", [0.5, 2.0, 10.0])
    @pytest.mark.parametrize("horizon", [50, 400])
    def test_dominates_actual_block_count(self, u, horizon):
        schedule = build_schedule(horizon, u, 6)
        assert schedule.num_blocks <= block_count_bound(u, 6, horizon) + 1

    def test_zero_switch_cost_gives_horizon(self):
        assert block_count_bound(0.0, 6, 100) == 100.0

    def test_decreases_with_switch_cost(self):
        assert block_count_bound(10.0, 6, 400) < block_count_bound(1.0, 6, 400)


class TestSuboptimalityGaps:
    def test_best_arm_has_zero_gap(self):
        gaps = suboptimality_gaps(
            np.array([0.2, 0.5]), np.array([[0.1, 0.1], [0.0, 0.0]])
        )
        assert gaps.shape == (2, 2)
        np.testing.assert_allclose(gaps.min(axis=1), [0.0, 0.0])

    def test_latency_can_flip_best_arm(self):
        gaps = suboptimality_gaps(
            np.array([0.2, 0.3]), np.array([[0.5, 0.0]])
        )
        assert gaps[0, 1] == 0.0  # arm 1 best despite higher loss

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            suboptimality_gaps(np.array([0.1]), np.zeros((2, 3)))


class TestTheorem1Bound:
    def test_grows_as_cube_root_of_horizon(self):
        # The + u^2 + ln T terms dilute the ratio at small T, so compare
        # at large horizons where the T^(1/3) term dominates.
        gaps = np.array([0.0, 0.3, 0.6])
        small = theorem1_bound(2.0, 3, 10**5, gaps)
        large = theorem1_bound(2.0, 3, 8 * 10**5, gaps)
        assert large / small == pytest.approx(2.0, rel=0.05)  # 8^(1/3)

    def test_identical_arms_no_regret(self):
        assert theorem1_bound(2.0, 3, 100, np.zeros(3)) == 0.0

    def test_smaller_gaps_larger_bound(self):
        wide = theorem1_bound(2.0, 2, 100, np.array([0.0, 0.5]))
        narrow = theorem1_bound(2.0, 2, 100, np.array([0.0, 0.05]))
        assert narrow > wide

    def test_dominates_measured_bandit_regret(self):
        """Algorithm 1's measured regret+switching must sit under the bound."""
        from tests.test_theory_properties import bandit_regret

        means = np.array([0.2, 0.5, 0.8, 1.1])
        gaps = means - means.min()
        for horizon in (400, 1600):
            regret, switches = bandit_regret(horizon, seed=0, switch_cost=2.0)
            measured = regret + 2.0 * switches
            bound = theorem1_bound(2.0, 4, horizon, gaps)
            assert measured <= bound, f"T={horizon}: {measured} > {bound}"


class TestTheorem2And3:
    def test_theorem2_scaling(self):
        regret_a, fit_a = theorem2_bounds(100)
        regret_b, fit_b = theorem2_bounds(800)
        assert regret_b / regret_a == pytest.approx(4.0)  # 8^(2/3)
        assert fit_a == regret_a

    def test_theorem3_combines_terms(self):
        u = np.array([1.0, 2.0])
        gaps = np.array([[0.0, 0.4], [0.0, 0.4]])
        total = theorem3_bound(u, 2, 200, gaps)
        parts = (
            theorem1_bound(1.0, 2, 200, gaps[0])
            + theorem1_bound(2.0, 2, 200, gaps[1])
            + theorem2_bounds(200)[0]
        )
        assert total == pytest.approx(parts)

    def test_theorem3_shape_validation(self):
        with pytest.raises(ValueError):
            theorem3_bound(np.array([1.0]), 3, 100, np.zeros((2, 3)))


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def runs(self, small_scenario):
        ours = run_combo(small_scenario, "Ours", "Ours", seed=0)
        random = run_combo(small_scenario, "Ran", "Ran", seed=0)
        return ours, random

    def test_exploration_fraction_ordering(self, runs):
        ours, random = runs
        assert 0.0 <= exploration_fraction(ours) < exploration_fraction(random)

    def test_switch_rate_random_near_uniform(self, runs, small_scenario):
        _, random = runs
        n = small_scenario.num_models
        rate = switch_rate_series(random, window=40)[-1]
        assert rate == pytest.approx((n - 1) / n, abs=0.15)

    def test_switch_rate_ours_decays(self, runs):
        ours, _ = runs
        series = switch_rate_series(ours, window=10)
        assert series[-1] < series[0]

    def test_emission_coverage_approaches_one(self, runs):
        ours, _ = runs
        coverage = emission_coverage_ratio(ours)
        assert coverage[-1] == pytest.approx(1.0, abs=0.15)

    def test_dual_tracking_error(self, small_scenario):
        from repro.core import OnlineCarbonTrading
        from repro.experiments.runner import make_selection_policies
        from repro.sim.simulator import Simulator
        from repro.utils.rng import RngFactory

        trading = OnlineCarbonTrading()
        selection = make_selection_policies("Ours", small_scenario, RngFactory(0))
        Simulator(small_scenario, selection, trading, run_seed=0).run()
        error = dual_tracking_error(trading.lambda_history, small_scenario.prices.buy)
        # The multiplier shadows the price level once trading equilibrates.
        assert error < 0.8 * float(np.mean(small_scenario.prices.buy))

    def test_dual_tracking_validation(self):
        with pytest.raises(ValueError):
            dual_tracking_error([1.0], np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            dual_tracking_error([], np.array([]))
