"""Tests for Algorithm 1 (online model selection)."""

import numpy as np
import pytest

from repro.core.model_selection import OnlineModelSelection


def drive(policy, loss_fn, horizon):
    """Run the select/observe loop; return per-slot selections."""
    selections = []
    for t in range(horizon):
        model = policy.select(t)
        policy.observe(t, model, loss_fn(model, t))
        selections.append(model)
    return np.array(selections)


class TestOnlineModelSelection:
    def test_switches_only_at_block_starts(self):
        rng = np.random.default_rng(0)
        policy = OnlineModelSelection(4, horizon=100, switch_cost=3.0, rng=rng)
        selections = drive(policy, lambda m, t: float(m), 100)
        starts = set(policy.schedule.starts.tolist())
        for t in range(1, 100):
            if selections[t] != selections[t - 1]:
                assert t in starts, f"switch at non-boundary slot {t}"

    def test_switch_count_bounded_by_blocks(self):
        rng = np.random.default_rng(1)
        policy = OnlineModelSelection(5, horizon=200, switch_cost=2.0, rng=rng)
        selections = drive(policy, lambda m, t: 1.0, 200)
        switches = 1 + int(np.sum(selections[1:] != selections[:-1]))
        assert switches <= policy.schedule.num_blocks

    def test_concentrates_on_best_arm(self):
        """With a clear gap, the best arm gets the majority of slots."""
        rng = np.random.default_rng(2)
        policy = OnlineModelSelection(4, horizon=3000, switch_cost=0.5, rng=rng)
        noise = np.random.default_rng(3)
        losses = np.array([0.1, 0.9, 0.9, 0.9])

        def loss_fn(m, t):
            return float(np.clip(losses[m] + 0.05 * noise.standard_normal(), 0, 2))

        selections = drive(policy, loss_fn, 3000)
        counts = np.bincount(selections, minlength=4)
        assert counts[0] > 0.5 * 3000
        assert counts[0] == max(counts)

    def test_selection_counts_property(self):
        rng = np.random.default_rng(4)
        policy = OnlineModelSelection(3, horizon=50, switch_cost=1.0, rng=rng)
        drive(policy, lambda m, t: 1.0, 50)
        counts = policy.selection_counts
        assert counts.sum() == 50

    def test_probability_history_valid(self):
        rng = np.random.default_rng(5)
        policy = OnlineModelSelection(3, horizon=60, switch_cost=1.0, rng=rng)
        drive(policy, lambda m, t: float(m), 60)
        history = policy.probability_history
        assert len(history) == policy.schedule.num_blocks
        for p in history:
            assert p.sum() == pytest.approx(1.0, abs=1e-8)
            assert np.all(p >= 0)

    def test_out_of_order_slots_rejected(self):
        rng = np.random.default_rng(6)
        policy = OnlineModelSelection(3, horizon=100, switch_cost=5.0, rng=rng)
        policy.select(0)
        with pytest.raises(RuntimeError, match="order"):
            # Slot far in the future skips whole blocks.
            policy.select(99)

    def test_observe_wrong_model_rejected(self):
        rng = np.random.default_rng(7)
        policy = OnlineModelSelection(3, horizon=10, switch_cost=1.0, rng=rng)
        model = policy.select(0)
        wrong = (model + 1) % 3
        with pytest.raises(ValueError, match="hosts"):
            policy.observe(0, wrong, 1.0)

    def test_observe_nonfinite_loss_rejected(self):
        rng = np.random.default_rng(8)
        policy = OnlineModelSelection(3, horizon=10, switch_cost=1.0, rng=rng)
        model = policy.select(0)
        with pytest.raises(ValueError):
            policy.observe(0, model, float("inf"))

    def test_slot_outside_horizon_rejected(self):
        rng = np.random.default_rng(9)
        policy = OnlineModelSelection(3, horizon=10, switch_cost=1.0, rng=rng)
        with pytest.raises(ValueError):
            policy.select(10)

    def test_invalid_construction(self):
        rng = np.random.default_rng(10)
        with pytest.raises(ValueError):
            OnlineModelSelection(3, horizon=0, switch_cost=1.0, rng=rng)
        with pytest.raises(ValueError):
            OnlineModelSelection(3, horizon=10, switch_cost=-1.0, rng=rng)

    def test_deterministic_given_rng(self):
        def run(seed):
            policy = OnlineModelSelection(
                4, horizon=80, switch_cost=2.0, rng=np.random.default_rng(seed)
            )
            return drive(policy, lambda m, t: float(m) * 0.2, 80)

        np.testing.assert_array_equal(run(11), run(11))
        assert not np.array_equal(run(11), run(12))

    def test_higher_switch_cost_fewer_switches(self):
        def count_switches(switch_cost):
            rng = np.random.default_rng(13)
            policy = OnlineModelSelection(4, horizon=400, switch_cost=switch_cost, rng=rng)
            selections = drive(policy, lambda m, t: float(m) * 0.1, 400)
            return int(np.sum(selections[1:] != selections[:-1]))

        assert count_switches(10.0) < count_switches(0.5)
