"""Tests for Algorithm 2 (online carbon trading)."""

import numpy as np
import pytest

from repro.core.carbon_trading import OnlineCarbonTrading
from repro.policies.trading import TradeDecision, TradingContext


def make_context(
    t=1,
    horizon=100,
    cap=100.0,
    buy=8.0,
    sell=7.2,
    prev_buy=8.0,
    prev_sell=7.2,
    prev_emissions=10.0,
    cumulative=10.0,
    holdings=100.0,
    mean_emissions=10.0,
    bound=50.0,
):
    return TradingContext(
        t=t,
        horizon=horizon,
        cap=cap,
        buy_price=buy,
        sell_price=sell,
        prev_buy_price=prev_buy,
        prev_sell_price=prev_sell,
        prev_emissions=prev_emissions,
        cumulative_emissions=cumulative,
        holdings=holdings,
        mean_slot_emissions=mean_emissions,
        trade_bound=bound,
    )


class TestPrimalStep:
    def test_first_slot_trades_nothing(self):
        policy = OnlineCarbonTrading()
        decision = policy.decide(make_context(t=0))
        assert decision.buy == 0.0
        assert decision.sell == 0.0

    def test_closed_form_matches_theorem_formula(self):
        """z^t = [z^{t-1} - gamma2 (c^{t-1} - lambda)]^+, same for w."""
        policy = OnlineCarbonTrading(gamma1=0.1, gamma2=2.0)
        # Manufacture internal state: one observation raises lambda.
        ctx0 = make_context(t=0)
        policy.observe(ctx0, TradeDecision(buy=3.0, sell=1.0), emissions=30.0)
        lam = policy.dual_variable
        assert lam == pytest.approx(0.1 * (30.0 - 1.0 - 3.0 + 1.0))

        ctx = make_context(t=1, prev_buy=8.0, prev_sell=7.2)
        decision = policy.decide(ctx)
        expected_buy = min(max(3.0 - 2.0 * (8.0 - lam), 0.0), ctx.trade_bound)
        expected_sell = min(max(1.0 - 2.0 * (lam - 7.2), 0.0), ctx.trade_bound)
        assert decision.buy == pytest.approx(expected_buy)
        assert decision.sell == pytest.approx(expected_sell)

    def test_primal_step_minimizes_one_shot_objective(self):
        """The closed form must solve P2^t over the box numerically."""
        policy = OnlineCarbonTrading(gamma1=0.2, gamma2=3.0)
        ctx0 = make_context(t=0)
        policy.observe(ctx0, TradeDecision(buy=2.0, sell=0.5), emissions=25.0)
        lam = policy.dual_variable
        prev = np.array([2.0, 0.5])
        ctx = make_context(t=1, prev_buy=9.0, prev_sell=8.1, prev_emissions=25.0)
        decision = policy.decide(ctx)

        grad_f = np.array([9.0, -8.1])  # gradient of f^{t-1} at Z^{t-1}

        def objective(z, w):
            zvec = np.array([z, w])
            g_prev = 25.0 - ctx.cap_per_slot - z + w
            return (
                grad_f @ (zvec - prev)
                + lam * g_prev
                + np.sum((zvec - prev) ** 2) / (2 * 3.0)
            )

        best = objective(decision.buy, decision.sell)
        rng = np.random.default_rng(0)
        for _ in range(500):
            z = rng.uniform(0, ctx.trade_bound)
            w = rng.uniform(0, ctx.trade_bound)
            assert objective(z, w) >= best - 1e-8

    def test_high_dual_triggers_buying(self):
        policy = OnlineCarbonTrading(gamma1=1.0, gamma2=1.0)
        # Huge uncovered emissions -> lambda spikes above the price.
        policy.observe(make_context(t=0), TradeDecision(0.0, 0.0), emissions=100.0)
        decision = policy.decide(make_context(t=1))
        assert decision.buy > 0.0
        assert decision.sell == 0.0

    def test_low_dual_triggers_selling(self):
        policy = OnlineCarbonTrading(gamma1=1.0, gamma2=1.0)
        # No emissions at all: lambda stays zero, selling is profitable.
        policy.observe(make_context(t=0), TradeDecision(0.0, 0.0), emissions=0.0)
        assert policy.dual_variable == 0.0
        decision = policy.decide(make_context(t=1))
        assert decision.sell > 0.0
        assert decision.buy == 0.0

    def test_decisions_respect_bound(self):
        policy = OnlineCarbonTrading(gamma1=5.0, gamma2=100.0)
        policy.observe(make_context(t=0), TradeDecision(0.0, 0.0), emissions=500.0)
        decision = policy.decide(make_context(t=1, bound=10.0))
        assert 0.0 <= decision.buy <= 10.0
        assert 0.0 <= decision.sell <= 10.0


class TestDualStep:
    def test_dual_update_formula(self):
        policy = OnlineCarbonTrading(gamma1=0.5, gamma2=1.0)
        ctx = make_context(t=0, horizon=50, cap=100.0)
        policy.observe(ctx, TradeDecision(buy=4.0, sell=1.0), emissions=10.0)
        g = 10.0 - 100.0 / 50 - 4.0 + 1.0
        assert policy.dual_variable == pytest.approx(max(0.5 * g, 0.0))

    def test_dual_never_negative(self):
        policy = OnlineCarbonTrading(gamma1=1.0, gamma2=1.0)
        ctx = make_context(t=0, cap=1000.0, horizon=10)
        policy.observe(ctx, TradeDecision(0.0, 0.0), emissions=0.0)  # g very negative
        assert policy.dual_variable == 0.0

    def test_lambda_history_recorded(self):
        policy = OnlineCarbonTrading()
        for t in range(3):
            ctx = make_context(t=t)
            policy.observe(ctx, TradeDecision(0.0, 0.0), emissions=20.0)
        assert len(policy.lambda_history) == 3

    def test_negative_emissions_rejected(self):
        policy = OnlineCarbonTrading()
        with pytest.raises(ValueError):
            policy.observe(make_context(t=0), TradeDecision(0.0, 0.0), emissions=-1.0)


class TestLongRunBehaviour:
    def _simulate(self, rectified=True, horizon=400, emissions_level=20.0):
        policy = OnlineCarbonTrading(gamma1=0.2, gamma2=4.0, rectified=rectified)
        rng = np.random.default_rng(0)
        cap = 100.0
        bought = sold = emitted = 0.0
        for t in range(horizon):
            price = float(rng.uniform(5.9, 10.9))
            ctx = make_context(
                t=t,
                horizon=horizon,
                cap=cap,
                buy=price,
                sell=0.9 * price,
                prev_buy=price,
                prev_sell=0.9 * price,
                bound=80.0,
            )
            decision = policy.decide(ctx)
            emissions = float(emissions_level * rng.uniform(0.5, 1.5))
            policy.observe(ctx, decision, emissions)
            bought += decision.buy
            sold += decision.sell
            emitted += emissions
        violation = max(emitted - (cap + bought - sold), 0.0)
        return violation, emitted

    def test_long_run_violation_is_small(self):
        violation, emitted = self._simulate()
        assert violation < 0.05 * emitted

    def test_step_sizes_for_horizon_scaling(self):
        g1_small, g2_small = OnlineCarbonTrading.step_sizes_for_horizon(160)
        g1_large, g2_large = OnlineCarbonTrading.step_sizes_for_horizon(1280)
        # gamma = O(T^{-1/3}): doubling T three times halves the step.
        assert g1_large == pytest.approx(g1_small / 2)
        assert g2_large == pytest.approx(g2_small / 2)

    def test_invalid_step_sizes(self):
        with pytest.raises(ValueError):
            OnlineCarbonTrading(gamma1=0.0)
        with pytest.raises(ValueError):
            OnlineCarbonTrading(gamma2=-1.0)
