"""Property-based simulator invariants (hypothesis).

For randomly drawn tiny scenarios and policy combinations, structural
invariants of the simulation must always hold: valid selections, bounded
trades, non-negative fit, exact accounting identities, and policy-
independent workloads (common random numbers).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_combo
from repro.sim.config import CostWeights, ScenarioConfig
from repro.sim.scenario import build_scenario

SELECTIONS = ("Ours", "Ran", "Greedy", "TINF", "UCB", "EG")
TRADERS = ("Ours", "Forecast", "Ran", "TH", "LY", "Null")

scenario_params = st.fixed_dictionaries(
    {
        "num_edges": st.integers(1, 4),
        "horizon": st.integers(2, 30),
        "num_models": st.integers(2, 5),
        "carbon_cap_kg": st.sampled_from([0.0, 100.0, 1000.0]),
        "seed": st.integers(0, 5),
    }
)


def build(params) -> tuple:
    config = ScenarioConfig(dataset="synthetic", n_test=200, **params)
    return build_scenario(config), config


@given(
    params=scenario_params,
    selection=st.sampled_from(SELECTIONS),
    trader=st.sampled_from(TRADERS),
    seed=st.integers(0, 3),
)
@settings(max_examples=40, deadline=None)
def test_simulation_invariants(params, selection, trader, seed):
    scenario, config = build(params)
    result = run_combo(scenario, selection, trader, seed)

    # Selections are valid model indices; exactly one model per edge per slot.
    assert result.selections.min() >= 0
    assert result.selections.max() < config.num_models

    # Trades stay inside [0, bound].
    assert np.all(result.bought >= 0) and np.all(result.sold >= 0)
    assert np.all(result.bought <= scenario.trade_bound + 1e-9)
    assert np.all(result.sold <= scenario.trade_bound + 1e-9)

    # Accounting identities.
    np.testing.assert_allclose(
        result.trading_cost,
        result.bought * result.buy_prices - result.sold * result.sell_prices,
    )
    assert np.all(result.fit_series() >= 0.0)
    assert np.all(np.isfinite(result.cost_series(CostWeights())))

    # Emissions are strictly positive (every edge serves >= 1 sample/slot)
    # whenever the emission rate is positive.
    assert np.all(result.emissions > 0)

    # First slot downloads a model on every edge.
    assert result.switches[0].all()


@given(params=scenario_params, seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_workload_is_policy_independent(params, seed):
    scenario, _ = build(params)
    a = run_combo(scenario, "Ran", "Ran", seed)
    b = run_combo(scenario, "Greedy", "LY", seed)
    np.testing.assert_allclose(a.arrivals, b.arrivals)
    np.testing.assert_allclose(a.buy_prices, b.buy_prices)


@given(params=scenario_params)
@settings(max_examples=10, deadline=None)
def test_offline_lower_bounds_and_neutral(params):
    from repro.experiments.runner import run_offline

    scenario, config = build(params)
    offline = run_offline(scenario, seed=0)
    assert offline.final_fit() == pytest.approx(0.0, abs=1e-6)
    ours = run_combo(scenario, "Ours", "Ours", seed=0)
    # Offline can never cost more: same inference inputs, optimal trading,
    # at most one switch per edge.
    assert offline.total_cost(config.weights) <= ours.total_cost(config.weights) + 1e-6
