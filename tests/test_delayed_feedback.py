"""Tests for delayed label feedback (paper Step 2.3 extension)."""

import numpy as np
import pytest

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.offline import NullTrading
from repro.sim.simulator import Simulator
from repro.utils.rng import RngFactory


def make_policies(scenario, seed=0):
    factory = RngFactory(seed)
    return [
        OnlineModelSelection(
            scenario.num_models,
            scenario.horizon,
            float(scenario.effective_switch_costs()[i]),
            factory.get(f"sel-{i}"),
        )
        for i in range(scenario.num_edges)
    ]


class TestPolicyDelayTolerance:
    def test_select_ahead_of_observations(self):
        """select() may enter new blocks while old losses are outstanding."""
        rng = np.random.default_rng(0)
        policy = OnlineModelSelection(3, horizon=60, switch_cost=2.0, rng=rng)
        decisions = {}
        delay = 4
        queue = []
        for t in range(60):
            decisions[t] = policy.select(t)
            queue.append((t, decisions[t]))
            while queue and queue[0][0] <= t - delay:
                slot, model = queue.pop(0)
                policy.observe(slot, model, 0.5)
        for slot, model in queue:
            policy.observe(slot, model, 0.5)
        assert policy.pending_blocks == 0
        assert policy.selection_counts.sum() == 60

    def test_all_blocks_eventually_closed(self):
        rng = np.random.default_rng(1)
        policy = OnlineModelSelection(4, horizon=100, switch_cost=1.5, rng=rng)
        losses = []
        for t in range(100):
            model = policy.select(t)
            losses.append((t, model))
        assert policy.pending_blocks == policy.schedule.num_blocks
        for t, model in losses:
            policy.observe(t, model, 1.0)
        assert policy.pending_blocks == 0

    def test_observe_before_block_opened_rejected(self):
        rng = np.random.default_rng(2)
        policy = OnlineModelSelection(3, horizon=50, switch_cost=3.0, rng=rng)
        policy.select(0)
        with pytest.raises(RuntimeError, match="before its block"):
            policy.observe(49, 0, 1.0)

    def test_double_observation_rejected(self):
        rng = np.random.default_rng(3)
        policy = OnlineModelSelection(3, horizon=10, switch_cost=0.0, rng=rng)
        model = policy.select(0)
        policy.observe(0, model, 1.0)  # unit block: closes immediately
        with pytest.raises(RuntimeError, match="already received"):
            policy.observe(0, model, 1.0)

    def test_zero_delay_unchanged(self):
        """With immediate feedback, behaviour matches the strict protocol."""

        def run(seed):
            policy = OnlineModelSelection(
                4, horizon=120, switch_cost=2.0, rng=np.random.default_rng(seed)
            )
            out = []
            for t in range(120):
                model = policy.select(t)
                policy.observe(t, model, 0.3 * model)
                out.append(model)
            return out

        assert run(7) == run(7)


class TestSimulatorDelay:
    def test_delay_zero_equals_default(self, small_scenario):
        a = Simulator(
            small_scenario, make_policies(small_scenario), NullTrading(), run_seed=1
        ).run()
        b = Simulator(
            small_scenario,
            make_policies(small_scenario),
            NullTrading(),
            run_seed=1,
            label_delay=0,
        ).run()
        np.testing.assert_array_equal(a.selections, b.selections)

    def test_delay_changes_learning_but_preserves_invariants(self, small_scenario):
        result = Simulator(
            small_scenario,
            make_policies(small_scenario),
            OnlineCarbonTrading(),
            run_seed=1,
            label_delay=5,
        ).run()
        assert result.selections.min() >= 0
        assert np.all(result.fit_series() >= 0)
        assert result.switches[0].all()

    def test_policies_fully_informed_at_end(self, small_scenario):
        policies = make_policies(small_scenario)
        Simulator(
            small_scenario, policies, NullTrading(), run_seed=2, label_delay=7
        ).run()
        for policy in policies:
            assert policy.pending_blocks == 0

    def test_moderate_delay_degrades_gracefully(self, small_scenario):
        """Learning still concentrates on good models under moderate delay."""
        expected = small_scenario.expected_losses
        best = int(np.argmin(expected))
        worst = int(np.argmax(expected))
        counts = np.zeros(small_scenario.num_models)
        for seed in range(4):
            policies = make_policies(small_scenario, seed=seed)
            result = Simulator(
                small_scenario, policies, NullTrading(), run_seed=seed, label_delay=3
            ).run()
            for i in range(small_scenario.num_edges):
                values, freqs = np.unique(result.selections[:, i], return_counts=True)
                counts[values] += freqs
        assert counts[best] > counts[worst]

    def test_negative_delay_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            Simulator(
                small_scenario,
                make_policies(small_scenario),
                NullTrading(),
                label_delay=-1,
            )
