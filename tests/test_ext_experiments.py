"""Tests for the extension experiments (forecast, delay, heterogeneity)."""

import numpy as np
import pytest

from repro.experiments import ext_delay, ext_forecast, ext_heterogeneity
from repro.experiments.run_all import EXPERIMENTS, EXTENSIONS


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {f"fig{n:02d}" for n in range(3, 15)}

    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {"ext_forecast", "ext_delay", "ext_heterogeneity"}

    def test_every_module_has_run_and_main(self):
        for module in {**EXPERIMENTS, **EXTENSIONS}.values():
            assert callable(module.run)
            assert callable(module.main)
            assert callable(module.format_result)


class TestExtForecast:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_forecast.run(fast=True, seeds=[0])

    def test_covers_all_regimes(self, result):
        assert set(result.regimes) == {"random-walk", "paper-default", "mean-reverting"}

    def test_forecaster_never_much_worse_fit(self, result):
        for j in range(len(result.regimes)):
            assert result.fit_forecast[j] < result.fit_plain[j] + 10.0

    def test_predictable_market_fit_collapse(self, result):
        mr = result.regimes.index("mean-reverting")
        assert result.fit_forecast[mr] < 0.5 * result.fit_plain[mr]

    def test_format(self, result):
        assert "price forecasting" in ext_forecast.format_result(result)


class TestExtDelay:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_delay.run(fast=True, seeds=[0, 1], delays=(0, 10))

    def test_cost_degrades_gracefully(self, result):
        """The block schedule confers delay robustness: <15% degradation."""
        assert result.cost_degradation() < 0.15

    def test_accuracy_not_destroyed(self, result):
        assert result.accuracy[-1] > 0.8 * result.accuracy[0]

    def test_format(self, result):
        assert "delayed label feedback" in ext_delay.format_result(result)


class TestExtHeterogeneity:
    @pytest.fixture(scope="class")
    def result(self):
        # Small horizons keep the test fast; the crossover itself is asserted
        # in the benchmark suite with the full horizon sweep.
        return ext_heterogeneity.run(fast=True, seeds=[0], horizons=(80, 240))

    def test_specialists_make_best_models_differ(self, result):
        assert result.distinct_best_models >= 2

    def test_oracle_lower_bounds_everyone(self, result):
        for j in range(len(result.horizons)):
            assert result.oracle_fixed[j] <= result.ours[j] + 1e-9
            assert result.oracle_fixed[j] <= result.global_fixed[j] + 1e-9

    def test_ours_excess_per_slot_shrinks(self, result):
        excess = result.excess_per_slot("ours")
        assert excess[-1] < excess[0]

    def test_global_excess_per_slot_constant(self, result):
        excess = result.excess_per_slot("global")
        assert excess[-1] == pytest.approx(excess[0], rel=0.35)

    def test_format(self, result):
        assert "heterogeneity" in ext_heterogeneity.format_result(result)
