"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import BrierLoss, SoftmaxCrossEntropy, squared_label_loss
from repro.utils.mathutils import softmax


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


class TestSquaredLabelLoss:
    def test_perfect_prediction_zero_loss(self):
        p = np.array([[1.0, 0.0, 0.0]])
        assert squared_label_loss(p, np.array([0]))[0] == pytest.approx(0.0)

    def test_worst_case_is_two(self):
        p = np.array([[1.0, 0.0]])
        assert squared_label_loss(p, np.array([1]))[0] == pytest.approx(2.0)

    def test_range(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((50, 10))
        p = softmax(logits, axis=1)
        labels = rng.integers(0, 10, 50)
        losses = squared_label_loss(p, labels)
        assert np.all(losses >= 0.0)
        assert np.all(losses <= 2.0)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            squared_label_loss(np.array([[0.5, 0.5]]), np.array([2]))

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            squared_label_loss(np.array([0.5, 0.5]), np.array([0]))


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        loss, _ = SoftmaxCrossEntropy()(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((3, 5))
        labels = rng.integers(0, 5, 3)
        loss_fn = SoftmaxCrossEntropy()
        _, grad = loss_fn(logits, labels)
        num = numerical_gradient(lambda: loss_fn(logits, labels)[0], logits)
        np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 6))
        _, grad = SoftmaxCrossEntropy()(logits, rng.integers(0, 6, 4))
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(4), atol=1e-12)


class TestBrierLoss:
    def test_matches_squared_label_loss(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((6, 4))
        labels = rng.integers(0, 4, 6)
        loss, _ = BrierLoss()(logits, labels)
        expected = float(np.mean(squared_label_loss(softmax(logits, axis=1), labels)))
        assert loss == pytest.approx(expected)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((3, 5))
        labels = rng.integers(0, 5, 3)
        loss_fn = BrierLoss()
        _, grad = loss_fn(logits, labels)
        num = numerical_gradient(lambda: loss_fn(logits, labels)[0], logits)
        np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)
