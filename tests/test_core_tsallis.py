"""Tests for the Tsallis-entropy OMD solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tsallis import tsallis_inf_probabilities

loss_vectors = arrays(
    dtype=float,
    shape=st.integers(2, 12),
    elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
)


class TestTsallisInfProbabilities:
    def test_uniform_for_equal_losses(self):
        p = tsallis_inf_probabilities(np.zeros(4), eta=1.0)
        np.testing.assert_allclose(p, np.full(4, 0.25), atol=1e-9)

    def test_single_arm(self):
        np.testing.assert_allclose(tsallis_inf_probabilities(np.array([5.0]), 1.0), [1.0])

    def test_lower_loss_gets_higher_probability(self):
        p = tsallis_inf_probabilities(np.array([0.0, 1.0, 5.0]), eta=1.0)
        assert p[0] > p[1] > p[2]

    def test_probabilities_valid(self):
        p = tsallis_inf_probabilities(np.array([3.0, 1.0, 7.0, 2.0]), eta=0.5)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p > 0)

    def test_shift_invariance(self):
        """Adding a constant to all losses must not change the solution."""
        losses = np.array([1.0, 4.0, 2.0])
        a = tsallis_inf_probabilities(losses, eta=0.7)
        b = tsallis_inf_probabilities(losses + 100.0, eta=0.7)
        np.testing.assert_allclose(a, b, atol=1e-8)

    def test_small_eta_approaches_uniform(self):
        """eta -> 0 means heavy regularization: near-uniform play."""
        p = tsallis_inf_probabilities(np.array([0.0, 10.0]), eta=1e-4)
        assert abs(p[0] - 0.5) < 0.01

    def test_large_eta_concentrates_on_best(self):
        p = tsallis_inf_probabilities(np.array([0.0, 10.0, 10.0]), eta=100.0)
        assert p[0] > 0.97

    def test_solves_the_omd_objective(self):
        """The output must minimize <p,C> - sum(4 sqrt(p) - 2p)/eta on the simplex."""
        rng = np.random.default_rng(0)
        losses = rng.uniform(0, 10, size=5)
        eta = 0.8
        p_star = tsallis_inf_probabilities(losses, eta)

        def objective(p):
            return float(np.dot(p, losses) - np.sum(4 * np.sqrt(p) - 2 * p) / eta)

        best = objective(p_star)
        # Random feasible perturbations cannot do better.
        for _ in range(200):
            q = rng.dirichlet(np.ones(5))
            assert objective(q) >= best - 1e-7

    @given(loss_vectors, st.floats(1e-3, 50.0))
    @settings(max_examples=80, deadline=None)
    def test_always_returns_valid_distribution(self, losses, eta):
        p = tsallis_inf_probabilities(losses, eta)
        assert np.all(np.isfinite(p))
        assert np.all(p >= 0)
        assert p.sum() == pytest.approx(1.0, abs=1e-6)

    @given(loss_vectors, st.floats(1e-2, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_losses(self, losses, eta):
        """Arms with (weakly) lower cumulative loss get (weakly) more mass."""
        p = tsallis_inf_probabilities(losses, eta)
        order = np.argsort(losses)
        sorted_p = p[order]
        assert np.all(np.diff(sorted_p) <= 1e-8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tsallis_inf_probabilities(np.array([]), 1.0)
        with pytest.raises(ValueError):
            tsallis_inf_probabilities(np.array([1.0, np.nan]), 1.0)
        with pytest.raises(ValueError):
            tsallis_inf_probabilities(np.array([1.0, 2.0]), 0.0)
