"""Tests for the CSV figure exporter."""

import csv

import numpy as np
import pytest

from repro.experiments import export
from repro.experiments.fig04_total_cost_vs_edges import Fig04Result
from repro.experiments.fig08_selection_histogram import Fig08Result
from repro.experiments.fig10_regret import Fig10Result
from repro.experiments.fig12_accuracy_mnist import Fig12Result
from repro.experiments.fig14_runtime import Fig14Result


class TestFigureRows:
    def test_sweep_result(self):
        result = Fig04Result(
            edge_counts=(5, 10),
            costs={"Ours": [1.0, 2.0], "Ran-Ran": [3.0, 4.0]},
        )
        headers, rows = export.figure_rows(result)
        assert headers == ["num_edges", "Ours", "Ran-Ran"]
        assert rows == [[5, 1.0, 3.0], [10, 2.0, 4.0]]

    def test_regret_result(self):
        result = Fig10Result(horizons=(40, 80), regrets={"Ours": [1.0, 2.0]})
        headers, rows = export.figure_rows(result)
        assert headers == ["horizon", "Ours"]
        assert len(rows) == 2

    def test_histogram_result(self):
        result = Fig08Result(
            edge=0,
            model_names=["a", "b"],
            expected_losses=np.array([0.1, 0.5]),
            ours_counts=np.array([10.0, 2.0]),
            offline_choice=0,
            greedy_choice=1,
        )
        headers, rows = export.figure_rows(result)
        assert rows[0] == ["a", 0.1, 10.0, 1, 0]
        assert rows[1] == ["b", 0.5, 2.0, 0, 1]

    def test_accuracy_series_result(self):
        result = Fig12Result(
            horizon=3,
            accuracy={"Ours": np.array([0.5, 0.6, 0.7])},
        )
        headers, rows = export.figure_rows(result)
        assert headers == ["slot", "Ours"]
        assert rows[2] == [2, pytest.approx(0.7)]

    def test_runtime_result(self):
        result = Fig14Result(
            edge_counts=(5, 10),
            alg1_seconds_per_slot=[0.001, 0.002],
            alg2_seconds_per_slot=[0.0001, 0.0001],
        )
        headers, rows = export.figure_rows(result)
        assert len(rows) == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="no CSV exporter"):
            export.figure_rows(object())


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        table = (["x", "y"], [[1, 2.5], [3, 4.25]])
        path = export.write_csv(table, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "2.5"]

    def test_mismatched_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export.write_csv((["a"], [[1, 2]]), tmp_path / "out.csv")

    def test_end_to_end_with_real_experiment(self, tmp_path):
        from repro.experiments import fig14_runtime

        result = fig14_runtime.run(fast=True, edge_counts=(2, 4), horizon=10)
        path = export.write_csv(export.figure_rows(result), tmp_path / "fig14.csv")
        content = path.read_text()
        assert "alg1_seconds_per_slot" in content
        assert content.count("\n") == 3  # header + two rows


class TestRemainingExporters:
    def test_fig03_series(self):
        import numpy as np
        from repro.experiments.fig03_cumulative_cost import Fig03Result

        result = Fig03Result(
            horizon=2, series={"Ours": np.array([1.0, 2.0])}
        )
        headers, rows = export.figure_rows(result)
        assert headers == ["slot", "Ours"]
        assert rows == [[0, 1.0], [1, 2.0]]

    def test_fig05_fig06_fig07_sweeps(self):
        from repro.experiments.fig05_switching_weight import Fig05Result
        from repro.experiments.fig06_emission_rate import Fig06Result
        from repro.experiments.fig07_carbon_cap import Fig07Result

        f5 = Fig05Result(sweep=(1.0, 2.0), costs={"Ours": [1.0, 2.0]})
        f6 = Fig06Result(rates=(0.5, 1.0), costs={"Ours": [1.0, 2.0]})
        f7 = Fig07Result(caps=(0.0, 500.0), costs={"Ours": [2.0, 1.0]})
        assert export.figure_rows(f5)[0][0] == "switching_weight"
        assert export.figure_rows(f6)[0][0] == "emission_rate"
        assert export.figure_rows(f7)[0][0] == "carbon_cap"

    def test_fig09_series(self):
        import numpy as np
        from repro.experiments.fig09_trading_vs_workload import Fig09Result

        result = Fig09Result(
            arrivals=np.array([10.0, 20.0]),
            net_purchases={"Ours": np.array([1.0, 2.0])},
            unit_costs={"Ours": 8.0},
        )
        headers, rows = export.figure_rows(result)
        assert headers == ["slot", "arrivals", "net_purchase_Ours"]
        assert rows[1] == [1, 20.0, 2.0]

    def test_fig11_fits(self):
        from repro.experiments.fig11_fit import Fig11Result

        result = Fig11Result(horizons=(40, 80), fits={"Ours": [1.0, 2.0]})
        headers, rows = export.figure_rows(result)
        assert headers == ["horizon", "Ours"]
        assert len(rows) == 2


class TestExtensionExporters:
    def test_ext_forecast(self):
        from repro.experiments.ext_forecast import ExtForecastResult

        result = ExtForecastResult(
            regimes=("a", "b"),
            unit_cost_plain=[8.0, 8.5],
            unit_cost_forecast=[8.1, 8.4],
            fit_plain=[30.0, 20.0],
            fit_forecast=[10.0, 0.0],
        )
        headers, rows = export.figure_rows(result)
        assert headers[0] == "regime"
        assert rows[1][0] == "b"

    def test_ext_delay(self):
        from repro.experiments.ext_delay import ExtDelayResult

        result = ExtDelayResult(
            delays=(0, 5), total_cost=[1.0, 1.1],
            accuracy=[0.8, 0.79], switching_cost=[0.3, 0.3],
        )
        headers, rows = export.figure_rows(result)
        assert headers[0] == "label_delay"
        assert len(rows) == 2

    def test_ext_heterogeneity(self):
        from repro.experiments.ext_heterogeneity import ExtHeterogeneityResult

        result = ExtHeterogeneityResult(
            horizons=(160, 320), ours=[2.0, 3.5],
            global_fixed=[2.2, 4.4], oracle_fixed=[1.5, 3.0],
            distinct_best_models=3,
        )
        headers, rows = export.figure_rows(result)
        assert headers == ["horizon", "oracle_fixed", "ours", "global_fixed"]
        assert rows[0] == [160, 1.5, 2.0, 2.2]
