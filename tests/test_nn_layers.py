"""Gradient checks and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPoolGlobal,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def check_layer_gradients(layer, x: np.ndarray, rtol: float = 1e-5) -> None:
    """Verify input and parameter gradients against central differences."""
    rng = np.random.default_rng(99)
    out = layer.forward(x, training=True)
    weight = rng.standard_normal(out.shape)  # random scalarization

    def loss() -> float:
        return float(np.sum(layer.forward(x, training=True) * weight))

    layer.forward(x, training=True)
    grad_in = layer.backward(weight)

    num_in = numerical_gradient(loss, x)
    np.testing.assert_allclose(grad_in, num_in, rtol=rtol, atol=1e-6)

    for name, param in layer.params.items():
        layer.forward(x, training=True)
        layer.backward(weight)
        analytic = layer.grads[name].copy()
        num = numerical_gradient(loss, param)
        np.testing.assert_allclose(analytic, num, rtol=rtol, atol=1e-6,
                                   err_msg=f"param {name}")


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng)
        out = layer.forward(rng.standard_normal((4, 5)))
        assert out.shape == (4, 3)

    def test_gradients(self, rng):
        layer = Dense(4, 3, rng)
        check_layer_gradients(layer, rng.standard_normal((3, 4)))

    def test_wrong_input_dim_raises(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((3, 5)))

    def test_backward_without_forward_raises(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((3, 3)))

    def test_inference_forward_does_not_cache(self, rng):
        layer = Dense(4, 3, rng)
        layer.forward(rng.standard_normal((3, 4)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((3, 3)))


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(2, 4, kernel=3, rng=rng, padding=1)
        out = layer.forward(rng.standard_normal((2, 2, 6, 6)))
        assert out.shape == (2, 4, 6, 6)

    def test_gradients(self, rng):
        layer = Conv2D(2, 3, kernel=3, rng=rng, padding=1)
        check_layer_gradients(layer, rng.standard_normal((2, 2, 4, 4)))

    def test_gradients_strided(self, rng):
        layer = Conv2D(1, 2, kernel=2, rng=rng, stride=2)
        check_layer_gradients(layer, rng.standard_normal((2, 1, 4, 4)))

    def test_wrong_channels_raises(self, rng):
        layer = Conv2D(2, 4, kernel=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((1, 3, 6, 6)))


class TestDepthwiseConv2D:
    def test_forward_shape(self, rng):
        layer = DepthwiseConv2D(3, kernel=3, rng=rng, padding=1)
        out = layer.forward(rng.standard_normal((2, 3, 6, 6)))
        assert out.shape == (2, 3, 6, 6)

    def test_gradients(self, rng):
        layer = DepthwiseConv2D(2, kernel=3, rng=rng, padding=1)
        check_layer_gradients(layer, rng.standard_normal((2, 2, 4, 4)))

    def test_channels_are_independent(self, rng):
        """Changing one input channel only changes that output channel."""
        layer = DepthwiseConv2D(2, kernel=3, rng=rng, padding=1)
        x = rng.standard_normal((1, 2, 5, 5))
        base = layer.forward(x)
        x2 = x.copy()
        x2[:, 0] += 1.0
        out = layer.forward(x2)
        assert not np.allclose(out[:, 0], base[:, 0])
        np.testing.assert_allclose(out[:, 1], base[:, 1])


class TestMaxPool2D:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_gradients(self, rng):
        layer = MaxPool2D(2)
        check_layer_gradients(layer, rng.standard_normal((2, 2, 4, 4)))

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(rng.standard_normal((1, 1, 5, 5)))

    def test_tied_maxima_split_gradient(self):
        x = np.ones((1, 1, 2, 2))
        layer = MaxPool2D(2)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(grad, np.ones((1, 1, 2, 2)))


class TestAvgPoolGlobal:
    def test_forward(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = AvgPoolGlobal().forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_gradients(self, rng):
        check_layer_gradients(AvgPoolGlobal(), rng.standard_normal((2, 2, 3, 3)))


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_gradients(self, rng):
        check_layer_gradients(ReLU(), rng.standard_normal((3, 5)) + 0.1)


class TestFlatten:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        layer = Flatten()
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)
