"""Fault-injection tests: plans, determinism, and degradation semantics.

Three contracts are pinned here.  First, fault plans are plain data:
they round-trip losslessly through dicts/JSON and reject malformed specs
at construction.  Second, determinism: an *empty* plan reproduces the
golden digests byte-for-byte (fault support costs clean runs nothing),
and a *faulted* run is itself bit-reproducible — same plan, same seed,
same bytes.  Third, degradation: each fault kind produces exactly its
documented observable effect (kept models, zeroed trades, skipped
feedback) rather than crashes or silent corruption.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import run_combo
from repro.faults import (
    FAULT_KINDS,
    DownloadFailure,
    EdgeOutage,
    FaultInjector,
    FaultPlan,
    FeedbackLoss,
    GilbertElliottLoss,
    MarketOutage,
    TradeRejection,
    load_plan,
)
from repro.obs import Tracer
from repro.sim.io import result_digest
from repro.sim.scenario import build_scenario
from repro.utils.rng import RngFactory
from tests.test_golden_digests import GOLDEN_DIGESTS, SCENARIO_CONFIGS

FULL_PLAN = FaultPlan((
    EdgeOutage(edge=0, start=4, end=12),
    FeedbackLoss(probability=0.2),
    DownloadFailure(probability=0.3, max_backoff=4),
    MarketOutage(start=10, end=20),
    TradeRejection(probability=0.1),
))


def scenario_a():
    return build_scenario(SCENARIO_CONFIGS["A"])


class TestFaultPlan:
    def test_registry_covers_all_kinds(self):
        assert set(FAULT_KINDS) == {
            "edge_outage",
            "feedback_loss",
            "gilbert_elliott_loss",
            "download_failure",
            "market_outage",
            "trade_rejection",
        }

    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(FULL_PLAN.to_dict()) == FULL_PLAN

    def test_json_round_trip(self):
        assert FaultPlan.from_json(FULL_PLAN.to_json()) == FULL_PLAN

    def test_load_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FULL_PLAN.to_json(), encoding="utf-8")
        assert load_plan(path) == FULL_PLAN

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert not FULL_PLAN.is_empty
        assert len(FULL_PLAN) == 5

    def test_of_kind(self):
        outages = FULL_PLAN.of_kind("edge_outage")
        assert len(outages) == 1
        assert isinstance(outages[0], EdgeOutage)

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: EdgeOutage(edge=-1, start=0, end=4),
            lambda: EdgeOutage(edge=0, start=4, end=4),
            lambda: FeedbackLoss(probability=1.5),
            lambda: FeedbackLoss(probability=-0.1),
            lambda: DownloadFailure(probability=0.5, max_backoff=0),
            lambda: MarketOutage(start=5, end=2),
            lambda: TradeRejection(probability=0.5, start=-1),
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"faults": [{"kind": "solar_flare"}]})


class TestInjector:
    def build(self, plan=FULL_PLAN, seed=0):
        return FaultInjector(
            plan, horizon=40, num_edges=3, rng=RngFactory(seed).child("faults")
        )

    def test_realization_is_deterministic(self):
        first, second = self.build(), self.build()
        assert first.summary() == second.summary()
        for t in range(40):
            assert first.trade_blocked(t) == second.trade_blocked(t)
            for i in range(3):
                assert first.feedback_lost(t, i) == second.feedback_lost(t, i)

    def test_edge_outage_window_exact(self):
        injector = self.build(FaultPlan((EdgeOutage(edge=1, start=4, end=12),)))
        offline = [
            (t, i) for t in range(40) for i in range(3) if injector.edge_offline(t, i)
        ]
        assert offline == [(t, 1) for t in range(4, 12)]

    def test_market_outage_window_exact(self):
        injector = self.build(FaultPlan((MarketOutage(start=10, end=20),)))
        blocked = [t for t in range(40) if injector.trade_blocked(t)]
        assert blocked == list(range(10, 20))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            self.build(FaultPlan((EdgeOutage(edge=7, start=0, end=4),)))

    def test_probability_one_fires_everywhere(self):
        injector = self.build(FaultPlan((FeedbackLoss(probability=1.0),)))
        assert injector.summary()["feedback_lost_slots"] == 40 * 3

    def test_backoff_cap_reflects_spec(self):
        injector = self.build(
            FaultPlan((DownloadFailure(probability=1.0, max_backoff=16),))
        )
        assert injector.backoff_cap(0, 0) == 16


class TestDeterminism:
    """Bit-level reproducibility with and without faults."""

    @pytest.mark.parametrize("scenario_name,seed", sorted(GOLDEN_DIGESTS))
    def test_empty_plan_reproduces_golden_digests(self, scenario_name, seed):
        scenario = build_scenario(SCENARIO_CONFIGS[scenario_name])
        result = run_combo(
            scenario, "Ours", "Ours", seed, label="Ours-Ours", faults=FaultPlan()
        )
        assert result_digest(result) == GOLDEN_DIGESTS[(scenario_name, seed)]

    def test_faulted_run_is_bit_reproducible(self):
        scenario = scenario_a()
        digests = {
            result_digest(
                run_combo(scenario, "Ours", "Ours", 0, faults=FULL_PLAN)
            )
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_faulted_differs_from_clean(self):
        scenario = scenario_a()
        faulted = result_digest(run_combo(scenario, "Ours", "Ours", 0, faults=FULL_PLAN))
        clean = result_digest(run_combo(scenario, "Ours", "Ours", 0))
        assert faulted != clean

    def test_json_round_tripped_plan_gives_same_bytes(self):
        scenario = scenario_a()
        reloaded = FaultPlan.from_json(FULL_PLAN.to_json())
        assert result_digest(
            run_combo(scenario, "Ours", "Ours", 0, faults=FULL_PLAN)
        ) == result_digest(run_combo(scenario, "Ours", "Ours", 0, faults=reloaded))


class TestDegradation:
    """Each fault kind degrades exactly as documented."""

    def test_edge_outage_freezes_the_edge(self):
        plan = FaultPlan((EdgeOutage(edge=0, start=4, end=12),))
        result = run_combo(scenario_a(), "Ours", "Ours", 0, faults=plan)
        # An offline edge cannot download, so it never switches models.
        assert not result.switches[4:12, 0].any()

    def test_market_outage_zeroes_trades_in_window(self):
        plan = FaultPlan((MarketOutage(start=10, end=20),))
        result = run_combo(scenario_a(), "Ours", "Ours", 0, faults=plan)
        clean = run_combo(scenario_a(), "Ours", "Ours", 0)
        assert float(np.abs(clean.bought).sum() + np.abs(clean.sold).sum()) > 0
        assert not result.bought[10:20].any()
        assert not result.sold[10:20].any()

    def test_total_rejection_zeroes_all_trades(self):
        plan = FaultPlan((TradeRejection(probability=1.0),))
        result = run_combo(scenario_a(), "Ours", "Ours", 0, faults=plan)
        assert not result.bought.any()
        assert not result.sold.any()

    def test_total_download_failure_pins_initial_models(self):
        plan = FaultPlan((DownloadFailure(probability=1.0),))
        result = run_combo(scenario_a(), "Ours", "Ours", 0, faults=plan)
        # Initial provisioning (nothing hosted yet) always succeeds; every
        # later switch needs a download, and every download fails.
        assert not result.switches[1:].any()

    def test_total_feedback_loss_stays_finite(self):
        plan = FaultPlan((FeedbackLoss(probability=1.0),))
        result = run_combo(scenario_a(), "Ours", "Ours", 0, faults=plan)
        assert np.isfinite(result.expected_inference_cost).all()
        assert np.isfinite(result.emissions).all()


class TestTraceEvents:
    def traced(self, plan):
        tracer = Tracer()
        run_combo(scenario_a(), "Ours", "Ours", 0, tracer=tracer, faults=plan)
        return tracer.event_counts()

    def test_fault_events_emitted(self):
        counts = self.traced(FULL_PLAN)
        assert counts.get("fault_injected", 0) > 0
        assert counts.get("feedback_lost", 0) > 0
        assert counts.get("trade_rejected", 0) > 0
        assert counts.get("retry", 0) > 0

    def test_clean_run_emits_no_fault_events(self):
        counts = self.traced(FaultPlan())
        for name in ("fault_injected", "feedback_lost", "trade_rejected", "retry"):
            assert name not in counts

    def test_trade_rejections_match_outage_window(self):
        counts = self.traced(FaultPlan((MarketOutage(start=10, end=20),)))
        assert counts["trade_rejected"] == 10


class TestGilbertElliott:
    """Two-state Markov (bursty) feedback loss: validation, round-trip,
    realization determinism, and burstiness."""

    def spec(self, **overrides):
        params = dict(p_bad=0.15, p_good=0.4, loss_bad=0.95, loss_good=0.02)
        params.update(overrides)
        return GilbertElliottLoss(**params)

    @staticmethod
    def lost_grid(injector, horizon, num_edges):
        return np.array([
            [injector.feedback_lost(t, i) for i in range(num_edges)]
            for t in range(horizon)
        ])

    def test_json_round_trip(self):
        plan = FaultPlan((self.spec(edge=1, start=3, end=30),))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_validation_rejects_bad_probabilities(self):
        for field, value in (
            ("p_bad", 1.5),
            ("p_good", -0.1),
            ("loss_bad", 2.0),
            ("loss_good", -1.0),
        ):
            with pytest.raises(ValueError):
                self.spec(**{field: value})
        with pytest.raises(ValueError):
            self.spec(edge=-1)
        with pytest.raises(ValueError):
            self.spec(start=10, end=5)

    def test_realization_is_deterministic(self):
        plan = FaultPlan((self.spec(),))

        def grid():
            injector = FaultInjector(
                plan, horizon=60, num_edges=3, rng=RngFactory(5).child("faults")
            )
            return self.lost_grid(injector, 60, 3)

        assert (grid() == grid()).all()

    def test_losses_are_bursty_relative_to_good_state(self):
        # With a near-absorbing bad state (loss ~1) and clean good state
        # (loss ~0), lost slots must cluster: the chance a loss is followed
        # by another loss far exceeds the marginal loss rate.
        plan = FaultPlan(
            (self.spec(p_bad=0.05, p_good=0.1, loss_bad=1.0, loss_good=0.0),)
        )
        injector = FaultInjector(
            plan, horizon=4000, num_edges=1, rng=RngFactory(3).child("faults")
        )
        lost = self.lost_grid(injector, 4000, 1)[:, 0]
        marginal = lost.mean()
        assert 0.05 < marginal < 0.8
        followers = lost[1:][lost[:-1]]
        assert followers.mean() > marginal + 0.2

    def test_window_and_edge_scoping(self):
        plan = FaultPlan(
            (self.spec(p_bad=0.9, p_good=0.05, edge=1, start=10, end=20),)
        )
        injector = FaultInjector(
            plan, horizon=40, num_edges=3, rng=RngFactory(11).child("faults")
        )
        lost = self.lost_grid(injector, 40, 3)
        assert not lost[:, 0].any() and not lost[:, 2].any()
        assert not lost[:10, 1].any() and not lost[20:, 1].any()
        assert lost[10:20, 1].any()

    def test_faulted_run_is_reproducible(self):
        plan = FaultPlan((self.spec(),))
        scenario = scenario_a()
        a = run_combo(scenario, "Ours", "Ours", 0, faults=plan)
        b = run_combo(scenario, "Ours", "Ours", 0, faults=plan)
        assert (a.selections == b.selections).all()
        assert float(a.trading_cost.sum()) == float(b.trading_cost.sum())

    def test_feedback_loss_changes_behavior(self):
        plan = FaultPlan(
            (self.spec(p_bad=0.5, p_good=0.05, loss_bad=1.0, loss_good=0.0),)
        )
        scenario = scenario_a()
        tracer = Tracer()
        run_combo(scenario, "Ours", "Ours", 0, tracer=tracer, faults=plan)
        assert tracer.event_counts().get("feedback_lost", 0) > 0
