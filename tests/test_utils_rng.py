"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, spawn_generator


class TestSpawnGenerator:
    def test_same_seed_name_is_identical(self):
        a = spawn_generator(7, "stream")
        b = spawn_generator(7, "stream")
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = spawn_generator(7, "alpha")
        b = spawn_generator(7, "beta")
        assert not np.allclose(a.random(100), b.random(100))

    def test_different_seeds_differ(self):
        a = spawn_generator(1, "stream")
        b = spawn_generator(2, "stream")
        assert not np.allclose(a.random(100), b.random(100))

    def test_name_hash_is_stable_across_processes(self):
        # sha256-based hashing must not depend on PYTHONHASHSEED.
        value = spawn_generator(0, "fixed-name").integers(0, 2**31)
        again = spawn_generator(0, "fixed-name").integers(0, 2**31)
        assert value == again


class TestRngFactory:
    def test_get_returns_same_stream_object(self):
        factory = RngFactory(seed=3)
        assert factory.get("x") is factory.get("x")

    def test_get_streams_are_independent_of_creation_order(self):
        f1 = RngFactory(seed=3)
        f1.get("a")
        v1 = f1.get("b").random()
        f2 = RngFactory(seed=3)
        v2 = f2.get("b").random()  # "a" never created here
        assert v1 == v2

    def test_fresh_resets_stream(self):
        factory = RngFactory(seed=3)
        first = factory.get("x").random()
        factory.get("x").random()
        assert factory.fresh("x").random() == first

    def test_child_streams_differ_from_parent(self):
        parent = RngFactory(seed=3)
        child = parent.child("sub")
        assert parent.get("x").random() != child.get("x").random()

    def test_child_is_deterministic(self):
        a = RngFactory(seed=3).child("sub").get("x").random()
        b = RngFactory(seed=3).child("sub").get("x").random()
        assert a == b

    def test_seed_property(self):
        assert RngFactory(seed=42).seed == 42

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory(seed="nope")  # type: ignore[arg-type]
