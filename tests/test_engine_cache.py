"""Correctness tests for the content-addressed result cache.

Two invariants: (1) the cache key moves whenever *anything* the run depends
on moves — any scenario/config field, either policy name, the seed, the
label, or the result-schema version — and (2) a damaged entry is never
served: corruption of any kind is a miss, and the caller recomputes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.cache import ResultCache, cell_key, scenario_fingerprint
from repro.experiments.engine import SweepEngine
from repro.experiments.runner import run_combo
from repro.sim.config import ScenarioConfig
from repro.sim.io import canonical_result_json
from repro.sim.scenario import build_scenario

BASE_CONFIG = ScenarioConfig(
    dataset="synthetic",
    num_edges=3,
    horizon=24,
    num_models=4,
    n_test=300,
    seed=0,
)

#: One override per swept config field; each must move the cell key.
FIELD_OVERRIDES = {
    "num_edges": {"num_edges": 4},
    "horizon": {"horizon": 32},
    "num_models": {"num_models": 5},
    "carbon_cap_kg": {"carbon_cap_kg": 123.0},
    "rho_kg_per_kwh": {"rho_kg_per_kwh": 0.25},
    "requests_per_arrival": {"requests_per_arrival": 1e6},
    "workload_base_mean": {"workload_base_mean": 55.0},
    "trade_bound_factor": {"trade_bound_factor": 2.0},
    "switching_weight": {"switching_weight": 3.0},
    "seed": {"seed": 99},
    "n_test": {"n_test": 400},
    "image_size": {"image_size": 10},
}


def base_key(scenario) -> str:
    return cell_key(scenario, "Ours", "Ours", 0, "Ours")


class TestKeySensitivity:
    def test_key_is_deterministic(self):
        scenario = build_scenario(BASE_CONFIG)
        again = build_scenario(BASE_CONFIG)
        assert base_key(scenario) == base_key(again)

    @pytest.mark.parametrize("field", sorted(FIELD_OVERRIDES))
    def test_every_config_field_moves_the_key(self, field):
        scenario = build_scenario(BASE_CONFIG)
        changed = build_scenario(BASE_CONFIG.with_overrides(**FIELD_OVERRIDES[field]))
        assert base_key(changed) != base_key(scenario), field

    def test_all_config_fields_are_covered(self):
        # If ScenarioConfig grows a field, this test forces an entry in
        # FIELD_OVERRIDES (or a conscious exemption here) so the sweep above
        # keeps proving that every field reaches the key.
        exempt = {"dataset", "weights", "zoo_seed", "n_train"}  # tested below / zoo-only
        fields = {f.name for f in dataclasses.fields(ScenarioConfig)}
        assert fields - exempt == set(FIELD_OVERRIDES)

    def test_weights_move_the_key(self):
        from repro.sim.config import CostWeights

        scenario = build_scenario(BASE_CONFIG)
        changed = build_scenario(
            BASE_CONFIG.with_overrides(weights=CostWeights(switching=2.0))
        )
        assert base_key(changed) != base_key(scenario)

    def test_selection_name_moves_the_key(self):
        scenario = build_scenario(BASE_CONFIG)
        assert cell_key(scenario, "UCB", "Ours", 0) != cell_key(
            scenario, "Ours", "Ours", 0
        )

    def test_trading_name_moves_the_key(self):
        scenario = build_scenario(BASE_CONFIG)
        assert cell_key(scenario, "Ours", "LY", 0) != cell_key(
            scenario, "Ours", "Ours", 0
        )

    def test_seed_moves_the_key(self):
        scenario = build_scenario(BASE_CONFIG)
        assert cell_key(scenario, "Ours", "Ours", 1) != cell_key(
            scenario, "Ours", "Ours", 0
        )

    def test_label_moves_the_key(self):
        # The label lands in the serialized result, so it must key too —
        # otherwise a cache hit could come back under the wrong name.
        scenario = build_scenario(BASE_CONFIG)
        assert cell_key(scenario, "Ours", "Ours", 0, "A") != cell_key(
            scenario, "Ours", "Ours", 0, "B"
        )

    def test_schema_version_moves_the_key(self, monkeypatch):
        from repro.experiments import cache as cache_module

        scenario = build_scenario(BASE_CONFIG)
        before = base_key(scenario)
        monkeypatch.setattr(
            cache_module, "FORMAT_VERSION", cache_module.FORMAT_VERSION + 1
        )
        assert base_key(scenario) != before

    def test_fingerprint_pins_materialized_arrays(self):
        # Same config -> same fingerprint, field for field.
        fp1 = scenario_fingerprint(build_scenario(BASE_CONFIG))
        fp2 = scenario_fingerprint(build_scenario(BASE_CONFIG))
        assert fp1 == fp2


class TestCorruptionHandling:
    def entry(self, tmp_path):
        scenario = build_scenario(BASE_CONFIG)
        cache = ResultCache(tmp_path)
        key = base_key(scenario)
        result = run_combo(scenario, "Ours", "Ours", 0, label="Ours")
        cache.store(key, result)
        return scenario, cache, key, result

    def test_round_trip_is_bit_identical(self, tmp_path):
        _, cache, key, result = self.entry(tmp_path)
        loaded = cache.load(key)
        assert loaded is not None
        assert canonical_result_json(loaded) == canonical_result_json(result)
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.misses == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        _, cache, key, _ = self.entry(tmp_path)
        path = cache.path_for(key)
        path.write_text(path.read_text()[: 100], encoding="utf-8")
        assert cache.load(key) is None

    def test_bit_flip_in_payload_is_a_miss(self, tmp_path):
        _, cache, key, _ = self.entry(tmp_path)
        path = cache.path_for(key)
        raw = json.loads(path.read_text())
        raw["payload"]["horizon"] = raw["payload"]["horizon"] + 1
        path.write_text(json.dumps(raw), encoding="utf-8")
        assert cache.load(key) is None

    def test_entry_under_wrong_key_is_a_miss(self, tmp_path):
        # A rename/copy attack: a valid entry served under a different key
        # must be rejected by the embedded-key check.
        _, cache, key, _ = self.entry(tmp_path)
        other = "f" * 64
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(
            cache.path_for(key).read_text(), encoding="utf-8"
        )
        assert cache.load(other) is None

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        _, cache, key, _ = self.entry(tmp_path)
        cache.path_for(key).write_text("not json {", encoding="utf-8")
        assert cache.load(key) is None

    def test_corrupted_entry_is_recomputed_not_served(self, tmp_path):
        scenario, cache, key, result = self.entry(tmp_path)
        path = cache.path_for(key)
        path.write_text(path.read_text()[:-40], encoding="utf-8")

        engine = SweepEngine(cache=ResultCache(tmp_path))
        results = engine.run_many(scenario, "Ours", "Ours", [0], label="Ours")
        assert engine.stats.executed == 1, "corrupted cell must recompute"
        assert engine.stats.cache_hits == 0
        assert canonical_result_json(results[0]) == canonical_result_json(result)
        # The recompute healed the entry: the next engine hits it.
        healed = SweepEngine(cache=ResultCache(tmp_path))
        healed.run_many(scenario, "Ours", "Ours", [0], label="Ours")
        assert healed.stats.cache_hits == 1

    def test_len_counts_entries(self, tmp_path):
        _, cache, _, _ = self.entry(tmp_path)
        assert len(cache) == 1


class TestKeyExtensions:
    """``kind`` and ``faults`` enter the key only when non-default."""

    def test_default_kind_and_empty_faults_leave_key_unchanged(self):
        from repro.faults import FaultPlan

        scenario = build_scenario(BASE_CONFIG)
        plain = base_key(scenario)
        assert cell_key(scenario, "Ours", "Ours", 0, "Ours", kind="combo") == plain
        assert (
            cell_key(scenario, "Ours", "Ours", 0, "Ours", faults=FaultPlan()) == plain
        )

    def test_offline_kind_moves_the_key(self):
        scenario = build_scenario(BASE_CONFIG)
        assert cell_key(
            scenario, "Offline", "Offline", 0, "Offline", kind="offline"
        ) != cell_key(scenario, "Offline", "Offline", 0, "Offline")

    def test_nonempty_fault_plan_moves_the_key(self):
        from repro.faults import FaultPlan, MarketOutage

        scenario = build_scenario(BASE_CONFIG)
        plan = FaultPlan((MarketOutage(start=0, end=4),))
        assert cell_key(scenario, "Ours", "Ours", 0, "Ours", faults=plan) != base_key(
            scenario
        )


class TestPrune:
    def populated(self, tmp_path, entries=4):
        scenario = build_scenario(BASE_CONFIG)
        cache = ResultCache(tmp_path)
        for seed in range(entries):
            key = cell_key(scenario, "Ours", "Ours", seed, "Ours")
            cache.store(key, run_combo(scenario, "Ours", "Ours", seed, label="Ours"))
        return cache

    def test_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValueError, match="prune needs"):
            ResultCache(tmp_path).prune()

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = self.populated(tmp_path)
        report = cache.prune(max_size_bytes=0, dry_run=True)
        assert report.dry_run
        assert report.removed == 4
        assert len(cache) == 4

    def test_size_eviction_is_oldest_first(self, tmp_path):
        import os

        cache = self.populated(tmp_path)
        paths = sorted(
            cache.directory.glob("*/*.json"), key=lambda p: p.stat().st_mtime
        )
        # Spread mtimes so ordering is unambiguous, oldest first.
        for offset, path in enumerate(paths):
            os.utime(path, (1_000_000 + offset, 1_000_000 + offset))
        survivors_budget = sum(p.stat().st_size for p in paths[2:])
        report = cache.prune(max_size_bytes=survivors_budget)
        assert report.removed == 2
        assert sorted(report.removed_paths) == sorted(paths[:2])
        assert len(cache) == 2

    def test_age_eviction_removes_stale_entries(self, tmp_path):
        import os

        cache = self.populated(tmp_path)
        stale = next(iter(cache.directory.glob("*/*.json")))
        os.utime(stale, (1_000_000, 1_000_000))  # far in the past
        report = cache.prune(max_age_seconds=3600.0)
        assert report.removed == 1
        assert report.removed_paths == [stale]
        assert len(cache) == 3

    def test_empty_shard_directories_are_cleaned_up(self, tmp_path):
        cache = self.populated(tmp_path)
        cache.prune(max_size_bytes=0)
        assert len(cache) == 0
        assert not any(p.is_dir() for p in cache.directory.iterdir())

    def test_total_size_matches_report(self, tmp_path):
        cache = self.populated(tmp_path)
        report = cache.prune(max_size_bytes=10**9)  # evicts nothing
        assert report.removed == 0
        assert report.kept_bytes == cache.total_size_bytes()
