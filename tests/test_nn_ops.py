"""Tests for repro.nn.ops (im2col / col2im)."""

import numpy as np
import pytest

from repro.nn.ops import col2im, conv_output_size, im2col, pad_nchw


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(8, 3, 1, 1, 8), (8, 3, 1, 0, 6), (8, 2, 2, 0, 4), (5, 5, 1, 2, 5)],
    )
    def test_known_geometries(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_zero_padding_is_identity(self):
        x = np.random.default_rng(0).random((1, 2, 3, 3))
        assert pad_nchw(x, 0) is x

    def test_padding_shape_and_zeros(self):
        x = np.ones((1, 1, 2, 2))
        out = pad_nchw(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == 0.0
        assert out[0, 0, 1, 1] == 1.0


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).random((2, 3, 8, 8))
        cols = im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.random((2, 2, 6, 6))
        w = rng.random((4, 2, 3, 3))
        cols = im2col(x, 3, 1, 1)
        fast = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(0, 3, 1, 2)

        xp = pad_nchw(x, 1)
        naive = np.zeros((2, 4, 6, 6))
        for b in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = xp[b, :, i : i + 3, j : j + 3]
                        naive[b, o, i, j] = np.sum(patch * w[o])
        np.testing.assert_allclose(fast, naive, atol=1e-12)

    def test_stride_two(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, kernel=2, stride=2, padding=0)
        assert cols.shape == (4, 4)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])


class TestCol2Im:
    def test_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> for all x, y (linear adjoint)."""
        rng = np.random.default_rng(2)
        x = rng.random((2, 3, 6, 6))
        cols = im2col(x, 3, 1, 1)
        y = rng.random(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 1, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_adjoint_property_strided(self):
        rng = np.random.default_rng(3)
        x = rng.random((1, 2, 8, 8))
        cols = im2col(x, 2, 2, 0)
        y = rng.random(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 2, 2, 0)))
        assert lhs == pytest.approx(rhs, rel=1e-10)
