"""Per-rule fixture tests for the reprolint rule engine.

Every rule is exercised three ways: a snippet that must trigger it, a
clean rewrite that must not, and the triggering snippet silenced by an
inline ``# noqa: RPLxxx``.  Reporter output contracts (text rendering and
the JSON schema) are pinned at the end.
"""

import json

import pytest

from repro.lint import lint_source, registered_codes
from repro.lint.engine import Finding, collect_noqa
from repro.lint.reporters import render_json, render_text

# (rule code, virtual path, triggering snippet, clean snippet)
RULE_CASES = [
    (
        "RPL001",
        "repro/sim/module.py",
        "import numpy as np\nx = np.random.rand(3)\n",
        "def draw(rng):\n    return rng.random(3)\n",
    ),
    (
        "RPL001",
        "repro/sim/module.py",
        "import random\nrandom.seed(0)\n",
        "import secrets\ntoken = secrets.token_hex(4)\n",
    ),
    (
        "RPL002",
        "repro/sim/module.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(1234)\n",
    ),
    (
        "RPL003",
        "repro/nn/module.py",
        "def is_zero(x):\n    return x == 0.0\n",
        "def is_zero(x):\n    return abs(x) < 1e-12\n",
    ),
    (
        "RPL004",
        "repro/sim/module.py",
        "def collect(items=[]):\n    return items\n",
        "def collect(items=None):\n    return [] if items is None else items\n",
    ),
    (
        "RPL005",
        "repro/core/module.py",
        "import numpy as np\ndef weights(z):\n    return np.exp(z)\n",
        "import numpy as np\ndef weights(z):\n    return np.exp(np.clip(z, -50.0, 0.0))\n",
    ),
    (
        "RPL005",
        "repro/bandits/module.py",
        "def mean(total, arr):\n    return total / arr.sum()\n",
        "def mean(total, arr):\n    return total / max(arr.sum(), 1e-12)\n",
    ),
    (
        "RPL006",
        "repro/core/module.py",
        "import numpy as np\n"
        "def fold(losses: np.ndarray) -> float:\n"
        "    return float(losses.sum())\n",
        "import numpy as np\n"
        "from repro.utils.validation import check_finite\n"
        "def fold(losses: np.ndarray) -> float:\n"
        "    arr = check_finite(losses, 'losses')\n"
        "    return float(arr.sum())\n",
    ),
    (
        "RPL007",
        "repro/sim/module.py",
        "__all__ = ['ghost']\n",
        "__all__ = ['real']\ndef real():\n    return 1\n",
    ),
    (
        "RPL007",
        "repro/sim/module.py",
        "__all__ = ['listed']\n"
        "def listed():\n    return 1\n"
        "def unlisted():\n    return 2\n",
        "__all__ = ['listed', 'unlisted']\n"
        "def listed():\n    return 1\n"
        "def unlisted():\n    return 2\n",
    ),
    (
        "RPL008",
        "repro/sim/module.py",
        "import time\nstamp = time.time()\n",
        "import time\nelapsed = time.perf_counter()\n",
    ),
    (
        "RPL009",
        "repro/sim/module.py",
        "try:\n    x = 1\nexcept Exception:\n    pass\n",
        "try:\n    x = 1\nexcept ValueError:\n    raise\n",
    ),
    (
        "RPL010",
        "repro/sim/module.py",
        "print('progress')\n",
        "message = 'progress'\n",
    ),
    (
        "RPL011",
        "repro/sim/module.py",
        "import numpy as np\n"
        "def scale(x: np.ndarray) -> np.ndarray:\n"
        "    x *= 2.0\n"
        "    return x\n",
        "import numpy as np\n"
        "def scale(x: np.ndarray) -> np.ndarray:\n"
        "    x = x.copy()\n"
        "    x *= 2.0\n"
        "    return x\n",
    ),
    (
        "RPL011",
        "repro/sim/module.py",
        "import numpy as np\n"
        "def clamp(values: np.ndarray) -> np.ndarray:\n"
        "    values[values < 0] = 0.0\n"
        "    return values\n",
        "import numpy as np\n"
        "def clamp(values: np.ndarray) -> np.ndarray:\n"
        "    return np.maximum(values, 0.0)\n",
    ),
    (
        "RPL012",
        "repro/serve/module.py",
        "import time\n"
        "async def worker():\n"
        "    time.sleep(0.1)\n",
        "import asyncio\n"
        "async def worker():\n"
        "    await asyncio.sleep(0.1)\n",
    ),
    (
        "RPL012",
        "repro/serve/module.py",
        # Transitive: the async def never blocks directly, but calls a sync
        # helper that does — invisible to a rule that only scans call names
        # inside the coroutine.
        "import time\n"
        "def persist():\n"
        "    time.sleep(0.1)\n"
        "async def coordinate():\n"
        "    persist()\n",
        "import asyncio\n"
        "import time\n"
        "def persist():\n"
        "    time.sleep(0.1)\n"
        "async def coordinate():\n"
        "    await asyncio.to_thread(persist)\n",
    ),
    (
        "RPL012",
        "repro/serve/module.py",
        "async def snapshot(path, state):\n"
        "    path.write_text(state)\n",
        "import asyncio\n"
        "async def snapshot(path, state):\n"
        "    await asyncio.to_thread(path.write_text, state)\n",
    ),
    (
        "RPL013",
        "repro/serve/module.py",
        "import asyncio\n"
        "async def launch(coro):\n"
        "    asyncio.create_task(coro)\n",
        "import asyncio\n"
        "async def launch(coro):\n"
        "    task = asyncio.create_task(coro)\n"
        "    await task\n",
    ),
    (
        "RPL014",
        "repro/serve/module.py",
        "class Runtime:\n"
        "    async def feeder(self):\n"
        "        self.slot = 1\n"
        "    async def actor(self):\n"
        "        self.slot = 2\n",
        "class Runtime:\n"
        "    async def feeder(self):\n"
        "        await self.queue.put(1)\n"
        "    async def actor(self):\n"
        "        self.slot = await self.queue.get()\n",
    ),
    (
        "RPL015",
        "repro/sim/module.py",
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n",
        "from repro.utils.rng import spawn_generator\n"
        "rng = spawn_generator(7, 'workload')\n",
    ),
    (
        "RPL015",
        "repro/sim/module.py",
        "from numpy.random import Generator, PCG64\n"
        "rng = Generator(PCG64(3))\n",
        "from repro.utils.rng import RngFactory\n"
        "rng = RngFactory(seed=3).get('faults')\n",
    ),
    (
        "RPL016",
        "repro/faults/module.py",
        "class Injector:\n"
        "    def __init__(self, rng):\n"
        "        self._rng = rng\n"
        "    def apply(self, t):\n"
        "        return self._rng.random() < 0.5\n",
        "class Injector:\n"
        "    def __init__(self, rng, horizon):\n"
        "        self._mask = rng.random(horizon) < 0.5\n"
        "    def apply(self, t):\n"
        "        return self._mask[t]\n",
    ),
    (
        "RPL017",
        "repro/sim/module.py",
        "def cost(latencies):\n"
        '    """Total cost.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    latencies:\n"
        "        (I, N) latency matrix.\n"
        '    """\n'
        "    return latencies[0, 1, 2]\n",
        "def cost(latencies):\n"
        '    """Total cost.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    latencies:\n"
        "        (I, N) latency matrix.\n"
        '    """\n'
        "    return latencies[0, 1]\n",
    ),
    (
        "RPL017",
        "repro/sim/module.py",
        "import numpy as np\n"
        "def fold(weights):\n"
        '    """Sum.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    weights:\n"
        "        (N,) simplex weights.\n"
        '    """\n'
        "    return np.sum(weights, axis=1)\n",
        "import numpy as np\n"
        "def fold(weights):\n"
        '    """Sum.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    weights:\n"
        "        (N,) simplex weights.\n"
        '    """\n'
        "    return np.sum(weights, axis=0)\n",
    ),
    (
        "RPL017",
        "repro/sim/module.py",
        "def peak(workload_means):\n"
        '    """Busiest slot.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    workload_means:\n"
        "        (I, T) per-edge mean arrivals.\n"
        '    """\n'
        "    return workload_means.shape[2]\n",
        "def peak(workload_means):\n"
        '    """Busiest slot.\n'
        "\n"
        "    Parameters\n"
        "    ----------\n"
        "    workload_means:\n"
        "        (I, T) per-edge mean arrivals.\n"
        '    """\n'
        "    return workload_means.shape[1]\n",
    ),
]

CASE_IDS = [f"{code}-{i}" for i, (code, *_rest) in enumerate(RULE_CASES)]


@pytest.mark.parametrize("code,path,bad,good", RULE_CASES, ids=CASE_IDS)
class TestRuleFixtures:
    def test_flags_violation(self, code, path, bad, good):
        findings = lint_source(bad, path=path, select=[code])
        assert findings, f"{code} missed its fixture violation"
        assert {f.code for f in findings} == {code}

    def test_clean_code_passes(self, code, path, bad, good):
        assert lint_source(good, path=path, select=[code]) == []

    def test_noqa_suppresses(self, code, path, bad, good):
        findings = lint_source(bad, path=path, select=[code])
        lines = bad.splitlines()
        for line_no in sorted({f.line for f in findings}, reverse=True):
            lines[line_no - 1] += f"  # noqa: {code} -- fixture suppression"
        silenced = "\n".join(lines) + "\n"
        assert lint_source(silenced, path=path, select=[code]) == []


class TestScoping:
    def test_hot_path_rule_ignores_cold_modules(self):
        src = "import numpy as np\ndef weights(z):\n    return np.exp(z)\n"
        assert lint_source(src, path="repro/nn/module.py", select=["RPL005"]) == []

    def test_core_validator_rule_ignores_other_packages(self):
        src = (
            "import numpy as np\n"
            "def fold(losses: np.ndarray) -> float:\n"
            "    return float(losses.sum())\n"
        )
        assert lint_source(src, path="repro/metrics/module.py", select=["RPL006"]) == []

    def test_private_core_function_not_required_to_validate(self):
        src = (
            "import numpy as np\n"
            "def _fold(losses: np.ndarray) -> float:\n"
            "    return float(losses.sum())\n"
        )
        assert lint_source(src, path="repro/core/module.py", select=["RPL006"]) == []

    def test_print_allowed_in_experiments(self):
        assert (
            lint_source("print('hi')\n", path="repro/experiments/fig.py", select=["RPL010"])
            == []
        )


class TestInPlaceArrayMutation:
    """RPL011 corner cases beyond the shared fixture trio."""

    PATH = "repro/sim/module.py"

    def lint(self, src):
        return lint_source(src, path=self.PATH, select=["RPL011"])

    def test_unannotated_parameter_is_not_flagged(self):
        src = "def mutate(x):\n    x[0] = 1.0\n    return x\n"
        assert self.lint(src) == []

    def test_inplace_method_call_flagged(self):
        src = (
            "import numpy as np\n"
            "def order(x: np.ndarray) -> np.ndarray:\n"
            "    x.sort()\n"
            "    return x\n"
        )
        assert [f.code for f in self.lint(src)] == ["RPL011"]

    def test_out_keyword_aliasing_flagged(self):
        src = (
            "import numpy as np\n"
            "def clamp(x: np.ndarray) -> np.ndarray:\n"
            "    return np.clip(x, 0.0, 1.0, out=x)\n"
        )
        assert [f.code for f in self.lint(src)] == ["RPL011"]

    def test_mutation_before_copy_still_flagged(self):
        src = (
            "import numpy as np\n"
            "def late_copy(x: np.ndarray) -> np.ndarray:\n"
            "    x[0] = 1.0\n"
            "    x = x.copy()\n"
            "    return x\n"
        )
        findings = self.lint(src)
        assert [f.line for f in findings] == [3]

    def test_rebind_through_np_array_severs_aliasing(self):
        src = (
            "import numpy as np\n"
            "def widen(x: np.ndarray) -> np.ndarray:\n"
            "    x = np.array(x, dtype=float)\n"
            "    x += 1.0\n"
            "    return x\n"
        )
        assert self.lint(src) == []

    def test_local_arrays_are_free_to_mutate(self):
        src = (
            "import numpy as np\n"
            "def build(n: int) -> np.ndarray:\n"
            "    out = np.zeros(n)\n"
            "    out[0] = 1.0\n"
            "    return out\n"
        )
        assert self.lint(src) == []


class TestSuppressionMachinery:
    def test_blanket_noqa_suppresses_everything(self):
        src = "import time\nstamp = time.time()  # noqa\n"
        assert lint_source(src, path="repro/sim/module.py") == []

    def test_noqa_for_other_code_does_not_suppress(self):
        src = "import time\nstamp = time.time()  # noqa: RPL003\n"
        findings = lint_source(src, path="repro/sim/module.py")
        assert [f.code for f in findings] == ["RPL008"]

    def test_skip_file_directive(self):
        src = "# reprolint: skip-file\nimport time\nstamp = time.time()\n"
        assert lint_source(src, path="repro/sim/module.py") == []

    def test_collect_noqa_parses_codes_and_reasons(self):
        suppressions, skip = collect_noqa(
            "x = 1  # noqa: RPL001, RPL003 -- reason text\n"
        )
        assert not skip
        assert suppressions[1] == frozenset({"RPL001", "RPL003"})


class TestEngineContracts:
    def test_syntax_error_becomes_rpl000_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].code == "RPL000"

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            lint_source("x = 1\n", select=["RPL999"])

    def test_finding_render_format(self):
        finding = Finding(path="a.py", line=3, col=4, code="RPL001", message="msg")
        assert finding.render() == "a.py:3:4: RPL001 msg"

    def test_findings_sorted_by_location(self):
        src = "import time\na = time.time()\nb = 0.0\nc = b == 0.0\nd = time.time()\n"
        findings = lint_source(src, path="repro/sim/module.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestReporters:
    def _sample_findings(self):
        src = "import time\nstamp = time.time()\n"
        return lint_source(src, path="repro/sim/module.py")

    def test_text_reporter_mentions_counts(self):
        report = render_text(self._sample_findings(), checked_files=1)
        assert "RPL008" in report
        assert "1 finding(s) in 1 file(s)" in report

    def test_text_reporter_clean_summary(self):
        assert render_text([], checked_files=4) == "reprolint: 0 findings in 4 file(s)"

    def test_json_schema(self):
        payload = json.loads(render_json(self._sample_findings(), checked_files=1))
        assert payload["schema_version"] == 1
        assert {rule["code"] for rule in payload["rules"]} == set(registered_codes())
        assert all(
            set(rule) == {"code", "summary", "severity"}
            for rule in payload["rules"]
        )
        assert payload["summary"]["total_findings"] == len(payload["findings"])
        assert payload["summary"]["checked_files"] == 1
        assert payload["summary"]["findings_by_code"] == {"RPL008": 1}
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["warnings"] == 0
        for finding in payload["findings"]:
            assert set(finding) == {
                "path",
                "line",
                "col",
                "code",
                "message",
                "severity",
            }

    def test_json_schema_when_clean(self):
        payload = json.loads(render_json([], checked_files=96))
        assert payload["findings"] == []
        assert payload["summary"]["total_findings"] == 0
        assert len(payload["rules"]) >= 8


class TestSeverity:
    def test_findings_default_to_error_severity(self):
        findings = lint_source(
            "import time\nstamp = time.time()\n", path="repro/sim/module.py"
        )
        assert findings
        assert all(f.severity == "error" and f.is_error for f in findings)

    def test_path_severity_downgrades_matching_code(self):
        src = "def main():\n    print('hi')\n"
        findings = lint_source(
            src,
            path="examples/demo.py",
            path_severity={"examples": {"RPL010": "warning"}},
        )
        assert [f.code for f in findings] == ["RPL010"]
        assert findings[0].severity == "warning"
        assert not findings[0].is_error

    def test_path_severity_only_applies_on_matching_paths(self):
        src = "def main():\n    print('hi')\n"
        findings = lint_source(
            src,
            path="repro/sim/module.py",
            path_severity={"examples": {"RPL010": "warning"}},
        )
        assert [f.code for f in findings] == ["RPL010"]
        assert findings[0].severity == "error"

    def test_unknown_severity_level_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            lint_source(
                "print('x')\n",
                path="examples/demo.py",
                path_severity={"examples": {"RPL010": "fatal"}},
            )

    def test_warning_render_carries_marker(self):
        finding = Finding(
            path="a.py",
            line=3,
            col=4,
            code="RPL010",
            message="msg",
            severity="warning",
        )
        assert finding.render() == "a.py:3:4: RPL010 [warning] msg"

    def test_text_summary_breaks_down_severities(self):
        findings = [
            Finding(path="a.py", line=1, col=0, code="RPL008", message="m"),
            Finding(
                path="b.py",
                line=2,
                col=0,
                code="RPL010",
                message="m",
                severity="warning",
            ),
        ]
        report = render_text(findings, checked_files=2)
        assert "(1 error(s), 1 warning(s))" in report

    def test_cli_exit_zero_on_warnings_only(self, tmp_path):
        from repro.lint.cli import run

        target = tmp_path / "examples" / "demo.py"
        target.parent.mkdir()
        target.write_text("def main():\n    print('hi')\n", encoding="utf-8")
        report, code = run([str(target.parent)])
        assert code == 0
        assert "[warning]" in report

    def test_cli_exit_one_on_errors(self, tmp_path):
        from repro.lint.cli import run

        target = tmp_path / "module.py"
        target.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
        report, code = run([str(target)])
        assert code == 1
