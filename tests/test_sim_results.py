"""Tests for SimulationResult accounting."""

import numpy as np
import pytest

from repro.sim.config import CostWeights
from repro.sim.results import SimulationResult


def make_result(horizon=4, num_edges=2, cap=10.0):
    rng = np.random.default_rng(0)
    return SimulationResult(
        label="test",
        horizon=horizon,
        num_edges=num_edges,
        carbon_cap=cap,
        expected_inference_cost=np.array([1.0, 1.0, 2.0, 2.0]),
        realized_inference_loss=np.array([1.1, 0.9, 2.2, 1.8]),
        compute_cost=np.array([0.1, 0.1, 0.2, 0.2]),
        switching_cost=np.array([2.0, 0.0, 3.0, 0.0]),
        emissions=np.array([5.0, 6.0, 7.0, 8.0]),
        bought=np.array([0.0, 4.0, 6.0, 8.0]),
        sold=np.array([1.0, 0.0, 0.0, 0.0]),
        trading_cost=np.array([-0.9, 3.2, 4.8, 6.4]),
        buy_prices=np.array([8.0, 0.8, 0.8, 0.8]),
        sell_prices=np.array([0.9, 0.72, 0.72, 0.72]),
        arrivals=np.array([10.0, 10.0, 20.0, 20.0]),
        accuracy=np.array([0.5, 0.6, 0.7, 0.8]),
        selections=rng.integers(0, 3, size=(horizon, num_edges)),
        switches=np.array([[True, True], [False, False], [True, False], [False, False]]),
    )


class TestCostAccounting:
    def test_cost_series_weighted_sum(self):
        result = make_result()
        weights = CostWeights(inference=1.0, compute=2.0, switching=0.5, trading=0.1)
        expected = (
            result.expected_inference_cost
            + 2.0 * result.compute_cost
            + 0.5 * result.switching_cost
            + 0.1 * result.trading_cost
        )
        np.testing.assert_allclose(result.cost_series(weights), expected)

    def test_total_is_sum_of_series(self):
        result = make_result()
        weights = CostWeights()
        assert result.total_cost(weights) == pytest.approx(
            result.cost_series(weights).sum()
        )

    def test_cumulative_monotone_for_positive_costs(self):
        result = make_result()
        cum = result.cumulative_cost(CostWeights(trading=0.0))
        assert np.all(np.diff(cum) > 0)


class TestNeutralityAccounting:
    def test_holdings_series(self):
        result = make_result(cap=10.0)
        np.testing.assert_allclose(result.holdings_series(), [9.0, 13.0, 19.0, 27.0])

    def test_fit_series(self):
        result = make_result(cap=10.0)
        emissions_cum = np.array([5.0, 11.0, 18.0, 26.0])
        expected = np.maximum(emissions_cum - result.holdings_series(), 0.0)
        np.testing.assert_allclose(result.fit_series(), expected)

    def test_final_fit(self):
        result = make_result()
        assert result.final_fit() == pytest.approx(result.fit_series()[-1])

    def test_net_purchase_series(self):
        result = make_result()
        np.testing.assert_allclose(
            result.net_purchase_series(), [-1.0, 4.0, 6.0, 8.0]
        )


class TestSelectionAccounting:
    def test_total_switches(self):
        assert make_result().total_switches() == 3

    def test_switches_per_edge(self):
        np.testing.assert_array_equal(make_result().switches_per_edge(), [2, 1])

    def test_selection_counts_sum_to_horizon(self):
        result = make_result()
        counts = result.selection_counts()
        assert counts.sum(axis=1).tolist() == [4, 4]


class TestDerivedMetrics:
    def test_mean_accuracy_weighted_by_arrivals(self):
        result = make_result()
        expected = (0.5 * 10 + 0.6 * 10 + 0.7 * 20 + 0.8 * 20) / 60
        assert result.mean_accuracy() == pytest.approx(expected)

    def test_mean_purchase_price(self):
        result = make_result()
        expected = (4 * 0.8 + 6 * 0.8 + 8 * 0.8) / 18
        assert result.mean_purchase_price() == pytest.approx(expected)

    def test_unit_purchase_cost_is_cost_per_net_allowance(self):
        result = make_result()
        expected = result.trading_cost.sum() / 17.0  # net = 18 bought - 1 sold
        assert result.unit_purchase_cost() == pytest.approx(expected)

    def test_unit_purchase_cost_nan_without_net_coverage(self):
        result = make_result()
        object.__setattr__(result, "bought", np.zeros(4))
        assert np.isnan(result.unit_purchase_cost())
        assert np.isnan(result.mean_purchase_price())


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            result = make_result()
            SimulationResult(
                **{
                    **result.__dict__,
                    "emissions": np.zeros(3),
                }
            )
