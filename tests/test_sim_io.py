"""Tests for result serialization."""

import numpy as np
import pytest

from repro.experiments.runner import run_combo
from repro.sim.io import (
    load_result_json,
    load_result_npz,
    result_from_dict,
    result_to_dict,
    save_result_json,
    save_result_npz,
)


@pytest.fixture(scope="module")
def result(small_scenario_module):
    return run_combo(small_scenario_module, "Ours", "Ours", seed=0)


@pytest.fixture(scope="module")
def small_scenario_module():
    from repro.sim.config import ScenarioConfig
    from repro.sim.scenario import build_scenario

    return build_scenario(
        ScenarioConfig(dataset="synthetic", num_edges=2, horizon=24, num_models=3, n_test=200)
    )


def assert_results_equal(a, b):
    import dataclasses

    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, np.ndarray):
            np.testing.assert_array_equal(va, vb, err_msg=field.name)
        else:
            assert va == vb, field.name


class TestDictRoundTrip:
    def test_roundtrip_exact(self, result):
        assert_results_equal(result, result_from_dict(result_to_dict(result)))

    def test_dict_is_json_compatible(self, result):
        import json

        text = json.dumps(result_to_dict(result))
        assert "selections" in text

    def test_missing_field_rejected(self, result):
        payload = result_to_dict(result)
        del payload["emissions"]
        with pytest.raises(ValueError, match="emissions"):
            result_from_dict(payload)

    def test_wrong_version_rejected(self, result):
        payload = result_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    def test_dtypes_restored(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.selections.dtype == np.dtype(int)
        assert restored.switches.dtype == np.dtype(bool)


class TestFileRoundTrips:
    def test_json(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json")
        assert path.exists()
        assert_results_equal(result, load_result_json(path))

    def test_npz(self, result, tmp_path):
        save_result_npz(result, tmp_path / "run.npz")
        assert_results_equal(result, load_result_npz(tmp_path / "run.npz"))

    def test_derived_metrics_survive(self, result, tmp_path):
        save_result_json(result, tmp_path / "run.json")
        restored = load_result_json(tmp_path / "run.json")
        weights = __import__("repro.sim.config", fromlist=["CostWeights"]).CostWeights()
        assert restored.total_cost(weights) == pytest.approx(result.total_cost(weights))
        assert restored.final_fit() == pytest.approx(result.final_fit())
