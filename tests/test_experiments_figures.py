"""Smoke and shape tests for every figure experiment.

Each experiment runs at a reduced size (tiny sweeps, one or two seeds) and
is checked for the structural properties the paper's figure demonstrates.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig03_cumulative_cost,
    fig04_total_cost_vs_edges,
    fig05_switching_weight,
    fig06_emission_rate,
    fig07_carbon_cap,
    fig08_selection_histogram,
    fig09_trading_vs_workload,
    fig10_regret,
    fig11_fit,
    fig12_accuracy_mnist,
    fig13_accuracy_cifar,
    fig14_runtime,
)

SEEDS = [0, 1]


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_cumulative_cost.run(
            fast=True, seeds=SEEDS, combos=(("Ran", "Ran"), ("Greedy", "LY"))
        )

    def test_series_cover_horizon(self, result):
        for series in result.series.values():
            assert series.shape == (result.horizon,)

    def test_cumulative_costs_increase(self, result):
        for label, series in result.series.items():
            assert series[-1] > series[0], label

    def test_ours_below_random(self, result):
        assert result.final_costs()["Ours"] < result.final_costs()["Ran-Ran"]

    def test_offline_lowest(self, result):
        finals = result.final_costs()
        assert finals["Offline"] == min(finals.values())

    def test_normalization(self, result):
        normalized = result.normalized()
        assert max(float(s[-1]) for s in normalized.values()) == pytest.approx(1.0)

    def test_format(self, result):
        text = fig03_cumulative_cost.format_result(result)
        assert "Fig. 3" in text
        assert "Ours" in text


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_total_cost_vs_edges.run(
            fast=True, seeds=SEEDS, edge_counts=(3, 6), combos=(("Ran", "Ran"),)
        )

    def test_costs_grow_with_edges(self, result):
        for label, values in result.costs.items():
            assert values[1] > values[0], label

    def test_ours_lowest_online(self, result):
        for i in range(len(result.edge_counts)):
            assert result.costs["Ours"][i] < result.costs["Ran-Ran"][i]

    def test_reductions_positive(self, result):
        reductions = result.reductions_vs()
        assert reductions["Ran-Ran"] > 0

    def test_format(self, result):
        assert "Fig. 4" in fig04_total_cost_vs_edges.format_result(result)


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_switching_weight.run(fast=True, seeds=SEEDS, sweep=(1.0, 8.0))

    def test_ours_flatter_than_random(self, result):
        assert result.relative_growth("Ours") < result.relative_growth("Ran-LY")

    def test_ours_lowest_at_high_weight(self, result):
        ours = result.costs["Ours"][-1]
        assert ours < result.costs["Ran-LY"][-1]
        assert ours < result.costs["TINF-LY"][-1]

    def test_format(self, result):
        assert "Fig. 5" in fig05_switching_weight.format_result(result)


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_emission_rate.run(fast=True, seeds=SEEDS, rates=(0.25, 1.0))

    def test_ours_cost_grows_with_rate(self, result):
        assert result.costs["Ours"][-1] > result.costs["Ours"][0]

    def test_ours_below_lyapunov_combos(self, result):
        for i in range(2):
            assert result.costs["Ours"][i] < result.costs["UCB-LY"][i]

    def test_format(self, result):
        assert "Fig. 6" in fig06_emission_rate.format_result(result)


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_carbon_cap.run(fast=True, seeds=SEEDS, caps=(0.0, 800.0))

    def test_cap_aware_methods_decrease(self, result):
        assert result.slope("Ours") < 0
        assert result.slope("Offline") < 0

    def test_cap_oblivious_methods_flat(self, result):
        assert abs(result.slope("UCB-TH")) < 1e-6
        assert abs(result.slope("UCB-Ran")) < 1e-6

    def test_format(self, result):
        assert "Fig. 7" in fig07_carbon_cap.format_result(result)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_selection_histogram.run(fast=True, seeds=SEEDS)

    def test_counts_sum_to_horizon(self, result):
        assert result.ours_counts.sum() == pytest.approx(160.0)

    def test_negative_loss_count_correlation(self, result):
        assert result.loss_count_correlation() < -0.3

    def test_best_model_selected_most(self, result):
        best = int(np.argmin(result.expected_losses))
        assert result.ours_counts[best] == result.ours_counts.max()

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            fig08_selection_histogram.run(fast=True, seeds=[0], edge=999)

    def test_format(self, result):
        assert "Fig. 8" in fig08_selection_histogram.format_result(result)


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_trading_vs_workload.run(fast=True, seeds=SEEDS)

    def test_ours_tracks_workload(self, result):
        assert result.workload_correlation("Ours") > 0.5

    def test_baselines_do_not_track(self, result):
        assert result.workload_correlation("UCB-Ran") < 0.3

    def test_ours_cheapest_unit_cost(self, result):
        ours = result.unit_costs["Ours"]
        others = [v for k, v in result.unit_costs.items() if k != "Ours" and not np.isnan(v)]
        assert all(ours <= v + 1e-9 for v in others)

    def test_format(self, result):
        assert "Fig. 9" in fig09_trading_vs_workload.format_result(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_regret.run(
            fast=True, seeds=[0], horizons=(40, 120), combos=(("Ran", "LY"),)
        )

    def test_ours_regret_below_random(self, result):
        assert result.regrets["Ours"][-1] < result.regrets["Ran-LY"][-1]

    def test_ours_sublinear(self, result):
        assert result.is_sublinear("Ours")

    def test_format(self, result):
        assert "Fig. 10" in fig10_regret.format_result(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_fit.run(
            fast=True, seeds=[0], horizons=(40, 120), combos=(("UCB", "TH"),)
        )

    def test_ours_fit_small(self, result):
        assert result.fits["Ours"][-1] < result.fits["UCB-TH"][-1]

    def test_ours_sublinear(self, result):
        assert result.is_sublinear("Ours")

    def test_format(self, result):
        assert "Fig. 11" in fig11_fit.format_result(result)


class TestFig12And13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_accuracy_mnist.run(fast=True, seeds=SEEDS)

    def test_accuracy_series_valid(self, result):
        for series in result.accuracy.values():
            assert np.nanmin(series) >= 0.0
            assert np.nanmax(series) <= 1.0

    def test_offline_best(self, result):
        windows = result.windowed()
        offline_q4 = windows["Offline"][-1]
        for label, values in windows.items():
            assert values[-1] <= offline_q4 + 0.02, label

    def test_greedy_worst(self, result):
        windows = result.windowed()
        greedy_q4 = windows["Greedy-Ran"][-1]
        assert windows["Ours"][-1] > greedy_q4

    def test_ours_improves_over_time(self, result):
        windows = result.windowed()["Ours"]
        assert windows[-1] > windows[0]

    def test_fig13_distinct_zoo(self):
        result13 = fig13_accuracy_cifar.run(fast=True, seeds=[0])
        assert set(result13.accuracy) >= {"Ours", "Offline"}

    def test_format(self, result):
        assert "Fig. 12" in fig12_accuracy_mnist.format_result(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_runtime.run(fast=True, edge_counts=(2, 6), horizon=30)

    def test_positive_times(self, result):
        assert all(t > 0 for t in result.alg1_seconds_per_slot)
        assert all(t > 0 for t in result.alg2_seconds_per_slot)

    def test_alg1_scales_with_edges(self, result):
        assert result.alg1_scales_with_edges()

    def test_both_far_below_slot_length(self, result):
        """A 15-minute slot is 900 s; the algorithms must be far faster."""
        assert max(result.alg1_seconds_per_slot) < 90.0
        assert max(result.alg2_seconds_per_slot) < 90.0

    def test_format(self, result):
        assert "Fig. 14" in fig14_runtime.format_result(result)

    def test_runtimes_come_from_tracer_timers(self):
        from repro.obs import Tracer

        tracer = Tracer()
        result = fig14_runtime.run(
            fast=True, edge_counts=(2, 4), horizon=20, tracer=tracer
        )
        timers = tracer.metrics_snapshot()["timers"]
        assert set(timers) == {"alg1/I=2", "alg1/I=4", "alg2/I=2", "alg2/I=4"}
        for i, edges in enumerate((2, 4)):
            timer = tracer.timer(f"alg1/I={edges}")
            assert timer.count == 20, "one timer entry per slot"
            assert result.alg1_seconds_per_slot[i] == timer.mean_seconds
            assert result.alg2_seconds_per_slot[i] == (
                tracer.timer(f"alg2/I={edges}").mean_seconds
            )
