"""Tests for the geographic topology generator."""

import numpy as np
import pytest

from repro.traces.geo import EdgeTopology, Site, generate_topology


class TestSite:
    def test_distance_symmetry(self):
        a = Site("a", -33.9, 151.2)
        b = Site("b", -37.8, 144.9)
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            Site("bad", 91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            Site("bad", 0.0, 181.0)


class TestEdgeTopology:
    @pytest.fixture()
    def topology(self):
        cloud = Site("cloud", -20.0, 135.0)
        edges = [Site("e0", -20.0, 135.0), Site("e1", -30.0, 145.0)]
        return EdgeTopology(cloud, edges, base_delay_s=1.0, per_km_s=0.001)

    def test_num_edges(self, topology):
        assert topology.num_edges == 2

    def test_colocated_edge_has_base_delay(self, topology):
        delays = topology.download_delays()
        assert delays[0] == pytest.approx(1.0)

    def test_delay_monotone_in_distance(self, topology):
        delays = topology.download_delays()
        distances = topology.distances_km()
        assert distances[1] > distances[0]
        assert delays[1] > delays[0]

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            EdgeTopology(Site("c", 0, 0), [])

    def test_negative_delay_params_rejected(self):
        cloud = Site("c", 0, 0)
        with pytest.raises(ValueError):
            EdgeTopology(cloud, [cloud], base_delay_s=-1.0)


class TestGenerateTopology:
    def test_counts(self):
        topo = generate_topology(7, np.random.default_rng(0))
        assert topo.num_edges == 7

    def test_sites_inside_australia_box(self):
        topo = generate_topology(30, np.random.default_rng(1))
        for site in [topo.cloud] + topo.edges:
            assert -38.0 <= site.latitude <= -12.0
            assert 114.0 <= site.longitude <= 153.0

    def test_heterogeneous_delays(self):
        topo = generate_topology(20, np.random.default_rng(2))
        delays = topo.download_delays()
        assert delays.std() > 0.1
        assert np.all(delays >= topo.base_delay_s)

    def test_deterministic_given_seed(self):
        a = generate_topology(5, np.random.default_rng(3)).download_delays()
        b = generate_topology(5, np.random.default_rng(3)).download_delays()
        np.testing.assert_allclose(a, b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_topology(0, np.random.default_rng(0))
