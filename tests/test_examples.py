"""Smoke tests: the shipped examples must run end to end.

Only the fast examples execute here (the fleet-scaling and quantization
studies train zoos / run sweeps and are exercised manually or by the
benchmark suite).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_complete(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "carbon_market_study.py",
            "edge_fleet_scaling.py",
            "custom_policy.py",
            "quantized_model_control.py",
        } <= names

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "total cost" in out
        assert "Offline optimum" in out
        assert "neutrality gap" in out

    def test_custom_policy(self, capsys):
        out = run_example("custom_policy.py", capsys)
        assert "Ours (paper)" in out
        assert "ETC" in out

    @pytest.mark.skipif(sys.platform == "win32", reason="path handling")
    def test_examples_have_module_docstrings(self):
        for path in EXAMPLES.glob("*.py"):
            first = path.read_text().lstrip()
            assert first.startswith('"""'), f"{path.name} lacks a docstring"
