"""Tests for the Theorem-1 block schedules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    BlockSchedule,
    block_parameter,
    build_schedule,
    learning_rate,
)


class TestBlockParameter:
    def test_theorem_formula(self):
        # d_{i,k} = (3 u / 2) sqrt(k / N)
        assert block_parameter(4, switch_cost=2.0, num_models=4) == pytest.approx(3.0)

    def test_zero_switch_cost_gives_zero(self):
        assert block_parameter(10, 0.0, 6) == 0.0

    def test_grows_with_k(self):
        values = [block_parameter(k, 1.0, 6) for k in range(1, 10)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            block_parameter(0, 1.0, 6)


class TestLearningRate:
    def test_theorem_formula(self):
        d = block_parameter(2, 1.0, 6)
        expected = (2.0 / (d + 1.0)) * math.sqrt(1.0)
        assert learning_rate(2, 1.0, 6) == pytest.approx(expected)

    def test_zero_switch_cost_matches_slotwise_tsallis(self):
        # With u = 0: eta_k = 2 sqrt(2/k).
        assert learning_rate(8, 0.0, 6) == pytest.approx(2 * math.sqrt(2 / 8))

    def test_nonincreasing_in_k(self):
        rates = [learning_rate(k, 3.0, 6) for k in range(1, 50)]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))


class TestBuildSchedule:
    @given(
        horizon=st.integers(1, 500),
        switch_cost=st.floats(0.0, 30.0),
        num_models=st.integers(2, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_covers_horizon_exactly(self, horizon, switch_cost, num_models):
        schedule = build_schedule(horizon, switch_cost, num_models)
        assert int(schedule.lengths.sum()) == horizon
        assert np.all(schedule.lengths >= 1)
        assert np.all(schedule.etas > 0)

    def test_zero_switch_cost_gives_unit_blocks(self):
        schedule = build_schedule(50, 0.0, 6)
        assert schedule.num_blocks == 50
        assert np.all(schedule.lengths == 1)

    def test_block_count_matches_theorem_bound(self):
        """K_i <= N^(1/3) (T/u)^(2/3) + 1 (paper, proof of Theorem 1)."""
        for u in (1.0, 3.0, 10.0):
            for horizon in (100, 400):
                schedule = build_schedule(horizon, u, 6)
                bound = 6 ** (1 / 3) * (horizon / u) ** (2 / 3) + 1
                assert schedule.num_blocks <= math.ceil(bound) + 1

    def test_lengths_follow_formula_until_truncation(self):
        schedule = build_schedule(1000, 4.0, 6)
        for k0 in range(schedule.num_blocks - 1):  # last block may be truncated
            d = block_parameter(k0 + 1, 4.0, 6)
            assert schedule.lengths[k0] == max(math.ceil(d), 1)

    def test_block_of_slot(self):
        schedule = build_schedule(10, 0.0, 3)  # ten unit blocks
        assert schedule.block_of_slot(0) == 0
        assert schedule.block_of_slot(9) == 9
        with pytest.raises(ValueError):
            schedule.block_of_slot(10)

    def test_is_block_start(self):
        schedule = build_schedule(100, 5.0, 6)
        starts = set(schedule.starts.tolist())
        for t in range(100):
            assert schedule.is_block_start(t) == (t in starts)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            build_schedule(0, 1.0, 6)


class TestBlockScheduleValidation:
    def test_mismatched_sum_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(horizon=5, lengths=np.array([2, 2]), etas=np.array([1.0, 1.0]))

    def test_zero_length_block_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(horizon=2, lengths=np.array([2, 0]), etas=np.array([1.0, 1.0]))

    def test_nonpositive_eta_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(horizon=2, lengths=np.array([1, 1]), etas=np.array([1.0, 0.0]))
