"""Tests for the energy and carbon model."""

import numpy as np
import pytest

from repro.energy.model import (
    EnergyModel,
    LATENCY_RANGE_S,
    PHI_RANGE_KWH,
    sample_inference_energies,
    sample_latencies,
)


@pytest.fixture()
def model():
    return EnergyModel(
        phi_kwh=np.array([6e-8, 8e-8, 1e-7]),
        theta_kwh_per_byte=np.array([1e-16, 2e-16]),
        model_sizes_bytes=np.array([1e5, 5e5, 1e6]),
        rho_kg_per_kwh=0.5,
        requests_per_arrival=1e6,
    )


class TestSampling:
    def test_energies_in_paper_range(self):
        phi = sample_inference_energies(20, np.random.default_rng(0))
        assert np.all(phi >= PHI_RANGE_KWH[0])
        assert np.all(phi <= PHI_RANGE_KWH[1])

    def test_energies_ordered_by_size(self):
        sizes = np.array([1e4, 1e5, 1e6, 1e7])
        phi = sample_inference_energies(4, np.random.default_rng(1), model_sizes=sizes)
        assert phi[-1] > phi[0]

    def test_energies_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sample_inference_energies(3, np.random.default_rng(0), model_sizes=np.ones(2))

    def test_latencies_in_paper_range(self):
        v = sample_latencies(5, 4, np.random.default_rng(2))
        assert v.shape == (5, 4)
        assert np.all(v >= LATENCY_RANGE_S[0])
        assert np.all(v <= LATENCY_RANGE_S[1])

    def test_latencies_grow_with_model_size(self):
        sizes = np.array([1e4, 1e7])
        v = sample_latencies(3, 2, np.random.default_rng(3), model_sizes=sizes)
        assert np.all(v[:, 1] >= v[:, 0])

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            sample_inference_energies(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_latencies(0, 3, np.random.default_rng(0))


class TestEnergyModel:
    def test_inference_energy_linear_in_arrivals(self, model):
        one = model.inference_energy_kwh(0, 1)
        ten = model.inference_energy_kwh(0, 10)
        assert ten == pytest.approx(10 * one)

    def test_inference_energy_uses_multiplier(self, model):
        assert model.inference_energy_kwh(0, 1) == pytest.approx(6e-8 * 1e6)

    def test_transfer_energy(self, model):
        assert model.transfer_energy_kwh(1, 2) == pytest.approx(2e-16 * 1e6)

    def test_emissions_rate(self, model):
        assert model.emissions_kg(10.0) == pytest.approx(5.0)

    def test_slot_emissions_switch_adds_transfer(self, model):
        base = model.slot_emissions_kg(0, 1, 50, switched=False)
        switched = model.slot_emissions_kg(0, 1, 50, switched=True)
        expected_extra = model.emissions_kg(model.transfer_energy_kwh(0, 1))
        assert switched - base == pytest.approx(expected_extra)

    def test_negative_arrivals_rejected(self, model):
        with pytest.raises(ValueError):
            model.inference_energy_kwh(0, -1)

    def test_negative_energy_rejected(self, model):
        with pytest.raises(ValueError):
            model.emissions_kg(-1.0)

    def test_with_rho(self, model):
        doubled = model.with_rho(1.0)
        assert doubled.emissions_kg(1.0) == pytest.approx(2 * model.emissions_kg(1.0))
        assert doubled.requests_per_arrival == model.requests_per_arrival

    def test_counts(self, model):
        assert model.num_models == 3
        assert model.num_edges == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EnergyModel(
                phi_kwh=np.array([-1.0]),
                theta_kwh_per_byte=np.array([1e-16]),
                model_sizes_bytes=np.array([1e5]),
            )
        with pytest.raises(ValueError):
            EnergyModel(
                phi_kwh=np.array([1e-8, 1e-8]),
                theta_kwh_per_byte=np.array([1e-16]),
                model_sizes_bytes=np.array([1e5]),  # misaligned with phi
            )
