"""Tests for repro.nn.network.Sequential."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.network import Sequential


@pytest.fixture()
def net():
    rng = np.random.default_rng(5)
    return Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)], name="tiny")


class TestSequential:
    def test_forward_shape(self, net):
        out = net.forward(np.random.default_rng(0).standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_predict_proba_rows_sum_to_one(self, net):
        p = net.predict_proba(np.random.default_rng(0).standard_normal((5, 4)))
        np.testing.assert_allclose(p.sum(axis=1), np.ones(5))
        assert np.all(p >= 0)

    def test_predict_argmax_consistent(self, net):
        x = np.random.default_rng(0).standard_normal((5, 4))
        np.testing.assert_array_equal(net.predict(x), np.argmax(net.predict_proba(x), axis=1))

    def test_num_params(self, net):
        assert net.num_params() == 4 * 8 + 8 + 8 * 3 + 3

    def test_size_bytes_is_four_per_param(self, net):
        assert net.size_bytes() == 4 * net.num_params()

    def test_weights_roundtrip(self, net):
        x = np.random.default_rng(1).standard_normal((2, 4))
        before = net.forward(x)
        saved = net.get_weights()
        net.layers[0].params["W"] += 1.0
        assert not np.allclose(net.forward(x), before)
        net.set_weights(saved)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_shape_mismatch_raises(self, net):
        saved = net.get_weights()
        saved[0]["W"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.set_weights(saved)

    def test_set_weights_length_mismatch_raises(self, net):
        with pytest.raises(ValueError):
            net.set_weights(net.get_weights()[:-1])

    def test_empty_layer_list_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_end_to_end_gradient(self):
        """Whole-network backprop matches numerical gradient of a scalar loss."""
        rng = np.random.default_rng(6)
        net = Sequential([Flatten(), Dense(4, 5, rng), ReLU(), Dense(5, 2, rng)])
        x = rng.standard_normal((3, 1, 2, 2))
        weight = rng.standard_normal((3, 2))

        def loss():
            return float(np.sum(net.forward(x, training=True) * weight))

        net.forward(x, training=True)
        net.backward(weight)
        analytic = net.layers[1].grads["W"].copy()

        eps = 1e-6
        w = net.layers[1].params["W"]
        num = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                orig = w[i, j]
                w[i, j] = orig + eps
                fp = loss()
                w[i, j] = orig - eps
                fm = loss()
                w[i, j] = orig
                num[i, j] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-7)
