"""Tests for the baseline trading policies."""

import numpy as np
import pytest

from repro.policies.trading import TradeDecision, TradingContext
from repro.trading import LyapunovTrading, RandomTrading, ThresholdTrading


def make_context(t=0, buy=8.0, sell=7.2, mean_emissions=10.0, bound=50.0, cap=100.0, horizon=100):
    return TradingContext(
        t=t,
        horizon=horizon,
        cap=cap,
        buy_price=buy,
        sell_price=sell,
        prev_buy_price=buy,
        prev_sell_price=sell,
        prev_emissions=mean_emissions,
        cumulative_emissions=mean_emissions * max(t, 1),
        holdings=cap,
        mean_slot_emissions=mean_emissions,
        trade_bound=bound,
    )


class TestTradingContext:
    def test_cap_per_slot(self):
        assert make_context(cap=200.0, horizon=50).cap_per_slot == pytest.approx(4.0)

    def test_deficit(self):
        ctx = make_context(t=20, mean_emissions=10.0, cap=100.0)
        assert ctx.deficit == pytest.approx(100.0)

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            make_context(t=100, horizon=100)

    def test_negative_trade_rejected(self):
        with pytest.raises(ValueError):
            TradeDecision(buy=-1.0, sell=0.0)


class TestRandomTrading:
    def test_within_bounds(self):
        policy = RandomTrading(np.random.default_rng(0), intensity=0.5)
        for t in range(50):
            decision = policy.decide(make_context(t=t))
            assert 0.0 <= decision.buy <= 25.0
            assert 0.0 <= decision.sell <= 25.0

    def test_price_independent(self):
        """Same RNG state yields the same trade at any price."""
        a = RandomTrading(np.random.default_rng(1)).decide(make_context(buy=6.0))
        b = RandomTrading(np.random.default_rng(1)).decide(make_context(buy=10.0))
        assert a.buy == b.buy

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            RandomTrading(np.random.default_rng(0), intensity=1.5)


class TestThresholdTrading:
    def test_buys_below_threshold(self):
        policy = ThresholdTrading(buy_threshold=8.4, sell_threshold=7.56)
        decision = policy.decide(make_context(buy=7.0, sell=6.3))
        assert decision.buy > 0
        assert decision.sell == 0.0

    def test_sells_above_threshold(self):
        policy = ThresholdTrading(buy_threshold=8.4, sell_threshold=7.56)
        decision = policy.decide(make_context(buy=10.0, sell=9.0))
        assert decision.buy == 0.0
        assert decision.sell > 0

    def test_idle_between_thresholds(self):
        policy = ThresholdTrading(buy_threshold=7.0, sell_threshold=8.0)
        decision = policy.decide(make_context(buy=7.5, sell=6.75))
        assert decision.buy == 0.0
        assert decision.sell == 0.0

    def test_fixed_quantity_used(self):
        policy = ThresholdTrading(buy_threshold=9.0, sell_threshold=99.0, quantity=3.0)
        decision = policy.decide(make_context(buy=8.0))
        assert decision.buy == pytest.approx(3.0)

    def test_quantity_clipped_to_bound(self):
        policy = ThresholdTrading(buy_threshold=9.0, sell_threshold=99.0, quantity=500.0)
        decision = policy.decide(make_context(buy=8.0, bound=50.0))
        assert decision.buy == pytest.approx(50.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ThresholdTrading(buy_threshold=0.0, sell_threshold=1.0)


class TestLyapunovTrading:
    def test_queue_starts_empty_no_buying(self):
        policy = LyapunovTrading(v=20.0)
        decision = policy.decide(make_context())
        assert decision.buy == 0.0
        # Empty queue is below V * sell price: selling is attractive.
        assert decision.sell > 0.0

    def test_queue_accumulates_uncovered_emissions(self):
        policy = LyapunovTrading(v=20.0)
        ctx = make_context(cap=0.0)
        policy.observe(ctx, TradeDecision(0.0, 0.0), emissions=30.0)
        assert policy.queue == pytest.approx(30.0)

    def test_buys_when_queue_exceeds_price_weight(self):
        policy = LyapunovTrading(v=1.0, trade_fraction=0.5)
        ctx = make_context(cap=0.0, buy=8.0)
        policy.observe(ctx, TradeDecision(0.0, 0.0), emissions=50.0)  # queue 50 > 8
        decision = policy.decide(make_context(t=1, cap=0.0, buy=8.0))
        assert decision.buy == pytest.approx(0.5 * 50.0)
        assert decision.sell == 0.0

    def test_queue_never_negative(self):
        policy = LyapunovTrading(v=20.0)
        ctx = make_context(cap=1000.0, horizon=10)
        policy.observe(ctx, TradeDecision(0.0, 0.0), emissions=0.0)
        assert policy.queue == 0.0

    def test_queue_controls_long_run_violation(self):
        """Over many slots, the queue drives purchases to cover emissions."""
        policy = LyapunovTrading(v=5.0, trade_fraction=0.5)
        rng = np.random.default_rng(2)
        cap, horizon = 100.0, 500
        bought = sold = emitted = 0.0
        for t in range(horizon):
            price = float(rng.uniform(5.9, 10.9))
            ctx = TradingContext(
                t=t, horizon=horizon, cap=cap,
                buy_price=price, sell_price=0.9 * price,
                prev_buy_price=price, prev_sell_price=0.9 * price,
                prev_emissions=20.0, cumulative_emissions=emitted,
                holdings=cap + bought - sold, mean_slot_emissions=20.0,
                trade_bound=60.0,
            )
            decision = policy.decide(ctx)
            emissions = float(rng.uniform(10, 30))
            policy.observe(ctx, decision, emissions)
            bought += decision.buy
            sold += decision.sell
            emitted += emissions
        violation = max(emitted - (cap + bought - sold), 0.0)
        assert violation < 0.1 * emitted

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LyapunovTrading(v=0.0)
        with pytest.raises(ValueError):
            LyapunovTrading(trade_fraction=1.5)
