"""Shared fixtures: RNGs and small reusable scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    """A tiny synthetic scenario config shared across the test session."""
    return ScenarioConfig(
        dataset="synthetic",
        num_edges=3,
        horizon=40,
        num_models=4,
        n_test=500,
        seed=0,
    )


@pytest.fixture(scope="session")
def small_scenario(small_config: ScenarioConfig) -> Scenario:
    """The materialized tiny scenario."""
    return build_scenario(small_config)


@pytest.fixture(scope="session")
def mnist_scenario() -> Scenario:
    """A scenario backed by the trained MNIST-like zoo (small sizes)."""
    config = ScenarioConfig(
        dataset="mnist",
        num_edges=2,
        horizon=20,
        num_models=6,
        n_train=600,
        n_test=800,
        seed=0,
        zoo_seed=77,
    )
    return build_scenario(config)
