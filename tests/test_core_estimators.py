"""Tests for the importance-weighted loss estimator."""

import numpy as np
import pytest

from repro.core.estimators import ImportanceWeightedEstimator


class TestImportanceWeightedEstimator:
    def test_single_update(self):
        estimator = ImportanceWeightedEstimator(3)
        estimate = estimator.update(1, observed_loss=2.0, probabilities=np.array([0.5, 0.25, 0.25]))
        np.testing.assert_allclose(estimate, [0.0, 8.0, 0.0])
        np.testing.assert_allclose(estimator.cumulative, [0.0, 8.0, 0.0])
        assert estimator.observations == 1

    def test_accumulates(self):
        estimator = ImportanceWeightedEstimator(2)
        p = np.array([0.5, 0.5])
        estimator.update(0, 1.0, p)
        estimator.update(0, 1.0, p)
        np.testing.assert_allclose(estimator.cumulative, [4.0, 0.0])

    def test_unbiasedness(self):
        """E[c_hat] must equal the true loss vector under the sampling law."""
        rng = np.random.default_rng(0)
        true_losses = np.array([1.0, 2.0, 4.0])
        p = np.array([0.5, 0.3, 0.2])
        trials = 40000
        total = np.zeros(3)
        for _ in range(trials):
            estimator = ImportanceWeightedEstimator(3)
            arm = rng.choice(3, p=p)
            total += estimator.update(int(arm), float(true_losses[arm]), p)
        np.testing.assert_allclose(total / trials, true_losses, rtol=0.05)

    def test_zero_probability_arm_rejected(self):
        estimator = ImportanceWeightedEstimator(2)
        with pytest.raises(ValueError, match="zero sampling probability"):
            estimator.update(0, 1.0, np.array([0.0, 1.0]))

    def test_invalid_arm_rejected(self):
        estimator = ImportanceWeightedEstimator(2)
        with pytest.raises(ValueError):
            estimator.update(2, 1.0, np.array([0.5, 0.5]))

    def test_nonfinite_loss_rejected(self):
        estimator = ImportanceWeightedEstimator(2)
        with pytest.raises(ValueError):
            estimator.update(0, float("nan"), np.array([0.5, 0.5]))

    def test_wrong_probability_length_rejected(self):
        estimator = ImportanceWeightedEstimator(3)
        with pytest.raises(ValueError):
            estimator.update(0, 1.0, np.array([0.5, 0.5]))

    def test_cumulative_is_a_copy(self):
        estimator = ImportanceWeightedEstimator(2)
        estimator.cumulative[0] = 99.0
        np.testing.assert_allclose(estimator.cumulative, [0.0, 0.0])

    def test_invalid_arm_count(self):
        with pytest.raises(ValueError):
            ImportanceWeightedEstimator(0)
