"""Tests for the carbon market and allowance ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.ledger import AllowanceLedger
from repro.market.market import CarbonMarket, Trade
from repro.traces.carbon_prices import PriceSeries


@pytest.fixture()
def prices():
    buy = np.array([8.0, 10.0, 6.0])
    return PriceSeries(buy=buy, sell=0.9 * buy)


class TestTrade:
    def test_cost(self):
        trade = Trade(slot=0, bought=10.0, sold=4.0, buy_price=8.0, sell_price=7.2)
        assert trade.cost == pytest.approx(10 * 8 - 4 * 7.2)
        assert trade.net_quantity == pytest.approx(6.0)


class TestCarbonMarket:
    def test_prices(self, prices):
        market = CarbonMarket(prices)
        assert market.buy_price(1) == 10.0
        assert market.sell_price(2) == pytest.approx(5.4)

    def test_execute_records_trade(self, prices):
        market = CarbonMarket(prices)
        market.execute(0, 5.0, 1.0)
        market.execute(2, 0.0, 2.0)
        assert len(market.trades) == 2
        assert market.total_cost() == pytest.approx(5 * 8 - 1 * 7.2 - 2 * 5.4)

    def test_out_of_horizon_rejected(self, prices):
        market = CarbonMarket(prices)
        with pytest.raises(IndexError):
            market.buy_price(3)
        with pytest.raises(IndexError):
            market.execute(-1, 1.0, 0.0)

    def test_negative_quantities_rejected(self, prices):
        market = CarbonMarket(prices)
        with pytest.raises(ValueError):
            market.execute(0, -1.0, 0.0)


class TestAllowanceLedger:
    def test_neutral_when_covered(self):
        ledger = AllowanceLedger(initial_cap=100.0)
        ledger.record(emissions=30.0, bought=0.0, sold=0.0)
        snap = ledger.snapshot()
        assert snap.is_neutral
        assert snap.violation == 0.0
        assert snap.holdings == 100.0

    def test_violation_when_uncovered(self):
        ledger = AllowanceLedger(initial_cap=10.0)
        ledger.record(emissions=30.0, bought=5.0, sold=0.0)
        snap = ledger.snapshot()
        assert snap.violation == pytest.approx(15.0)
        assert not snap.is_neutral

    def test_selling_reduces_holdings(self):
        ledger = AllowanceLedger(initial_cap=50.0)
        ledger.record(emissions=0.0, bought=0.0, sold=20.0)
        assert ledger.snapshot().holdings == pytest.approx(30.0)

    def test_violation_series_prefixwise(self):
        ledger = AllowanceLedger(initial_cap=10.0)
        ledger.record(5.0, 0.0, 0.0)   # cum e=5,  holdings=10 -> 0
        ledger.record(10.0, 0.0, 0.0)  # cum e=15, holdings=10 -> 5
        ledger.record(0.0, 10.0, 0.0)  # cum e=15, holdings=20 -> 0
        np.testing.assert_allclose(ledger.violation_series(), [0.0, 5.0, 0.0])

    def test_net_purchase_series(self):
        ledger = AllowanceLedger(initial_cap=0.0)
        ledger.record(0.0, 3.0, 1.0)
        ledger.record(0.0, 0.0, 2.0)
        np.testing.assert_allclose(ledger.net_purchase_series(), [2.0, -2.0])

    def test_negative_values_rejected(self):
        ledger = AllowanceLedger(initial_cap=0.0)
        with pytest.raises(ValueError):
            ledger.record(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            AllowanceLedger(initial_cap=-5.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100), st.floats(0, 100), st.floats(0, 100)
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(0, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, records, cap):
        """Ledger identities hold for arbitrary histories."""
        ledger = AllowanceLedger(initial_cap=cap)
        for e, z, w in records:
            ledger.record(e, z, w)
        snap = ledger.snapshot()
        series = ledger.violation_series()
        assert snap.slots == len(records)
        # Final violation in the series equals the snapshot violation.
        assert series[-1] == pytest.approx(snap.violation, abs=1e-9)
        # Violations are the positive part of an accounting identity.
        assert np.all(series >= 0)
        assert snap.holdings == pytest.approx(
            cap + sum(z for _, z, _ in records) - sum(w for *_, w in records),
            abs=1e-6,
        )
