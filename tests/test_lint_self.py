"""The reprolint self-gate: the whole package must lint clean.

This is the tier-1 enforcement layer of the static-analysis subsystem — any
new global-RNG call, float-equality comparison, ``__all__`` drift, or
unguarded hot-path numeric introduced anywhere in ``src/repro`` fails this
test immediately, keeping the tree green by construction.
"""

from pathlib import Path

import repro
from repro.lint import (
    DEFAULT_PATH_RULES,
    DEFAULT_PATH_SEVERITY,
    lint_paths,
    registered_codes,
)

PACKAGE_DIR = Path(repro.__file__).parent
EXAMPLES_DIR = PACKAGE_DIR.parent.parent / "examples"
BENCHMARKS_DIR = PACKAGE_DIR.parent.parent / "benchmarks"


def test_package_lints_clean():
    findings = lint_paths([PACKAGE_DIR])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"reprolint findings in src/repro:\n{rendered}"


def test_examples_have_no_errors_under_default_severity():
    # Examples are user-facing scripts: their prints (RPL010) are downgraded
    # to warnings by the default severity configuration — still reported,
    # never fatal.  Anything at error severity is a real defect.
    findings = lint_paths(
        [EXAMPLES_DIR],
        path_rules=DEFAULT_PATH_RULES,
        path_severity=DEFAULT_PATH_SEVERITY,
    )
    errors = [f for f in findings if f.is_error]
    rendered = "\n".join(f.render() for f in errors)
    assert errors == [], f"reprolint errors in examples/:\n{rendered}"
    assert findings, "examples print, so RPL010 warnings must surface"
    assert {(f.code, f.severity) for f in findings} == {("RPL010", "warning")}


def test_examples_downgrade_is_print_only():
    # The downgrade must stay narrow: without the severity configuration the
    # examples may only trip the print rule — any other finding is a real
    # defect, and everything is back at error severity.
    findings = lint_paths([EXAMPLES_DIR], path_rules={}, path_severity={})
    assert findings, "examples print, so the raw run must find RPL010"
    assert {f.code for f in findings} == {"RPL010"}
    assert all(f.is_error for f in findings)


def test_benchmarks_lint_clean_under_path_rules():
    # Benchmarks are user-facing measurement harnesses: their prints (RPL010)
    # are waived by the default per-path configuration, nothing else is.
    findings = lint_paths([BENCHMARKS_DIR], path_rules=DEFAULT_PATH_RULES)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"reprolint findings in benchmarks/:\n{rendered}"


def test_benchmarks_waiver_is_print_only():
    # Without the waivers, benchmarks trip exactly the two codes the default
    # configuration forgives there: harness prints (RPL010) and ad-hoc
    # generators for throwaway timing data (RPL015) — nothing else.
    findings = lint_paths([BENCHMARKS_DIR], path_rules={})
    assert findings, "benchmarks print, so the un-waived run must find RPL010"
    assert {f.code for f in findings} == {"RPL010", "RPL015"}


def test_tests_lint_clean_under_path_rules():
    # The test suite itself is gated: under the default per-path waivers
    # (RPL003 exact assertions, RPL015 throwaway generators) every other
    # rule — including the project-level families — must hold over tests/.
    tests_dir = PACKAGE_DIR.parent.parent / "tests"
    findings = lint_paths([tests_dir], path_rules=DEFAULT_PATH_RULES)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"reprolint findings in tests/:\n{rendered}"


def test_at_least_eight_rules_registered():
    codes = registered_codes()
    assert len(codes) >= 8
    assert codes == sorted(set(codes)), "rule codes must be unique and sorted"
    assert all(code.startswith("RPL") for code in codes)


def test_required_rule_codes_present():
    required = {f"RPL{i:03d}" for i in range(1, 18)}
    assert required <= set(registered_codes())


def test_ingress_tier_is_gated_and_lints_clean():
    # The request-level ingress tier is new library surface: pin it into the
    # self-gate explicitly so a walker regression (or a future package move)
    # cannot silently drop it from test_package_lints_clean's coverage.
    from repro.lint import iter_python_files

    ingress_dir = PACKAGE_DIR / "ingress"
    files = list(iter_python_files([ingress_dir]))
    assert {f.name for f in files} >= {
        "adapter.py", "config.py", "generator.py", "request.py",
        "router.py", "stats.py",
    }
    findings = lint_paths([ingress_dir], path_rules=DEFAULT_PATH_RULES)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"reprolint findings in src/repro/ingress:\n{rendered}"


def test_package_files_actually_scanned():
    # Guard against the walker silently scanning nothing (e.g. a path typo
    # would make test_package_lints_clean vacuously green).
    from repro.lint import iter_python_files

    files = list(iter_python_files([PACKAGE_DIR]))
    assert len(files) > 50
    assert any(f.name == "tsallis.py" for f in files)
