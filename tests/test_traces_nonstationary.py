"""Tests for nonstationary traces: price regime shifts and weekend profiles."""

import numpy as np
import pytest

from repro.traces.carbon_prices import CarbonPriceModel, RegimeShiftPriceModel
from repro.traces.workload import SLOTS_PER_DAY, WorkloadModel


class TestRegimeShiftPrices:
    def test_band_jumps_at_shift(self):
        model = RegimeShiftPriceModel(
            before=CarbonPriceModel(low=5.9, high=10.9, sigma=0.1),
            after=CarbonPriceModel(low=12.0, high=16.0, sigma=0.1),
            shift_at=0.5,
        )
        series = model.generate(200, np.random.default_rng(0))
        assert series.buy[:100].max() <= 10.9 + 1e-9
        assert series.buy[100:].min() >= 12.0 - 1e-9

    def test_mean_rises_with_default_regimes(self):
        series = RegimeShiftPriceModel().generate(400, np.random.default_rng(1))
        assert series.buy[200:].mean() > series.buy[:200].mean()

    def test_sell_ratio_consistent(self):
        series = RegimeShiftPriceModel().generate(100, np.random.default_rng(2))
        np.testing.assert_allclose(series.sell, 0.9 * series.buy)

    def test_mismatched_sell_ratio_rejected(self):
        with pytest.raises(ValueError, match="sell ratio"):
            RegimeShiftPriceModel(
                before=CarbonPriceModel(sell_ratio=0.9),
                after=CarbonPriceModel(sell_ratio=0.8),
            )

    def test_invalid_shift_rejected(self):
        with pytest.raises(ValueError):
            RegimeShiftPriceModel(shift_at=0.0)

    def test_horizon_respected(self):
        series = RegimeShiftPriceModel(shift_at=0.3).generate(77, np.random.default_rng(3))
        assert series.horizon == 77

    def test_forecaster_adapts_across_shift(self):
        """The AR(1) forecaster must recover after the regime change."""
        from repro.forecast.price_models import AR1Forecaster

        series = RegimeShiftPriceModel().generate(400, np.random.default_rng(4))
        forecaster = AR1Forecaster(forgetting=0.95)
        errors = []
        for t in range(series.horizon - 1):
            forecaster.update(float(series.buy[t]))
            errors.append(abs(forecaster.predict(1) - float(series.buy[t + 1])))
        shortly_after = float(np.mean(errors[201:220]))
        settled = float(np.mean(errors[300:]))
        assert settled <= shortly_after + 0.3


class TestWeekendWorkload:
    def test_weekend_profile_single_peak(self):
        model = WorkloadModel(noise_sigma=0.0)
        weekday = model.generate(1, SLOTS_PER_DAY, np.random.default_rng(0), "W")[0]
        weekend = model.generate(1, SLOTS_PER_DAY, np.random.default_rng(0), "E")[0]
        assert not np.allclose(weekday, weekend)
        # Weekend peak is flatter than the weekday evening peak.
        assert weekend.max() < weekday.max()

    def test_week_pattern_cycles(self):
        model = WorkloadModel(noise_sigma=0.0)
        horizon = 7 * SLOTS_PER_DAY
        week = model.generate(1, horizon, np.random.default_rng(1), "WWWWWEE")[0]
        monday = week[:SLOTS_PER_DAY]
        saturday = week[5 * SLOTS_PER_DAY : 6 * SLOTS_PER_DAY]
        sunday = week[6 * SLOTS_PER_DAY :]
        assert not np.allclose(monday, saturday)
        np.testing.assert_allclose(saturday, sunday)  # both weekend, no noise

    def test_mean_volume_preserved(self):
        model = WorkloadModel(noise_sigma=0.0, zipf_exponent=0.0)
        weekday = model.generate(1, SLOTS_PER_DAY, np.random.default_rng(2), "W")
        weekend = model.generate(1, SLOTS_PER_DAY, np.random.default_rng(2), "E")
        assert weekday.mean() == pytest.approx(weekend.mean(), rel=1e-9)

    def test_invalid_day_type_rejected(self):
        with pytest.raises(ValueError, match="day_types"):
            WorkloadModel().generate(1, 10, np.random.default_rng(0), "WX")

    def test_default_is_all_weekdays(self):
        model = WorkloadModel(noise_sigma=0.0)
        default = model.generate(1, 100, np.random.default_rng(3))
        weekdays = model.generate(1, 100, np.random.default_rng(3), "W")
        np.testing.assert_allclose(default, weekdays)
