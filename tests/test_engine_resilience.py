"""Resilience tests for the sweep engine: crashes, hangs, and resume.

The env hooks ``REPRO_ENGINE_TEST_CRASH`` / ``REPRO_ENGINE_TEST_HANG``
make a pool worker die (``os._exit``) or stall on one specific cell,
exactly once — a marker file arms each hook, and the hooks only fire
inside pool workers, so retries and in-process fallbacks always succeed.
That lets these tests prove the engine's strongest recovery contract:
a sweep whose workers crash or hang still completes, and its results are
*bit-identical* to a clean serial sweep.

Checkpoint tests prove the resume contract the same way: after a
simulated kill, a fresh engine executes only the cells missing from the
journal — zero recomputation — and still reproduces the serial bytes.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.engine import SweepCell, SweepEngine
from repro.sim.config import ScenarioConfig
from repro.sim.io import canonical_result_json
from repro.sim.scenario import build_scenario

SEEDS = [0, 1, 2, 3]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        ScenarioConfig(
            dataset="synthetic", num_edges=2, horizon=16, num_models=3,
            n_test=200, seed=3,
        )
    )


@pytest.fixture(scope="module")
def serial_bytes(scenario):
    results = SweepEngine().run_many(scenario, "UCB", "LY", SEEDS, label="UCB-LY")
    return [canonical_result_json(r) for r in results]


def canon(results):
    return [canonical_result_json(r) for r in results]


class TestCrashRecovery:
    def test_crashed_worker_retries_bit_identically(
        self, scenario, serial_bytes, tmp_path, monkeypatch
    ):
        marker = tmp_path / "crash.marker"
        monkeypatch.setenv("REPRO_ENGINE_TEST_CRASH", f"2:{marker}")
        engine = SweepEngine(workers=2)
        results = engine.run_many(scenario, "UCB", "LY", SEEDS, label="UCB-LY")
        assert marker.exists(), "the crash hook must actually have fired"
        assert canon(results) == serial_bytes
        assert engine.stats.pool_failures >= 1
        assert engine.stats.retries >= 1
        assert engine.stats.fallback_cells == 0

    def test_repeated_failures_fall_back_in_process(
        self, scenario, serial_bytes, tmp_path, monkeypatch
    ):
        # Arm a fresh crash marker before every pool round: every pool the
        # engine builds dies, so after pool_failure_limit rounds the whole
        # remainder must complete in-process — still bit-identically.
        markers = iter(tmp_path / f"crash{i}.marker" for i in range(10))

        original = SweepEngine._pool_round

        def rearm_and_run(self, *args, **kwargs):
            monkeypatch.setenv("REPRO_ENGINE_TEST_CRASH", f"2:{next(markers)}")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SweepEngine, "_pool_round", rearm_and_run)
        engine = SweepEngine(workers=2, max_retries=1, pool_failure_limit=2)
        results = engine.run_many(scenario, "UCB", "LY", SEEDS, label="UCB-LY")
        assert canon(results) == serial_bytes
        assert engine.stats.pool_failures >= 1
        assert engine.stats.fallback_cells >= 1


class TestHangRecovery:
    def test_stalled_pool_times_out_and_recovers(
        self, scenario, serial_bytes, tmp_path, monkeypatch
    ):
        marker = tmp_path / "hang.marker"
        monkeypatch.setenv("REPRO_ENGINE_TEST_HANG", f"1:{marker}")
        engine = SweepEngine(workers=2, cell_timeout=2.0)
        results = engine.run_many(scenario, "UCB", "LY", SEEDS, label="UCB-LY")
        assert marker.exists(), "the hang hook must actually have fired"
        assert canon(results) == serial_bytes
        assert engine.stats.pool_failures >= 1


class TestCheckpointResume:
    def cells(self):
        return [SweepCell("UCB", "LY", seed, label="UCB-LY") for seed in SEEDS]

    def test_resumed_run_executes_only_missing_cells(
        self, scenario, serial_bytes, tmp_path
    ):
        journal = tmp_path / "sweep.jsonl"
        # First run completes only half the sweep ("killed" after 2 cells).
        first = SweepEngine(checkpoint=SweepCheckpoint(journal))
        first.run_cells(scenario, self.cells()[:2])
        assert first.stats.executed == 2

        resumed = SweepEngine(checkpoint=SweepCheckpoint(journal))
        results = resumed.run_cells(scenario, self.cells())
        assert canon(results) == serial_bytes
        assert resumed.stats.checkpoint_hits == 2
        assert resumed.stats.executed == 2, "journaled cells must not recompute"

        # A third run replays everything: zero cells executed.
        replay = SweepEngine(checkpoint=SweepCheckpoint(journal))
        results = replay.run_cells(scenario, self.cells())
        assert canon(results) == serial_bytes
        assert replay.stats.executed == 0
        assert replay.stats.checkpoint_hits == len(SEEDS)

    def test_truncated_journal_line_is_skipped_not_fatal(self, scenario, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = SweepEngine(checkpoint=SweepCheckpoint(journal))
        first.run_cells(scenario, self.cells()[:2])
        # Simulate a kill mid-append: chop the last line in half.
        raw = journal.read_text(encoding="utf-8")
        journal.write_text(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1],
                           encoding="utf-8")
        resumed = SweepCheckpoint(journal)
        assert resumed.corrupt_lines == 1
        assert len(resumed) == 1
        engine = SweepEngine(checkpoint=resumed)
        engine.run_cells(scenario, self.cells()[:2])
        assert engine.stats.executed == 1, "only the truncated cell re-executes"

    def test_checkpoint_and_cache_compose(self, scenario, serial_bytes, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        cache = ResultCache(tmp_path / "cache")
        warm = SweepEngine(cache=cache, checkpoint=SweepCheckpoint(journal))
        assert canon(warm.run_cells(scenario, self.cells())) == serial_bytes
        # Checkpoint wins over cache on resume; either way nothing executes.
        resumed = SweepEngine(
            cache=ResultCache(tmp_path / "cache"),
            checkpoint=SweepCheckpoint(journal),
        )
        assert canon(resumed.run_cells(scenario, self.cells())) == serial_bytes
        assert resumed.stats.executed == 0

    def test_cache_hits_are_journaled_for_later_resume(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(cache=cache).run_cells(scenario, self.cells())
        journal = tmp_path / "sweep.jsonl"
        bridged = SweepEngine(
            cache=ResultCache(tmp_path / "cache"),
            checkpoint=SweepCheckpoint(journal),
        )
        bridged.run_cells(scenario, self.cells())
        assert bridged.stats.cache_hits == len(SEEDS)
        # The journal alone can now resume the sweep with zero execution.
        alone = SweepEngine(checkpoint=SweepCheckpoint(journal))
        alone.run_cells(scenario, self.cells())
        assert alone.stats.executed == 0
