"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_nonnegative(value, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckFinite:
    def test_passes_through(self):
        out = check_finite([1, 2, 3], "x")
        assert out.dtype == float
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite([np.inf], "x")


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        p = check_probability_vector([0.2, 0.3, 0.5], "p")
        assert p.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector([0.2, 0.2], "p")

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_renormalizes_tiny_drift(self):
        p = check_probability_vector([0.5 + 1e-9, 0.5], "p")
        assert p.sum() == pytest.approx(1.0, abs=1e-12)
