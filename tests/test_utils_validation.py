"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
    check_simplex,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_nonnegative(value, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckFinite:
    def test_passes_through(self):
        out = check_finite([1, 2, 3], "x")
        assert out.dtype == float
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite([np.inf], "x")


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        p = check_probability_vector([0.2, 0.3, 0.5], "p")
        assert p.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector([0.2, 0.2], "p")

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_renormalizes_tiny_drift(self):
        p = check_probability_vector([0.5 + 1e-9, 0.5], "p")
        assert p.sum() == pytest.approx(1.0, abs=1e-12)


class TestCheckSimplex:
    """The runtime postcondition contract used by Algorithm 1's sampler."""

    def test_returns_input_unchanged(self):
        p = np.array([0.25, 0.25, 0.5])
        out = check_simplex(p, "p")
        np.testing.assert_array_equal(out, p)

    def test_accepts_machine_precision_drift(self):
        p = np.array([1.0 / 3.0] * 3)
        check_simplex(p, "p")  # sums to 1 only up to float rounding

    def test_rejects_negative_mass(self):
        with pytest.raises(ArithmeticError, match="negative"):
            check_simplex(np.array([-0.1, 1.1]), "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ArithmeticError, match="sum"):
            check_simplex(np.array([0.4, 0.4]), "p")

    def test_rejects_nan(self):
        with pytest.raises(ArithmeticError, match="non-finite"):
            check_simplex(np.array([np.nan, 1.0]), "p")

    def test_rejects_empty_and_matrix(self):
        with pytest.raises(ArithmeticError):
            check_simplex(np.array([]), "p")
        with pytest.raises(ArithmeticError):
            check_simplex(np.array([[0.5, 0.5]]), "p")

    def test_does_not_renormalize(self):
        # Contrast with check_probability_vector: drift within tolerance is
        # passed through, not repaired.
        p = np.array([0.5 + 1e-12, 0.5])
        out = check_simplex(p, "p")
        assert out[0] == p[0]
