"""Tests for the experiment table renderer."""

import pytest

from repro.experiments.reporting import format_table, format_value


class TestFormatValue:
    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(42) == "42"

    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_scientific_for_tiny(self):
        assert "e" in format_value(1e-9)

    def test_scientific_for_huge(self):
        assert "e" in format_value(1e9)

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_none(self):
        assert format_value(None) == "-"

    def test_zero(self):
        assert format_value(0.0) == "0.000"


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 22.5]], title="Title"
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1]
        assert "22.500" in lines[-1]

    def test_alignment(self):
        table = format_table(["col"], [["x"], ["longer"]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator matches rows

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table
