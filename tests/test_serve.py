"""Tests for repro.serve: the async streaming edge-fleet runtime.

The headline contracts:

* **Parity** — a virtual-clock serve run is bit-identical to
  ``Simulator.run``, locked against the same golden digests, for every
  stream adapter that reuses the simulator's RNG streams.
* **Resilience** — a run killed mid-horizon resumes from its snapshot and
  completes to the *same* digest as an uninterrupted run.
* **Backpressure accounting** — under wall-clock load every event is
  accounted for: ``events_in == served + shed + dropped_offline``, and
  queue depth stays bounded.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.obs import JsonlSink, Tracer, summarize_trace
from repro.serve import (
    BoundedWorkQueue,
    ServeConfig,
    ServeRuntime,
    ShardRuntime,
    StatusServer,
    VirtualClock,
    WallClock,
    WorkItem,
    arrival_counts_from_trace,
    load_snapshot,
    make_runtime,
    save_snapshot,
    serve_run,
)
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from tests.test_golden_digests import GOLDEN_DIGESTS, SCENARIO_CONFIGS


def serve_config(scenario_name="A", seed=0, **overrides):
    return ServeConfig(
        scenario=SCENARIO_CONFIGS[scenario_name],
        seed=seed,
        label="Ours-Ours",
        **overrides,
    )


class TestServeConfig:
    def test_defaults_are_virtual_and_blocking(self):
        config = ServeConfig()
        assert config.virtual_clock and config.backpressure == "block"
        assert config.adapter == "poisson"

    def test_effective_label(self):
        assert ServeConfig().effective_label == "Ours-Ours"
        assert ServeConfig(label="x").effective_label == "x"

    def test_virtual_clock_rejects_shedding(self):
        # Shedding breaks lockstep parity by construction, so the config
        # refuses the combination rather than silently losing determinism.
        with pytest.raises(ValueError, match="shed"):
            ServeConfig(virtual_clock=True, backpressure="shed")

    def test_replay_adapter_requires_log(self):
        with pytest.raises(ValueError, match="replay"):
            ServeConfig(adapter="replay")

    def test_snapshots_require_path(self):
        with pytest.raises(ValueError, match="snapshot_path"):
            ServeConfig(snapshot_every=8)

    def test_unknown_adapter_and_backpressure_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(adapter="kafka")
        with pytest.raises(ValueError):
            ServeConfig(virtual_clock=False, backpressure="explode")

    def test_dict_round_trip_with_nested_scenario(self):
        config = serve_config(
            "B", seed=3, snapshot_every=8, snapshot_path="s.pkl"
        )
        clone = ServeConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            ServeConfig.from_dict({"bogus_knob": 1})

    def test_from_file(self, tmp_path):
        path = tmp_path / "serve.json"
        config = serve_config("A", seed=1)
        path.write_text(json.dumps(config.to_dict()), encoding="utf-8")
        assert ServeConfig.from_file(path) == config

    def test_with_overrides(self):
        config = ServeConfig().with_overrides(seed=9, queue_capacity=32)
        assert config.seed == 9 and config.queue_capacity == 32


class TestClocksAndQueues:
    def test_release_is_monotone_and_wakes_waiters(self):
        async def scenario():
            clock = VirtualClock()
            order = []

            async def waiter(t):
                await clock.wait_for_slot(t)
                order.append(t)

            tasks = [asyncio.create_task(waiter(t)) for t in (2, 0, 1)]
            await asyncio.sleep(0)
            await clock.release(1)
            await clock.release(0)  # lower target is a no-op
            await asyncio.sleep(0)
            assert clock.released == 1
            assert sorted(order) == [0, 1]
            await clock.release(2)
            await asyncio.gather(*tasks)
            return order

        order = asyncio.run(scenario())
        assert sorted(order) == [0, 1, 2]

    def test_wall_clock_paces_on_loop_time(self):
        async def scenario():
            clock = WallClock(0.01)
            await clock.release(5)
            loop = asyncio.get_running_loop()
            start = loop.time()
            await clock.pace(0)
            await clock.pace(3)
            return loop.time() - start

        assert asyncio.run(scenario()) >= 0.025

    def test_queue_blocks_until_room_and_preserves_fifo(self):
        async def scenario():
            queue = BoundedWorkQueue(10)
            await queue.put(WorkItem(t=0, count=6))
            blocked = asyncio.create_task(queue.put(WorkItem(t=1, count=6)))
            await asyncio.sleep(0)
            assert not blocked.done()
            first = await queue.get()
            await blocked
            second = await queue.get()
            return first.t, second.t, queue.depth_items

        assert asyncio.run(scenario()) == (0, 1, 0)

    def test_nonblocking_put_rejects_and_counts(self):
        async def scenario():
            queue = BoundedWorkQueue(10)
            await queue.put(WorkItem(t=0, count=6))
            admitted = await queue.put(WorkItem(t=1, count=6), block=False)
            assert not admitted and queue.stats.rejected == 1
            # shed markers weigh nothing and always fit
            assert await queue.put(
                WorkItem(t=1, count=6, shed=True), block=False
            )
            return queue.depth_events

        assert asyncio.run(scenario()) == 6

    def test_oversized_burst_admitted_only_when_empty(self):
        async def scenario():
            queue = BoundedWorkQueue(4)
            assert await queue.put(WorkItem(t=0, count=50), block=False)
            assert not await queue.put(WorkItem(t=1, count=1), block=False)
            await queue.get()
            assert await queue.put(WorkItem(t=1, count=1), block=False)

        asyncio.run(scenario())

    def test_queue_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedWorkQueue(0)


class TestVirtualClockParity:
    @pytest.mark.parametrize("scenario_name,seed", sorted(GOLDEN_DIGESTS))
    def test_serve_matches_golden_digests(self, scenario_name, seed):
        result = serve_run(serve_config(scenario_name, seed))
        assert result_digest(result) == GOLDEN_DIGESTS[(scenario_name, seed)]

    def test_dataset_adapter_preserves_parity(self):
        # The adapter pre-draws pool indices from the kernel's own stream;
        # consumption order per edge is identical, so digests cannot move.
        result = serve_run(serve_config("A", 0, adapter="dataset"))
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_replay_adapter_preserves_parity(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        tracer = Tracer([JsonlSink(log)])
        serve_run(serve_config("A", 0), tracer=tracer)
        tracer.close()
        result = serve_run(
            serve_config("A", 0, adapter="replay", replay_log=str(log))
        )
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_tracing_does_not_change_serve_results(self, tmp_path):
        tracer = Tracer([JsonlSink(tmp_path / "t.jsonl")])
        traced = serve_run(serve_config("B", 1), tracer=tracer)
        tracer.close()
        assert result_digest(traced) == GOLDEN_DIGESTS[("B", 1)]

    def test_label_delay_matches_simulator(self):
        from repro.sim.scenario import build_scenario
        from repro.sim.simulator import Simulator

        scenario = build_scenario(SCENARIO_CONFIGS["A"])
        sim = Simulator.from_names(
            scenario, "Ours", "Ours", seed=0, label="Ours-Ours", label_delay=3
        ).run()
        served = serve_run(serve_config("A", 0, label_delay=3))
        assert result_digest(served) == result_digest(sim)
        # and delayed feedback genuinely changes the trajectory
        assert result_digest(served) != GOLDEN_DIGESTS[("A", 0)]


class TestShardedParity:
    """Cross-process parity: N worker processes, same bits as the simulator.

    Workers rebuild bit-identical kernels from the shared config (name-keyed
    RNG streams), step only their own edges, and the parent folds outcomes
    in global edge order — so the worker count must never show up in the
    digest.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("scenario_name,seed", sorted(GOLDEN_DIGESTS))
    def test_sharded_serve_matches_golden_digests(
        self, scenario_name, seed, workers
    ):
        config = serve_config(scenario_name, seed, num_workers=workers)
        result = ShardRuntime(config, heartbeat_interval=0.05).run()
        assert result_digest(result) == GOLDEN_DIGESTS[(scenario_name, seed)]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_dataset_adapter_preserves_sharded_parity(self, workers):
        config = serve_config("A", 0, adapter="dataset", num_workers=workers)
        result = ShardRuntime(config, heartbeat_interval=0.05).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_replay_adapter_preserves_sharded_parity(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        tracer = Tracer([JsonlSink(log)])
        serve_run(serve_config("A", 0), tracer=tracer)
        tracer.close()
        config = serve_config(
            "A", 0, adapter="replay", replay_log=str(log), num_workers=2
        )
        result = ShardRuntime(config, heartbeat_interval=0.05).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_make_runtime_dispatches_on_worker_count(self):
        assert isinstance(make_runtime(serve_config("A", 0)), ServeRuntime)
        assert isinstance(
            make_runtime(serve_config("A", 0, num_workers=2)), ShardRuntime
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_noop_reconfig_plan_matches_golden_digests(self, workers):
        # A plan whose only op re-asserts the current worker count moves no
        # edges and rescales nothing: the reconfigured run must stay
        # bit-identical to the pinned goldens at every worker count.
        from repro.serve import Rebalance, ReconfigPlan

        config = serve_config("A", 0, num_workers=workers)
        plan = ReconfigPlan((Rebalance(at=8, num_workers=workers),))
        result = ShardRuntime(
            config, reconfig=plan, heartbeat_interval=0.05
        ).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]


class TestSnapshotRestore:
    def test_killed_run_resumes_to_identical_digest(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = serve_config(
            "A", 0, snapshot_every=8, snapshot_path=str(snap)
        )
        runtime = ServeRuntime(config)
        partial = runtime.run(max_slots=19)  # dies mid-horizon (slot 18)
        assert partial is None
        assert runtime.completed_slot == 18
        assert snap.exists()

        resumed = ServeRuntime.from_snapshot(snap)
        assert resumed.completed_slot + 1 == 16  # last boundary before kill
        result = resumed.run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_dataset_adapter_shares_rng_through_snapshot(self, tmp_path):
        # The adapter and kernel share one generator; the single-pickle
        # snapshot must preserve that identity or streams would diverge.
        snap = tmp_path / "state.pkl"
        config = serve_config(
            "A",
            0,
            adapter="dataset",
            snapshot_every=8,
            snapshot_path=str(snap),
        )
        ServeRuntime(config).run(max_slots=8)
        resumed = ServeRuntime.from_snapshot(snap)
        for adapter, kernel in zip(resumed.adapters, resumed.edge_kernels):
            assert adapter.data_rng is kernel.data_rng
        assert result_digest(resumed.run()) == GOLDEN_DIGESTS[("A", 0)]

    def test_multiple_kill_resume_cycles(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = serve_config(
            "A", 1, snapshot_every=8, snapshot_path=str(snap)
        )
        ServeRuntime(config).run(max_slots=8)
        ServeRuntime.from_snapshot(snap).run(max_slots=16)
        result = ServeRuntime.from_snapshot(snap).run()
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 1)]

    def test_partial_run_refuses_results(self, tmp_path):
        config = serve_config(
            "A", 0, snapshot_every=8, snapshot_path=str(tmp_path / "s.pkl")
        )
        runtime = ServeRuntime(config)
        runtime.run(max_slots=8)
        with pytest.raises(RuntimeError, match="resume"):
            runtime.result()

    def test_label_mismatch_rejected(self, tmp_path):
        snap = tmp_path / "state.pkl"
        config = serve_config(
            "A", 0, snapshot_every=8, snapshot_path=str(snap)
        )
        ServeRuntime(config).run(max_slots=8)
        state = load_snapshot(snap)
        state["label"] = "someone-else"
        save_snapshot(snap, state)
        with pytest.raises(ValueError, match="someone-else"):
            ServeRuntime.from_snapshot(snap)

    def test_snapshot_version_checked(self, tmp_path):
        snap = tmp_path / "state.pkl"
        save_snapshot(snap, {"label": "x"})
        raw = load_snapshot(snap)
        raw["version"] = 999
        import pickle

        snap.write_bytes(pickle.dumps(raw))
        with pytest.raises(ValueError, match="version"):
            load_snapshot(snap)

    def test_snapshot_event_and_counter_emitted(self, tmp_path):
        tracer = Tracer()
        config = serve_config(
            "A", 0, snapshot_every=8, snapshot_path=str(tmp_path / "s.pkl")
        )
        ServeRuntime(config, tracer=tracer).run()
        counts = tracer.event_counts()
        # horizon 40, every 8 slots, no snapshot at the final boundary
        assert counts["snapshot"] == 4
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/snapshots"] == 4


class TestBackpressureLoad:
    def test_load_smoke_10k_events_8_edges_all_accounted(self, tmp_path):
        log = tmp_path / "load.jsonl"
        scenario = ScenarioConfig(
            dataset="synthetic",
            num_edges=8,
            horizon=100,
            num_models=4,
            n_test=400,
            seed=3,
        )
        config = ServeConfig(
            scenario=scenario,
            seed=3,
            virtual_clock=False,
            slot_duration=0.0,
            backpressure="shed",
            queue_capacity=64,
            pipeline_depth=8,
        )
        tracer = Tracer([JsonlSink(log)])
        runtime = ServeRuntime(config, tracer=tracer)
        result = runtime.run()
        tracer.close()

        counters = tracer.metrics_snapshot()["counters"]
        events_in = counters["serve/events_in"]
        assert events_in >= 10_000
        accounted = (
            counters.get("serve/events_served", 0)
            + counters.get("serve/events_shed", 0)
            + counters.get("serve/events_dropped_offline", 0)
        )
        assert events_in == accounted, "events leaked from the accounting"
        assert counters["serve/slots_completed"] == scenario.horizon
        assert counters["serve/events_served"] == int(result.arrivals.sum())

        # Queue depth stays bounded: above capacity only via the documented
        # single-oversized-burst admission on an empty queue.
        max_burst = max(
            e.count for e in _read_arrivals(log)
        )
        for queue in runtime.queues:
            assert queue.stats.peak_events <= max(
                config.queue_capacity, max_burst
            )
            assert queue.depth_items == 0

        # The trace's own accounting agrees with the live counters.
        summary = summarize_trace(log)
        traced_in = sum(s.arrivals for s in summary.edges.values())
        traced_shed = sum(s.shed for s in summary.edges.values())
        assert traced_in == events_in
        assert traced_shed == counters.get("serve/events_shed", 0)

    def test_blocking_backpressure_sheds_nothing(self):
        scenario = ScenarioConfig(
            dataset="synthetic", num_edges=4, horizon=40, seed=2
        )
        config = ServeConfig(
            scenario=scenario,
            seed=2,
            virtual_clock=False,
            queue_capacity=8,
            pipeline_depth=4,
        )
        tracer = Tracer()
        serve_run(config, tracer=tracer)
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["serve/events_in"] == counters["serve/events_served"]
        assert counters.get("serve/events_shed", 0) == 0


def _read_arrivals(path):
    from repro.obs import read_events

    return [e for e in read_events(path) if e.type == "arrival"]


class TestWorkerFailures:
    def test_adapter_exception_propagates(self):
        runtime = ServeRuntime(serve_config("A", 0))

        class BrokenAdapter:
            edge = 0

            def next_item(self, t):
                raise RuntimeError("stream died")

        runtime.adapters[0] = BrokenAdapter()
        with pytest.raises(RuntimeError, match="stream died"):
            runtime.run()

    def test_max_slots_validated(self):
        runtime = ServeRuntime(serve_config("A", 0))
        with pytest.raises(ValueError, match="max_slots"):
            runtime.run(max_slots=0)


class TestStatusEndpoint:
    @staticmethod
    async def _get(port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body) if body else None

    def test_routes_and_errors(self):
        async def scenario():
            server = StatusServer({"/healthz": lambda: {"ok": True}})
            await server.start()
            try:
                ok = await self._get(server.port, "/healthz")
                missing = await self._get(server.port, "/nope")
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return ok, missing, int(raw.split()[1]), server.requests_served
            finally:
                await server.stop()

        ok, missing, post_status, served = asyncio.run(scenario())
        assert ok == (200, {"ok": True})
        assert missing[0] == 404 and "/healthz" in missing[1]["routes"]
        assert post_status == 405
        assert served == 3

    def test_healthz_and_metrics_during_a_run(self):
        async def scenario():
            scenario_cfg = ScenarioConfig(
                dataset="synthetic", num_edges=2, horizon=25, seed=4
            )
            config = ServeConfig(
                scenario=scenario_cfg,
                seed=4,
                virtual_clock=False,
                slot_duration=0.02,
                health_port=0,
            )
            runtime = ServeRuntime(config, tracer=Tracer())
            task = asyncio.create_task(runtime.run_async())
            # Event-driven wait: run_async sets server_ready once the
            # status server is bound, so no timing-sensitive poll loop.
            await asyncio.wait_for(runtime.server_ready.wait(), timeout=30)
            assert runtime.status_server is not None
            health = await self._get(runtime.status_server.port, "/healthz")
            metrics = await self._get(runtime.status_server.port, "/metrics")
            result = await task
            return health, metrics, result

        health, metrics, result = asyncio.run(scenario())
        assert health[0] == 200
        assert health[1]["status"] in ("serving", "done")
        assert health[1]["horizon"] == 25
        assert len(health[1]["queues"]) == 2
        assert metrics[0] == 200
        assert "counters" in metrics[1] and "events" in metrics[1]
        assert result is not None and result.horizon == 25


class TestServeCli:
    def test_serve_command_prints_summary_and_counters(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "serve.jsonl"
        code = main([
            "serve",
            "--edges", "2",
            "--horizon", "16",
            "--seed", "5",
            "--trace-output", str(log),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Served: Ours-Ours" in out
        assert "events_in" in out
        assert log.exists()

    def test_serve_snapshot_resume_cycle(self, tmp_path, capsys):
        from repro.cli import main

        snap = tmp_path / "state.pkl"
        code = main([
            "serve",
            "--edges", "2",
            "--horizon", "16",
            "--seed", "5",
            "--snapshot-every", "4",
            "--snapshot-path", str(snap),
            "--max-slots", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0 and "resume with --resume" in out
        code = main(["serve", "--resume", str(snap)])
        out = capsys.readouterr().out
        assert code == 0 and "resuming Ours-Ours" in out
        assert "Served: Ours-Ours" in out

    def test_serve_config_file_with_override(self, tmp_path, capsys):
        from repro.cli import main

        config = ServeConfig(
            scenario=ScenarioConfig(
                dataset="synthetic", num_edges=2, horizon=12, seed=1
            ),
            seed=1,
        )
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(config.to_dict()), encoding="utf-8")
        code = main(["serve", "--config", str(path), "--label", "renamed"])
        out = capsys.readouterr().out
        assert code == 0 and "Served: renamed" in out

    def test_trace_replay_renders_tables(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "serve.jsonl"
        main([
            "serve",
            "--edges", "2",
            "--horizon", "12",
            "--trace-output", str(log),
        ])
        capsys.readouterr()
        code = main(["trace", "--replay", str(log)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace replay" in out
        assert "Per-edge aggregates" in out
        assert "arrival" in out
