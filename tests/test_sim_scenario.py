"""Tests for scenario configuration and building."""

import numpy as np
import pytest

from repro.sim.config import CostWeights, ScenarioConfig
from repro.sim.scenario import build_scenario


class TestCostWeights:
    def test_defaults(self):
        weights = CostWeights()
        assert weights.inference == 1.0
        assert weights.trading == pytest.approx(0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(switching=-1.0)


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.horizon == 160
        assert config.carbon_cap_kg == 500.0
        assert config.rho_kg_per_kwh == 0.5
        assert config.num_models == 6

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(dataset="imagenet")

    def test_with_overrides(self):
        config = ScenarioConfig().with_overrides(num_edges=25, carbon_cap_kg=0.0)
        assert config.num_edges == 25
        assert config.carbon_cap_kg == 0.0
        assert config.horizon == 160  # unchanged

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_edges": 0},
            {"horizon": 0},
            {"carbon_cap_kg": -1.0},
            {"workload_base_mean": 0.0},
            {"switching_weight": -0.5},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(dataset="synthetic", **kwargs)


class TestBuildScenario:
    def test_shapes(self, small_scenario, small_config):
        sc, cfg = small_scenario, small_config
        assert len(sc.profiles) == cfg.num_models
        assert sc.latencies.shape == (cfg.num_edges, cfg.num_models)
        assert sc.download_delays.shape == (cfg.num_edges,)
        assert sc.workload_means.shape == (cfg.num_edges, cfg.horizon)
        assert sc.prices.horizon == cfg.horizon

    def test_deterministic(self, small_config):
        a = build_scenario(small_config)
        b = build_scenario(small_config)
        np.testing.assert_allclose(a.download_delays, b.download_delays)
        np.testing.assert_allclose(a.prices.buy, b.prices.buy)
        np.testing.assert_allclose(
            a.profiles[0].loss_per_sample, b.profiles[0].loss_per_sample
        )

    def test_different_seed_changes_traces(self, small_config):
        other = build_scenario(small_config.with_overrides(seed=99))
        base = build_scenario(small_config)
        assert not np.allclose(other.prices.buy, base.prices.buy)

    def test_effective_switch_costs_scale_with_weight(self, small_config):
        base = build_scenario(small_config)
        heavy = build_scenario(small_config.with_overrides(switching_weight=4.0))
        np.testing.assert_allclose(
            heavy.effective_switch_costs(), 4.0 * base.effective_switch_costs()
        )

    def test_trade_bound_positive(self, small_scenario):
        assert small_scenario.trade_bound > 0

    def test_estimated_slot_emissions_reasonable(self, small_scenario):
        est = small_scenario.estimated_slot_emissions()
        assert est > 0
        assert small_scenario.trade_bound == pytest.approx(
            small_scenario.config.trade_bound_factor * est, rel=1e-6
        )

    def test_expected_losses_are_profile_means(self, small_scenario):
        expected = [p.expected_loss for p in small_scenario.profiles]
        np.testing.assert_allclose(small_scenario.expected_losses, expected)

    def test_synthetic_has_no_pool(self, small_scenario):
        assert small_scenario.x_pool is None

    def test_mnist_scenario_has_pool_and_networks(self, mnist_scenario):
        assert mnist_scenario.x_pool is not None
        assert mnist_scenario.y_pool is not None
        assert all(p.network is not None for p in mnist_scenario.profiles)

    def test_mnist_zoo_loss_spread(self, mnist_scenario):
        """The trained zoo must have genuinely different model qualities."""
        losses = mnist_scenario.expected_losses
        assert losses.max() - losses.min() > 0.05
