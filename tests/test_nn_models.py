"""Tests for the model zoo builders."""

import numpy as np
import pytest

from repro.nn.models import (
    ModelSpec,
    build_cnn,
    build_lenet5,
    build_mlp,
    build_mobilenet_tiny,
    build_model,
    build_model_zoo,
    cifar_like_zoo_specs,
    mnist_like_zoo_specs,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestBuilders:
    def test_mlp_output_shape(self, rng):
        net = build_mlp(rng, in_channels=1, image_size=8, num_classes=10, hidden=16)
        out = net.forward(rng.standard_normal((3, 1, 8, 8)))
        assert out.shape == (3, 10)

    def test_cnn_output_shape(self, rng):
        net = build_cnn(rng, in_channels=3, image_size=8, channels=(8, 16))
        out = net.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 10)

    def test_cnn_rejects_bad_image_size(self, rng):
        with pytest.raises(ValueError):
            build_cnn(rng, image_size=6)

    def test_lenet5_output_shape(self, rng):
        net = build_lenet5(rng, in_channels=1, image_size=8)
        out = net.forward(rng.standard_normal((2, 1, 8, 8)))
        assert out.shape == (2, 10)

    def test_lenet5_width_scale_shrinks(self, rng):
        full = build_lenet5(rng, width_scale=1.0)
        slim = build_lenet5(rng, width_scale=0.5)
        assert slim.num_params() < full.num_params()

    def test_mobilenet_output_shape(self, rng):
        net = build_mobilenet_tiny(rng, in_channels=3, image_size=8, width=8)
        out = net.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 10)

    def test_mobilenet_width_scales_params(self, rng):
        small = build_mobilenet_tiny(rng, width=8)
        large = build_mobilenet_tiny(rng, width=16)
        assert large.num_params() > small.num_params()


class TestSpecs:
    def test_mnist_zoo_has_six_models(self):
        specs = mnist_like_zoo_specs()
        assert len(specs) == 6
        assert len({s.name for s in specs}) == 6
        assert all(s.in_channels == 1 for s in specs)

    def test_cifar_zoo_has_six_models(self):
        specs = cifar_like_zoo_specs()
        assert len(specs) == 6
        assert all(s.in_channels == 3 for s in specs)
        assert any(s.family == "mobilenet" for s in specs)

    def test_three_families_two_variants_each(self):
        for specs in (mnist_like_zoo_specs(), cifar_like_zoo_specs()):
            families = sorted(s.family for s in specs)
            assert len(set(families)) == 3
            for family in set(families):
                assert families.count(family) == 2

    def test_build_model_dispatch(self, rng):
        spec = ModelSpec("m", "mlp", kwargs={"hidden": 8})
        net = build_model(spec, rng)
        assert net.name == "m"

    def test_build_model_unknown_family(self, rng):
        with pytest.raises(ValueError, match="unknown model family"):
            build_model(ModelSpec("m", "transformer"), rng)

    def test_build_model_zoo(self, rng):
        nets = build_model_zoo(mnist_like_zoo_specs(), rng)
        assert len(nets) == 6
        sizes = [n.size_bytes() for n in nets]
        assert len(set(sizes)) > 1  # genuinely different models
