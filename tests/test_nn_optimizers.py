"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.optimizers import SGD, Adam


def quadratic_step_sequence(optimizer, steps=200):
    """Minimize L = 0.5 ||f(x)||^2 for a Dense layer; return output norms."""
    rng = np.random.default_rng(0)
    layer = Dense(3, 3, rng)
    norms = []
    for _ in range(steps):
        x = np.eye(3)
        out = layer.forward(x, training=True)
        layer.backward(out)  # dL/dout = out for L = 0.5 ||out||^2
        optimizer.step([layer])
        norms.append(float(np.linalg.norm(layer.forward(np.eye(3)))))
    return norms


class TestSGD:
    def test_converges_on_quadratic(self):
        norms = quadratic_step_sequence(SGD(lr=0.1))
        assert norms[-1] < 0.01 * norms[0]

    def test_momentum_converges(self):
        norms = quadratic_step_sequence(SGD(lr=0.05, momentum=0.9))
        assert norms[-1] < 0.01 * norms[0]

    def test_weight_decay_shrinks_weights(self):
        rng = np.random.default_rng(1)
        layer = Dense(2, 2, rng)
        before = np.linalg.norm(layer.params["W"])
        opt = SGD(lr=0.1, weight_decay=0.5)
        layer.forward(np.zeros((1, 2)), training=True)
        layer.backward(np.zeros((1, 2)))
        opt.step([layer])
        assert np.linalg.norm(layer.params["W"]) < before

    def test_weight_decay_skips_bias(self):
        rng = np.random.default_rng(2)
        layer = Dense(2, 2, rng)
        layer.params["b"][:] = 1.0
        opt = SGD(lr=0.1, weight_decay=0.5)
        layer.forward(np.zeros((1, 2)), training=True)
        layer.backward(np.zeros((1, 2)))
        opt.step([layer])
        np.testing.assert_allclose(layer.params["b"], 1.0)

    @pytest.mark.parametrize("kwargs", [{"lr": 0}, {"momentum": 1.0}, {"weight_decay": -1}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            SGD(**{"lr": 0.1, **kwargs})


class TestAdam:
    def test_converges_on_quadratic(self):
        norms = quadratic_step_sequence(Adam(lr=0.05), steps=400)
        assert norms[-1] < 0.05 * norms[0]

    def test_skips_layers_without_grads(self):
        rng = np.random.default_rng(3)
        layer = Dense(2, 2, rng)
        before = layer.params["W"].copy()
        Adam().step([layer])  # no backward happened, no grads
        np.testing.assert_allclose(layer.params["W"], before)

    @pytest.mark.parametrize("kwargs", [{"lr": -1}, {"beta1": 1.0}, {"beta2": -0.1}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            Adam(**kwargs)
