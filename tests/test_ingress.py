"""Request-level ingress tier: determinism, accounting, and parity gates.

The load-bearing contracts, in the order the module grew them:

* **thinning conservation** — per-edge multinomial thinning partitions
  every slot count exactly, for arbitrary seeds and count shapes;
* **bit parity** — ingress with deferral off and no slot budget is
  invisible: the pinned golden digests do not move, in-process or
  sharded;
* **request accounting** — ``in == served + shed + offline + dropped``
  holds exactly under every admission policy and both router regimes;
* **reproducibility** — equal seeds give byte-identical soak reports on
  the deterministic field subset (wall-clock latencies excluded).
"""

import json

import numpy as np
import pytest

from repro.ingress import (
    DEFAULT_CLASSES,
    IngressAdapter,
    IngressConfig,
    IngressRouter,
    IngressStats,
    RequestThinner,
    SlaClass,
    clamp_deadline,
    resolve_payload,
)
from repro.obs import Tracer
from repro.serve import ServeConfig, make_runtime, serve_run
from repro.serve.soak import run_soak
from repro.sim.io import result_digest
from repro.utils.rng import spawn_generator, thinning_stream
from tests.test_golden_digests import GOLDEN_DIGESTS, SCENARIO_CONFIGS

TWO_CLASSES = (
    SlaClass(name="fast", share=0.7, deadline_slots=1, priority=1, deferrable=False),
    SlaClass(name="slow", share=0.3, deadline_slots=8, priority=0, deferrable=True),
)


def ingress_serve_config(scenario_name="A", seed=0, ingress=None, **overrides):
    ingress = ingress if ingress is not None else IngressConfig()
    return ServeConfig(
        scenario=SCENARIO_CONFIGS[scenario_name],
        seed=seed,
        label="Ours-Ours",
        ingress=ingress.to_dict(),
        **overrides,
    )


class TestRequestModel:
    def test_clamp_deadline_caps_at_horizon(self):
        assert clamp_deadline(3, 5, horizon=100) == 8
        assert clamp_deadline(3, 500, horizon=10) == 9
        assert clamp_deadline(9, 0, horizon=10) == 9

    def test_sla_class_validation(self):
        with pytest.raises(ValueError):
            SlaClass(name="x", share=0.0, deadline_slots=1, priority=0,
                     deferrable=True)
        with pytest.raises(ValueError):
            SlaClass(name="x", share=1.5, deadline_slots=1, priority=0,
                     deferrable=True)
        with pytest.raises(ValueError):
            SlaClass(name="x", share=0.5, deadline_slots=-1, priority=0,
                     deferrable=True)


class TestIngressConfig:
    def test_default_shares_sum_to_one(self):
        assert abs(sum(c.share for c in DEFAULT_CLASSES) - 1.0) < 1e-12

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            IngressConfig(classes=(
                SlaClass(name="a", share=0.5, deadline_slots=1, priority=0,
                         deferrable=True),
            ))

    def test_duplicate_class_names_rejected(self):
        dup = SlaClass(name="a", share=0.5, deadline_slots=1, priority=0,
                       deferrable=True)
        with pytest.raises(ValueError, match="duplicate"):
            IngressConfig(classes=(dup, dup))

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="admission"):
            IngressConfig(admission="lifo")
        with pytest.raises(ValueError, match="forecaster"):
            IngressConfig(forecaster="oracle")
        with pytest.raises(ValueError, match="lookahead"):
            IngressConfig(lookahead=0)
        with pytest.raises(ValueError, match="defer_margin"):
            IngressConfig(defer_margin=1.0)

    def test_dict_round_trip(self):
        config = IngressConfig(classes=TWO_CLASSES, admission="deadline-shed",
                               queue_capacity=16, slot_capacity=4,
                               forecaster="ar1")
        clone = IngressConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            IngressConfig.from_dict({"burst_factor": 2})

    def test_from_file(self, tmp_path):
        path = tmp_path / "ingress.json"
        config = IngressConfig(slot_capacity=8)
        path.write_text(json.dumps(config.to_dict()), encoding="utf-8")
        assert IngressConfig.from_file(path) == config


class TestThinning:
    @pytest.mark.parametrize("seed", [0, 1, 7, 123, 99991])
    def test_split_conserves_count_for_arbitrary_shapes(self, seed):
        thinner = RequestThinner(seed, edge=seed % 5, classes=DEFAULT_CLASSES)
        counts = spawn_generator(seed, "test-counts").integers(0, 500, size=64)
        for count in counts:
            split = thinner.split(int(count))
            assert split.sum() == count
            assert (split >= 0).all()

    def test_equal_seeds_give_equal_splits(self):
        a = RequestThinner(5, edge=2, classes=DEFAULT_CLASSES)
        b = RequestThinner(5, edge=2, classes=DEFAULT_CLASSES)
        for count in (0, 1, 10, 100, 3):
            assert (a.split(count) == b.split(count)).all()

    def test_zero_count_slots_stay_deterministic(self):
        # A quiet slot draws (and discards) like any other, so two
        # thinners fed the same count sequence — zeros included — stay
        # bit-identical slot for slot.
        a = RequestThinner(5, edge=0, classes=DEFAULT_CLASSES)
        b = RequestThinner(5, edge=0, classes=DEFAULT_CLASSES)
        for count in (0, 7, 0, 0, 12):
            assert (a.split(count) == b.split(count)).all()
        assert (a.split(50) == b.split(50)).all()

    def test_thinning_stream_is_isolated_from_base_streams(self):
        # The thinner draws from its own named stream, so mounting ingress
        # cannot perturb the arrival/data streams the kernels consume.
        base = spawn_generator(3, "arrivals-0").integers(0, 100, size=8)
        thinner = RequestThinner(3, edge=0, classes=DEFAULT_CLASSES)
        thinner.split(40)
        assert (
            spawn_generator(3, "arrivals-0").integers(0, 100, size=8) == base
        ).all()
        assert (
            thinning_stream(3, 0).bit_generator.state
            != spawn_generator(3, "arrivals-0").bit_generator.state
        )

    def test_state_round_trip_resumes_identically(self):
        a = RequestThinner(9, edge=1, classes=TWO_CLASSES)
        for count in (4, 9, 0):
            a.split(count)
        state = a.state_dict()
        b = RequestThinner(9, edge=1, classes=TWO_CLASSES)
        b.load_state(state)
        assert (a.split(33) == b.split(33)).all()


class TestRouter:
    def test_deferral_off_unbounded_releases_in_arrival_slot(self):
        config = IngressConfig(classes=TWO_CLASSES, deferral=False)
        router = IngressRouter(0, config, horizon=6)
        for t, counts in enumerate([[3, 2], [0, 0], [10, 5]]):
            released, provisional = router.step(t, counts, 1.0)
            assert released == sum(counts)
            assert provisional["deferred"] == 0 and provisional["dropped"] == 0
        assert router.depth == 0

    def test_fifo_slot_capacity_spills_and_final_slot_flushes(self):
        config = IngressConfig(classes=TWO_CLASSES, deferral=False,
                               slot_capacity=4)
        router = IngressRouter(0, config, horizon=3)
        released, _ = router.step(0, [6, 2], 1.0)
        assert released == 4 and router.depth == 4
        released, _ = router.step(1, [0, 0], 1.0)
        assert released == 4 and router.depth == 0
        released, _ = router.step(2, [9, 0], 1.0)
        assert released == 9  # final-slot flush ignores the budget

    def test_forced_releases_are_capacity_exempt(self):
        tight = SlaClass(name="now", share=1.0, deadline_slots=0, priority=0,
                         deferrable=True)
        config = IngressConfig(classes=(tight,), slot_capacity=1)
        router = IngressRouter(0, config, horizon=4)
        released, provisional = router.step(0, [5], 1.0)
        assert released == 5  # all deadline-forced despite the budget of 1
        assert provisional["per_class"]["now"] == [5, 5]

    def test_flat_prices_never_defer(self):
        config = IngressConfig(classes=TWO_CLASSES)
        router = IngressRouter(0, config, horizon=8)
        for t in range(8):
            released, provisional = router.step(t, [2, 2], 1.0)
            assert released == 4 and provisional["deferred"] == 0

    def test_price_spike_defers_deferrable_class_only(self):
        config = IngressConfig(classes=TWO_CLASSES, defer_margin=0.01)
        router = IngressRouter(0, config, horizon=12)
        for t in range(4):  # establish the EWMA baseline
            router.step(t, [0, 0], 1.0)
        released, provisional = router.step(4, [3, 5], 10.0)
        assert released == 3  # fast is non-deferrable, slow waits
        assert provisional["deferred"] == 5
        # Once the price returns to baseline the parked work drains.
        released, _ = router.step(5, [0, 0], 1.0)
        assert released == 5 and router.depth == 0

    @pytest.mark.parametrize("admission", ["drop-oldest", "deadline-shed"])
    def test_queue_capacity_drops_and_accounting_closes(self, admission):
        config = IngressConfig(classes=TWO_CLASSES, admission=admission,
                               queue_capacity=3, slot_capacity=2,
                               defer_margin=0.01)
        horizon = 10
        router = IngressRouter(0, config, horizon)
        total_in = released = dropped = 0
        for t in range(horizon):
            counts = [4, 4] if t < 5 else [0, 0]
            n, provisional = router.step(t, counts, 1.0)
            total_in += provisional["in"]
            released += n
            dropped += provisional["dropped"]
        assert dropped > 0
        assert router.depth == 0  # final slot drained everything
        assert total_in == released + dropped

    def test_deadline_shed_evicts_the_slackest(self):
        config = IngressConfig(classes=TWO_CLASSES, admission="deadline-shed",
                               queue_capacity=2, slot_capacity=1,
                               defer_margin=0.01)
        router = IngressRouter(0, config, horizon=20)
        for t in range(4):
            router.step(t, [0, 0], 1.0)
        # Price spike parks slow work; overflow must shed the latest
        # (slackest) arrivals, keeping the earliest deadlines queued.
        _, p0 = router.step(4, [0, 6], 10.0)
        assert p0["dropped"] == 4  # capacity 2
        heap = router._heaps[1]
        assert sorted(entry[0] for entry in heap) == [12, 12]
        assert sorted(entry[1] for entry in heap) == [0, 1]  # earliest seqs

    def test_state_round_trip_resumes_identically(self):
        config = IngressConfig(classes=TWO_CLASSES, slot_capacity=3,
                               defer_margin=0.01)
        a = IngressRouter(0, config, horizon=16)
        for t in range(6):
            a.step(t, [2, 3], 1.0 + (t == 5) * 9.0)
        b = IngressRouter(0, config, horizon=16)
        b.load_state(a.state_dict())
        for t in range(6, 16):
            ra = a.step(t, [1, 1], 1.0)
            rb = b.step(t, [1, 1], 1.0)
            assert ra == rb


def _served_outcome(t=0, shed=False, offline=False):
    from repro.sim.kernel import EdgeSlotOutcome

    return EdgeSlotOutcome(
        t=t, edge=0, model=0, switched=False, offline=offline, shed=shed,
        expected_loss=0.0, slot_loss=0.0, latency=0.0, switch_cost=0.0,
        emissions_kg=0.0, correct=0.0, arrivals=0, served=0,
    )


class TestStatsLifecycle:
    def provisional(self):
        return {
            "in": 10, "dropped": 1, "released": 6, "deferred": 3,
            "queued": 3, "per_class": {"fast": [4, 4], "slow": [2, 1]},
            "waits": {1: 2, 3: 1},
        }

    def test_served_slot_keeps_hits(self):
        payload = resolve_payload(self.provisional(), _served_outcome())
        assert payload["hits"] == 5 and payload["misses"] == 1
        assert payload["per_class"]["fast"] == [4, 4]

    @pytest.mark.parametrize("kwargs", [{"shed": True}, {"offline": True}])
    def test_shed_or_offline_slot_zeroes_hits(self, kwargs):
        payload = resolve_payload(self.provisional(), _served_outcome(**kwargs))
        assert payload["hits"] == 0 and payload["misses"] == 6
        assert payload["per_class"]["fast"] == [4, 0]

    def test_absorb_and_accounting(self):
        stats = IngressStats(["fast", "slow"])
        stats.absorb(resolve_payload(self.provisional(), _served_outcome()))
        # A final slot that drains the 3 queued requests plus 2 new ones;
        # the conservation identity only closes once the queues are empty.
        drain = {
            "in": 2, "dropped": 0, "released": 5, "deferred": 0,
            "queued": 0, "per_class": {"fast": [2, 2], "slow": [3, 3]},
            "waits": {2: 3},
        }
        stats.absorb(resolve_payload(drain, _served_outcome(t=1)))
        assert stats.requests_in == 12 and stats.requests_dropped == 1
        assert stats.requests_released == 11
        # served + shed + offline must cover every non-dropped request.
        assert stats.accounting_ok(11, 0, 0)
        assert not stats.accounting_ok(10, 0, 0)
        summary = stats.summary()
        assert summary["per_class"]["fast"]["hit_rate"] == 1.0
        assert summary["wait_histogram"] == {"1": 2, "2": 3, "3": 1}


class TestGoldenParity:
    """Deferral-off ingress must be invisible to the pinned digests."""

    def test_in_process_digest_unmoved(self):
        config = ingress_serve_config(
            "A", 0, ingress=IngressConfig(deferral=False)
        )
        result = serve_run(config, tracer=Tracer())
        assert result_digest(result) == GOLDEN_DIGESTS[("A", 0)]

    def test_sharded_digest_unmoved(self):
        config = ingress_serve_config(
            "A", 0, ingress=IngressConfig(deferral=False), num_workers=2
        )
        runtime = make_runtime(config, tracer=Tracer())
        assert result_digest(runtime.run()) == GOLDEN_DIGESTS[("A", 0)]

    def test_deferral_moves_the_digest(self):
        # Sanity check on the parity gate itself: with deferral on and a
        # slot budget the kernels see different counts, so the digest must
        # move — if it does not, the gate above is vacuous.
        config = ingress_serve_config(
            "A", 0, ingress=IngressConfig(slot_capacity=3, defer_margin=0.0)
        )
        result = serve_run(config, tracer=Tracer())
        assert result_digest(result) != GOLDEN_DIGESTS[("A", 0)]


class TestServeIntegration:
    @pytest.mark.parametrize("admission", ["admit", "drop-oldest",
                                           "deadline-shed"])
    def test_accounting_exact_per_policy(self, admission):
        ingress = IngressConfig(
            classes=TWO_CLASSES, admission=admission, queue_capacity=8,
            slot_capacity=12, defer_margin=0.01,
        )
        config = ingress_serve_config("A", 0, ingress=ingress)
        tracer = Tracer()
        runtime = make_runtime(config, tracer=tracer)
        runtime.run()
        counters = tracer.metrics_snapshot()["counters"]
        stats = runtime.ingress
        assert stats.accounting_ok(
            int(counters["serve/events_served"]),
            int(counters["serve/events_shed"]),
            int(counters["serve/events_dropped_offline"]),
        )
        assert int(counters["ingress/requests_in"]) == stats.requests_in

    def test_config_rejects_dataset_adapter_and_bad_ingress(self):
        with pytest.raises(ValueError, match="dataset"):
            ingress_serve_config("A", 0, adapter="dataset")
        with pytest.raises(ValueError, match="unknown IngressConfig"):
            ServeConfig(ingress={"bogus": 1})
        with pytest.raises(ValueError, match="IngressConfig dict"):
            ServeConfig(ingress="default")

    def test_snapshot_resume_preserves_digest(self, tmp_path):
        from repro.serve import runtime_from_snapshot

        path = tmp_path / "state.pkl"
        config = ingress_serve_config(
            "A", 0, ingress=IngressConfig(deferral=False),
            snapshot_every=8, snapshot_path=str(path),
        )
        runtime = make_runtime(config, tracer=Tracer())
        runtime.run(max_slots=8)
        resumed = runtime_from_snapshot(path, tracer=Tracer())
        assert result_digest(resumed.run()) == GOLDEN_DIGESTS[("A", 0)]


class TestSoakDeterminism:
    #: SoakReport fields that are pure functions of the config (wall-clock
    #: latency sketches and throughput are not).
    DETERMINISTIC_FIELDS = (
        "shape", "num_edges", "num_workers", "horizon", "events_in",
        "events_served", "events_shed", "events_dropped_offline",
        "accounting_ok", "ingress",
    )

    def soak(self, **kwargs):
        return run_soak(
            "spike", num_edges=4, num_workers=2, horizon=24,
            total_events=1500, seed=11,
            ingress=IngressConfig(slot_capacity=16, defer_margin=0.01),
            **kwargs,
        )

    def test_equal_seeds_give_byte_identical_reports(self):
        first, second = self.soak().to_dict(), self.soak().to_dict()
        for name in self.DETERMINISTIC_FIELDS:
            assert json.dumps(first[name], sort_keys=True) == json.dumps(
                second[name], sort_keys=True
            ), name
        # The deferral stage observes slot-valued waits in deterministic
        # order, so its sketch is reproducible too.
        assert first["stages"]["deferral"] == second["stages"]["deferral"]

    def test_request_accounting_and_report_shape(self):
        report = self.soak()
        assert report.accounting_ok
        ingress = report.ingress
        assert ingress["requests_in"] == 1500
        assert ingress["requests_in"] == (
            report.events_served + report.events_shed
            + report.events_dropped_offline + ingress["requests_dropped"]
        )
        assert set(ingress["per_class"]) == {c.name for c in DEFAULT_CLASSES}
        assert report.stages["deferral"]["count"] > 0
