"""Scalar-vs-vectorized equivalence: the fast path must be bit-identical.

The vectorized engine (:mod:`repro.sim.vector`) re-executes the scalar
reference loop's arithmetic with the per-edge-slot overhead stripped out.
Its whole contract is *bit* equality — not closeness — so these tests
compare :func:`repro.sim.io.result_digest` (a SHA-256 over every result
array) across seeded random scenarios, policy families, fleet shapes, and
the live-inference path, plus the dispatch rules of
``Simulator.run(vectorized=...)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import EdgeOutage, FaultPlan
from repro.policies import make_selection_policies, make_trading_policy
from repro.sim.config import ScenarioConfig
from repro.sim.io import result_digest
from repro.sim.scenario import build_scenario
from repro.sim.simulator import Simulator
from repro.sim.vector import can_vectorize
from repro.spec import RunSpec
from repro.utils.rng import RngFactory


def _scenario(num_edges: int, horizon: int, *, seed: int = 0, num_models: int = 4):
    return build_scenario(
        ScenarioConfig(
            dataset="synthetic",
            num_edges=num_edges,
            horizon=horizon,
            num_models=num_models,
            n_test=400,
            seed=seed,
        )
    )


def _digests(scenario, spec: RunSpec) -> tuple[str, str]:
    """(scalar digest, vectorized digest) for fresh simulators of ``spec``."""
    scalar = Simulator.from_spec(scenario, spec).run(vectorized=False)
    fast = Simulator.from_spec(scenario, spec).run(vectorized=True)
    return result_digest(scalar), result_digest(fast)


# ---------------------------------------------------------------------------
# Property: bitwise-identical digests across seeded random scenarios.


@pytest.mark.parametrize("case", range(8))
def test_random_scenarios_are_bit_identical(case):
    """Randomized fleet shapes, scenario seeds, and run seeds all agree."""
    rng = np.random.default_rng(9000 + case)
    num_edges = int(rng.integers(1, 5))
    horizon = int(rng.integers(16, 72))
    scenario_seed = int(rng.integers(0, 1000))
    run_seed = int(rng.integers(0, 1000))
    scenario = _scenario(num_edges, horizon, seed=scenario_seed)
    spec = RunSpec(seed=run_seed)
    scalar, fast = _digests(scenario, spec)
    assert scalar == fast


@pytest.mark.parametrize("selection", ["Ours", "UCB", "EG", "Greedy", "TINF"])
def test_selection_families_are_bit_identical(selection):
    """Both the block-wise path ("Ours") and the generic per-slot fallback
    (everything that is not a plain ``OnlineModelSelection``) agree."""
    scenario = _scenario(3, 40, seed=7)
    spec = RunSpec(selection=selection, seed=11)
    scalar, fast = _digests(scenario, spec)
    assert scalar == fast


@pytest.mark.parametrize("trading", ["Ours", "Forecast", "TH", "Null"])
def test_trading_families_are_bit_identical(trading):
    scenario = _scenario(2, 32, seed=3)
    spec = RunSpec(trading=trading, seed=5)
    scalar, fast = _digests(scenario, spec)
    assert scalar == fast


def test_mixed_fleet_uses_per_slot_fallback_bit_identically():
    """A fleet mixing Algorithm-1 edges with another family still matches.

    ``from_spec`` builds homogeneous fleets, so splice policies from two
    registry families by hand — this exercises the vectorized engine's
    mixed-fleet branch (``blockwise=False``) where plain Algorithm-1
    members still batch their block openings.
    """
    scenario = _scenario(4, 36, seed=2)

    def build(seed: int) -> Simulator:
        factory = RngFactory(seed).child("mixed")
        ours = make_selection_policies("Ours", scenario, factory)
        ucb = make_selection_policies("UCB", scenario, factory)
        policies = [ours[0], ucb[1], ours[2], ucb[3]]
        trader = make_trading_policy("Ours", scenario, factory)
        return Simulator(scenario, policies, trader, run_seed=seed, label="mixed")

    scalar = build(13).run(vectorized=False)
    fast = build(13).run(vectorized=True)
    assert result_digest(scalar) == result_digest(fast)


def test_live_inference_is_bit_identical(mnist_scenario):
    """Live forward passes stay per edge-slot, so digests match exactly."""
    spec = RunSpec(live_inference=True, seed=4)
    scalar, fast = _digests(mnist_scenario, spec)
    assert scalar == fast


def test_class_mix_draws_are_bit_identical(mnist_scenario):
    """The per-slot two-stage class-mix draw path (mnist pools) agrees."""
    spec = RunSpec(seed=6)
    scalar, fast = _digests(mnist_scenario, spec)
    assert scalar == fast


# ---------------------------------------------------------------------------
# Dispatch rules of Simulator.run(vectorized=...).


def test_default_dispatch_picks_fast_path_and_matches_scalar():
    scenario = _scenario(2, 24, seed=1)
    spec = RunSpec(seed=8)
    sim = Simulator.from_spec(scenario, spec)
    assert can_vectorize(sim)
    auto = sim.run()
    scalar = Simulator.from_spec(scenario, spec).run(vectorized=False)
    assert result_digest(auto) == result_digest(scalar)


@pytest.mark.parametrize(
    "overrides",
    [
        {"label_delay": 2},
        {"faults": FaultPlan((EdgeOutage(edge=0, start=2, end=4),))},
    ],
    ids=["label_delay", "faults"],
)
def test_unsupported_runs_decline_and_fall_back(overrides):
    """Per-slot machinery forces the scalar loop; forcing the fast path raises."""
    scenario = _scenario(2, 24, seed=1)
    spec = RunSpec(seed=8, **overrides)
    sim = Simulator.from_spec(scenario, spec)
    assert not can_vectorize(sim)
    with pytest.raises(ValueError, match="vectorized fast path"):
        sim.run(vectorized=True)
    # The default dispatch still works — it silently takes the scalar loop.
    result = Simulator.from_spec(scenario, spec).run()
    assert result.horizon == scenario.horizon


def test_tracing_declines_fast_path(tmp_path):
    scenario = _scenario(2, 24, seed=1)
    spec = RunSpec(seed=8, trace_output=str(tmp_path / "trace.jsonl"))
    sim = Simulator.from_spec(scenario, spec)
    assert not can_vectorize(sim)
    with pytest.raises(ValueError, match="vectorized fast path"):
        sim.run(vectorized=True)
    sim.tracer.close()
