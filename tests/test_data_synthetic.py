"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import Dataset, make_cifar10_like, make_dataset, make_mnist_like
from repro.nn.models import build_mlp
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer, evaluate_accuracy


class TestDataset:
    def test_image_shape(self):
        data = make_mnist_like(np.random.default_rng(0), n_train=50, n_test=50)
        assert data.image_shape == (1, 8, 8)

    def test_misaligned_labels_rejected(self):
        x = np.zeros((4, 1, 8, 8))
        with pytest.raises(ValueError):
            Dataset("bad", x, np.zeros(3, dtype=int), x, np.zeros(4, dtype=int), 10)

    def test_non_nchw_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                "bad",
                np.zeros((4, 8, 8)),
                np.zeros(4, dtype=int),
                np.zeros((4, 8, 8)),
                np.zeros(4, dtype=int),
                10,
            )


class TestGenerators:
    def test_mnist_like_shapes(self):
        data = make_mnist_like(np.random.default_rng(0), n_train=120, n_test=80)
        assert data.x_train.shape == (120, 1, 8, 8)
        assert data.x_test.shape == (80, 1, 8, 8)
        assert data.num_classes == 10

    def test_cifar_like_is_three_channel(self):
        data = make_cifar10_like(np.random.default_rng(0), n_train=50, n_test=50)
        assert data.x_train.shape[1] == 3

    def test_pixels_in_unit_interval(self):
        data = make_mnist_like(np.random.default_rng(1), n_train=100, n_test=50)
        assert data.x_train.min() >= 0.0
        assert data.x_train.max() <= 1.0

    def test_all_classes_present(self):
        data = make_mnist_like(np.random.default_rng(2), n_train=500, n_test=500)
        assert set(np.unique(data.y_train)) == set(range(10))

    def test_deterministic_given_seed(self):
        a = make_mnist_like(np.random.default_rng(3), n_train=20, n_test=20)
        b = make_mnist_like(np.random.default_rng(3), n_train=20, n_test=20)
        np.testing.assert_allclose(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            make_dataset(
                name="x", rng=np.random.default_rng(0), channels=1, overlap=1.0
            )

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            make_dataset(
                name="x", rng=np.random.default_rng(0), channels=1, noise=-0.1
            )

    def test_cifar_like_harder_than_mnist_like(self):
        """The same model should reach higher accuracy on the MNIST-like set."""
        rng = np.random.default_rng(4)
        easy = make_mnist_like(rng, n_train=400, n_test=400)
        hard = make_cifar10_like(rng, n_train=400, n_test=400)
        accs = {}
        for name, data in {"easy": easy, "hard": hard}.items():
            channels = data.image_shape[0]
            net = build_mlp(np.random.default_rng(5), in_channels=channels, hidden=32)
            Trainer(net, optimizer=SGD(lr=0.1, momentum=0.9)).fit(
                data.x_train, data.y_train, epochs=4, batch_size=32,
                rng=np.random.default_rng(6),
            )
            accs[name] = evaluate_accuracy(net, data.x_test, data.y_test)
        assert accs["easy"] > accs["hard"] + 0.1
