"""Tests for post-training weight quantization."""

import numpy as np
import pytest

from repro.data.synthetic import make_mnist_like
from repro.nn.models import build_cnn, build_mlp
from repro.nn.optimizers import SGD
from repro.nn.quantization import QuantizedSequential, quantize_network, quantize_tensor
from repro.nn.training import Trainer, evaluate_accuracy


class TestQuantizeTensor:
    def test_levels_respected(self):
        arr = np.linspace(-1.0, 1.0, 101)
        q = quantize_tensor(arr, bits=3)
        # 3-bit symmetric grid: levels multiples of 1/3.
        assert len(np.unique(q)) <= 2**3
        np.testing.assert_allclose(q * 3, np.round(q * 3), atol=1e-12)

    def test_max_magnitude_preserved(self):
        arr = np.array([-2.0, 0.5, 1.0])
        q = quantize_tensor(arr, bits=8)
        assert q.min() == pytest.approx(-2.0)

    def test_zero_tensor_unchanged(self):
        q = quantize_tensor(np.zeros(5), bits=4)
        np.testing.assert_allclose(q, np.zeros(5))

    def test_high_precision_nearly_lossless(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal(1000)
        q = quantize_tensor(arr, bits=16)
        assert np.max(np.abs(q - arr)) < 1e-3

    def test_one_bit_is_sign_times_scale(self):
        arr = np.array([-0.5, 0.2, 0.9])
        q = quantize_tensor(arr, bits=1)
        assert len(np.unique(np.abs(q[q != 0]))) <= 1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=0)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=20)

    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(1)
        arr = rng.standard_normal(2000)
        errors = [
            float(np.mean((quantize_tensor(arr, b) - arr) ** 2)) for b in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]


class TestQuantizeNetwork:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(2)
        data = make_mnist_like(rng, n_train=500, n_test=400)
        net = build_mlp(np.random.default_rng(3), hidden=32)
        Trainer(net, optimizer=SGD(lr=0.1, momentum=0.9)).fit(
            data.x_train, data.y_train, epochs=4, batch_size=32,
            rng=np.random.default_rng(4),
        )
        return net, data

    def test_original_untouched(self, trained):
        net, _ = trained
        before = net.get_weights()
        quantize_network(net, bits=4)
        after = net.get_weights()
        for layer_before, layer_after in zip(before, after):
            for key in layer_before:
                np.testing.assert_allclose(layer_before[key], layer_after[key])

    def test_size_shrinks_by_bit_ratio(self, trained):
        net, _ = trained
        int8 = quantize_network(net, bits=8)
        assert int8.size_bytes() == pytest.approx(net.size_bytes() / 4, rel=0.01)
        int4 = quantize_network(net, bits=4)
        assert int4.size_bytes() == pytest.approx(net.size_bytes() / 8, rel=0.01)

    def test_biases_not_quantized(self, trained):
        net, _ = trained
        quantized = quantize_network(net, bits=2)
        for orig, quant in zip(net.layers, quantized.layers):
            if "b" in orig.params:
                np.testing.assert_allclose(orig.params["b"], quant.params["b"])

    def test_int8_accuracy_nearly_intact(self, trained):
        net, data = trained
        base = evaluate_accuracy(net, data.x_test, data.y_test)
        int8 = evaluate_accuracy(
            quantize_network(net, bits=8), data.x_test, data.y_test
        )
        assert int8 >= base - 0.02

    def test_extreme_quantization_hurts(self, trained):
        net, data = trained
        base = evaluate_accuracy(net, data.x_test, data.y_test)
        int1 = evaluate_accuracy(
            quantize_network(net, bits=1), data.x_test, data.y_test
        )
        assert int1 < base

    def test_name_records_bits(self, trained):
        net, _ = trained
        assert quantize_network(net, bits=8).name.endswith("-int8")

    def test_works_on_conv_nets(self):
        net = build_cnn(np.random.default_rng(5), channels=(8, 16))
        quantized = quantize_network(net, bits=8)
        x = np.random.default_rng(6).random((4, 1, 8, 8))
        out = quantized.predict_proba(x)
        assert out.shape == (4, 10)

    def test_invalid_bits(self, trained):
        net, _ = trained
        with pytest.raises(ValueError):
            quantize_network(net, bits=0)
        with pytest.raises(ValueError):
            QuantizedSequential(net.layers, bits=32)


class TestQuantizedZoo:
    def test_quantized_profiles_smaller_and_usable(self, mnist_scenario):
        from repro.sim.zoo import quantized_trained_profiles

        config = mnist_scenario.config
        quantized = quantized_trained_profiles(
            "mnist",
            bits=8,
            zoo_seed=config.zoo_seed,
            n_train=config.n_train,
            n_test=config.n_test,
            image_size=config.image_size,
        )
        assert len(quantized) == len(mnist_scenario.profiles)
        for fp32, int8 in zip(mnist_scenario.profiles, quantized):
            assert int8.size_bytes < fp32.size_bytes
            assert int8.accuracy >= fp32.accuracy - 0.05
            assert int8.pool_size == fp32.pool_size
