"""Whole-package API surface checks.

Every module must import cleanly, every ``__all__`` name must resolve, and
docstring examples must execute.  These tests catch broken exports and
stale documentation across the entire package at once.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULE_NAMES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if callable(obj) and getattr(obj, "__module__", "").startswith("repro"):
            assert obj.__doc__, f"{name}.{export} lacks a docstring"


def test_docstring_examples_execute():
    """Run doctests in the modules that carry executable examples."""
    for name in ("repro.utils.rng",):
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"doctest failures in {name}"
        assert result.attempted > 0


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


# ---------------------------------------------------------------------------
# RunSpec: the unified run surface (pins the 1.2 API redesign).


def _spec(**overrides):
    from repro.spec import RunSpec

    fields = dict(selection="Ours", trading="Ours", seed=3)
    fields.update(overrides)
    return RunSpec(**fields)


def test_runspec_is_exported_at_top_level():
    assert "RunSpec" in repro.__all__
    assert repro.RunSpec is importlib.import_module("repro.spec").RunSpec


def test_runspec_field_surface_is_pinned():
    """The spec's field names are API; additions must be deliberate."""
    import dataclasses

    names = [f.name for f in dataclasses.fields(repro.RunSpec)]
    assert names == [
        "scenario",
        "selection",
        "trading",
        "seed",
        "label",
        "label_delay",
        "live_inference",
        "faults",
        "trace_output",
        "trace_edge",
    ]


def test_runspec_json_round_trip_with_scenario_and_faults():
    from repro.faults import EdgeOutage, FaultPlan

    spec = _spec(
        scenario=repro.ScenarioConfig(num_edges=4, horizon=40),
        label="pinned",
        faults=FaultPlan((EdgeOutage(edge=0, start=2, end=5),)),
    )
    assert repro.RunSpec.from_json(spec.to_json()) == spec


def test_runspec_resolved_label_and_overrides():
    spec = _spec()
    assert spec.resolved_label == "Ours-Ours"
    assert spec.with_overrides(label="x").resolved_label == "x"
    assert spec.with_overrides(seed=9).seed == 9
    assert spec.seed == 3  # frozen: with_overrides copies


def test_runspec_rejects_unknown_serialized_fields():
    payload = _spec().to_dict()
    payload["mystery"] = 1
    with pytest.raises(ValueError, match="unknown run-spec fields"):
        repro.RunSpec.from_dict(payload)


def test_run_accepts_spec_without_warning():
    import warnings

    spec = _spec(scenario=repro.ScenarioConfig(num_edges=2, horizon=12))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = repro.run(spec)
    assert result.label == "Ours-Ours"


def test_run_keyword_tail_warns_and_matches_spec_path():
    from repro.sim.io import result_digest

    config = repro.ScenarioConfig(num_edges=2, horizon=12)
    spec = _spec(scenario=config)
    via_spec = repro.run(spec)
    with pytest.warns(DeprecationWarning, match="repro.run keyword tail"):
        via_tail = repro.run(config, selection="Ours", trading="Ours", seed=3)
    assert result_digest(via_spec) == result_digest(via_tail)


def test_run_rejects_keywords_alongside_spec():
    with pytest.raises(TypeError, match="inside the RunSpec"):
        repro.run(_spec(), seed=1)


def test_simulator_from_names_warns_and_matches_from_spec():
    from repro.sim.io import result_digest

    spec = _spec(scenario=repro.ScenarioConfig(num_edges=2, horizon=12))
    scenario = spec.build_scenario()
    via_spec = repro.Simulator.from_spec(scenario, spec).run()
    with pytest.warns(DeprecationWarning, match="from_names is deprecated"):
        sim = repro.Simulator.from_names(
            scenario, "Ours", "Ours", seed=3
        )
    assert result_digest(sim.run()) == result_digest(via_spec)


def test_engine_run_many_warns_and_run_specs_does_not():
    import warnings

    from repro.experiments.engine import SweepEngine
    from repro.sim.io import result_digest

    scenario = repro.build_scenario(repro.ScenarioConfig(num_edges=2, horizon=12))
    engine = SweepEngine()
    with pytest.warns(DeprecationWarning, match="run_many is deprecated"):
        legacy = engine.run_many(scenario, "Ours", "Ours", [0, 1])
    specs = [_spec(seed=s) for s in (0, 1)]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        modern = engine.run_specs(scenario, specs)
    assert [result_digest(r) for r in legacy] == [
        result_digest(r) for r in modern
    ]


def test_no_deprecated_keyword_tails_left_in_shipping_code():
    """No caller in src/ or benchmarks/ may use the deprecated tails."""
    import pathlib
    import re

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    pattern = re.compile(r"\.from_names\(|\.run_many\(")
    offenders = []
    for base in ("src", "benchmarks"):
        for path in sorted((root / base).rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            for match in pattern.finditer(text):
                line = text[: match.start()].count("\n") + 1
                snippet = text.splitlines()[line - 1].strip()
                offenders.append(f"{path.relative_to(root)}:{line}: {snippet}")
    allowed = {
        # spec.py's module docstring names the tails it replaced
        "src/repro/spec.py",
    }
    real = [
        line
        for line in offenders
        if line.split(":")[0] not in allowed
    ]
    assert not real, "deprecated keyword-tail calls remain:\n" + "\n".join(real)
