"""Whole-package API surface checks.

Every module must import cleanly, every ``__all__`` name must resolve, and
docstring examples must execute.  These tests catch broken exports and
stale documentation across the entire package at once.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULE_NAMES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if callable(obj) and getattr(obj, "__module__", "").startswith("repro"):
            assert obj.__doc__, f"{name}.{export} lacks a docstring"


def test_docstring_examples_execute():
    """Run doctests in the modules that carry executable examples."""
    for name in ("repro.utils.rng",):
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"doctest failures in {name}"
        assert result.attempted > 0


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
