"""Unit tests of the bench report schema, comparisons, and CLI gate.

Everything here runs on synthetic reports — no real measurement beyond one
trivial inline case — so the regression-gate *logic* is pinned independently
of machine speed: round-trip fidelity, the wall-vs-ratio gating split, and
the CLI's exit-code contract (0 clean / 1 regression / 2 usage error).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cases import SUITE_NAMES, BenchCase, derive_ratios, run_case
from repro.bench.cli import main
from repro.bench.report import (
    BENCH_FORMAT_VERSION,
    BenchReport,
    BenchResult,
    CaseComparison,
    RatioComparison,
    compare_ratios,
    compare_reports,
    load_report,
    machine_fingerprint,
    report_filename,
)

MACHINE = {"host": "test-rig", "python": "3.x"}


def _result(name: str, wall: float) -> BenchResult:
    return BenchResult(
        name=name, wall_seconds=wall, cpu_seconds=wall,
        rounds=3, work=100.0, unit="ops",
    )


def _report(
    walls: dict[str, float],
    *,
    suite: str = "simulator",
    ratios: dict[str, float] | None = None,
    machine: dict | None = None,
    mode: str = "full",
) -> BenchReport:
    return BenchReport(
        suite=suite,
        machine=MACHINE if machine is None else machine,
        results=tuple(_result(n, w) for n, w in walls.items()),
        ratios=ratios or {},
        mode=mode,
    )


# ---------------------------------------------------------------------------
# Schema: BenchResult / BenchReport round trips and validation.


class TestReportSchema:
    def test_result_round_trip_recomputes_throughput(self):
        result = _result("a", 0.25)
        payload = result.to_dict()
        assert payload["throughput"] == pytest.approx(400.0)
        assert BenchResult.from_dict(payload) == result

    def test_result_validation(self):
        with pytest.raises(ValueError, match="wall_seconds"):
            _result("a", 0.0)
        with pytest.raises(ValueError, match="rounds"):
            BenchResult(name="a", wall_seconds=1.0, cpu_seconds=1.0,
                        rounds=0, work=1.0, unit="ops")

    def test_report_json_round_trip(self, tmp_path):
        report = _report({"a": 0.1, "b": 0.2}, ratios={"speedup": 2.0},
                         mode="smoke")
        assert BenchReport.from_json(report.to_json()) == report
        path = report.write(str(tmp_path / report_filename("simulator")))
        assert load_report(path) == report

    def test_report_rejects_unknown_format_version(self):
        payload = _report({"a": 0.1}).to_dict()
        payload["format_version"] = BENCH_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format_version"):
            BenchReport.from_dict(payload)

    def test_report_mode_defaults_to_full_on_read(self):
        payload = _report({"a": 0.1}).to_dict()
        del payload["mode"]
        assert BenchReport.from_dict(payload).mode == "full"

    def test_report_get(self):
        report = _report({"a": 0.1})
        assert report.get("a").wall_seconds == pytest.approx(0.1)
        assert report.get("zzz") is None

    def test_machine_fingerprint_is_json_safe_and_stable(self):
        fingerprint = machine_fingerprint()
        assert json.loads(json.dumps(fingerprint)) == fingerprint
        assert fingerprint == machine_fingerprint()


# ---------------------------------------------------------------------------
# Comparison logic: the wall-time threshold and the ratio slack.


class TestComparisons:
    def test_wall_regression_threshold_edge(self):
        at_edge = CaseComparison(name="a", baseline_wall=1.0,
                                 current_wall=1.15, threshold=0.15)
        over = CaseComparison(name="a", baseline_wall=1.0,
                              current_wall=1.16, threshold=0.15)
        assert not at_edge.regressed
        assert over.regressed

    def test_missing_current_case_regresses_but_new_case_does_not(self):
        missing = CaseComparison(name="a", baseline_wall=1.0,
                                 current_wall=None, threshold=0.15)
        new = CaseComparison(name="a", baseline_wall=None,
                             current_wall=1.0, threshold=0.15)
        assert missing.regressed
        assert not new.regressed
        assert missing.ratio is None

    def test_ratio_slack_edge(self):
        at_edge = RatioComparison(name="s", baseline_ratio=4.0,
                                  current_ratio=2.0, slack=0.5)
        below = RatioComparison(name="s", baseline_ratio=4.0,
                                current_ratio=1.9, slack=0.5)
        missing = RatioComparison(name="s", baseline_ratio=4.0,
                                  current_ratio=None, slack=0.5)
        assert not at_edge.regressed
        assert below.regressed
        assert missing.regressed

    def test_compare_reports_orders_baseline_first_then_new(self):
        baseline = _report({"a": 0.1, "b": 0.2})
        current = _report({"b": 0.2, "c": 0.3})
        comps = compare_reports(baseline, current)
        assert [c.name for c in comps] == ["a", "b", "c"]
        assert comps[0].regressed          # "a" lost
        assert not comps[1].regressed      # "b" unchanged
        assert not comps[2].regressed      # "c" new

    def test_compare_reports_rejects_suite_mismatch(self):
        with pytest.raises(ValueError, match="cannot compare suites"):
            compare_reports(_report({"a": 0.1}),
                            _report({"a": 0.1}, suite="core"))

    def test_compare_ratios_covers_both_directions(self):
        baseline = _report({}, ratios={"kept": 4.0, "lost": 2.0})
        current = _report({}, ratios={"kept": 3.9, "gained": 5.0})
        by_name = {c.name: c for c in compare_ratios(baseline, current)}
        assert set(by_name) == {"kept", "lost", "gained"}
        assert not by_name["kept"].regressed
        assert by_name["lost"].regressed
        assert not by_name["gained"].regressed


# ---------------------------------------------------------------------------
# The measurement loop, on a trivial inline case.


class TestRunCase:
    @staticmethod
    def _case(calls: list, rounds: int = 3) -> BenchCase:
        def build():
            def thunk():
                calls.append(1)
            return thunk

        return BenchCase(suite="t", name="trivial", build=build,
                         work=7.0, unit="ops", rounds=rounds)

    def test_full_mode_runs_warmup_plus_rounds(self):
        calls: list = []
        result = run_case(self._case(calls))
        assert len(calls) == 4  # 1 warmup + 3 rounds
        assert result.rounds == 3
        assert result.wall_seconds > 0.0
        assert result.work == 7.0

    def test_smoke_mode_still_warms_up_and_caps_rounds(self):
        calls: list = []
        result = run_case(self._case(calls), smoke=True)
        assert len(calls) == 3  # 1 warmup + best-of-2 rounds
        assert result.rounds == 2
        single: list = []
        assert run_case(self._case(single, rounds=1), smoke=True).rounds == 1

    def test_derive_ratios_from_synthetic_walls(self):
        results = (_result("simulate_scalar_i64", 0.4),
                   _result("simulate_vectorized_i64", 0.1),
                   _result("simulate_scalar_i10", 0.3),
                   _result("simulate_vectorized_i10", 0.2))
        ratios = derive_ratios("simulator", results)
        assert ratios["vectorized_speedup_i64"] == pytest.approx(4.0)
        assert ratios["vectorized_speedup_i10"] == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# CLI exit codes, on replayed synthetic reports (no measurement).


def _write(report: BenchReport, directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    report.write(os.path.join(directory, report_filename(report.suite)))


class TestCliGate:
    def test_list_exits_zero_and_names_all_suites(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for suite in SUITE_NAMES:
            assert f"{suite}:" in out

    def test_unknown_suite_is_usage_error(self, capsys):
        assert main(["warp-drive"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_replay_missing_report_is_usage_error(self, tmp_path, capsys):
        assert main(["simulator", "--check",
                     "--replay", str(tmp_path)]) == 2
        assert "replay report missing" in capsys.readouterr().err

    def test_check_with_overrides_is_usage_error(self, tmp_path, capsys):
        from repro.faults import EdgeOutage, FaultPlan

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            FaultPlan((EdgeOutage(edge=0, start=1, end=2),)).to_json()
        )
        assert main(["simulator", "--check", "--faults", str(plan_path)]) == 2
        assert "drop --faults" in capsys.readouterr().err

    def _run_check(self, tmp_path, baseline: BenchReport,
                   current: BenchReport) -> int:
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        _write(baseline, base_dir)
        _write(current, cur_dir)
        return main([baseline.suite, "--check",
                     "--replay", cur_dir, "--baseline-dir", base_dir])

    def test_matching_replay_passes(self, tmp_path, capsys):
        report = _report({"a": 0.1}, ratios={"speedup": 4.0})
        assert self._run_check(tmp_path, report, report) == 0
        assert "bench check passed" in capsys.readouterr().out

    def test_wall_regression_fails_on_same_machine(self, tmp_path, capsys):
        baseline = _report({"a": 0.1})
        current = _report({"a": 0.2})
        assert self._run_check(tmp_path, baseline, current) == 1
        assert "SLOW" in capsys.readouterr().out

    def test_wall_delta_is_informational_across_machines(self, tmp_path, capsys):
        baseline = _report({"a": 0.1})
        current = _report({"a": 0.2}, machine={"host": "other"})
        assert self._run_check(tmp_path, baseline, current) == 0
        out = capsys.readouterr().out
        assert "machine fingerprint differs" in out
        assert "slow" in out and "SLOW" not in out

    def test_wall_delta_is_informational_in_smoke_mode(self, tmp_path, capsys):
        baseline = _report({"a": 0.1})
        current = _report({"a": 0.2}, mode="smoke")
        assert self._run_check(tmp_path, baseline, current) == 0
        assert "low-round" in capsys.readouterr().out

    def test_ratio_regression_fails_even_in_smoke_mode(self, tmp_path, capsys):
        baseline = _report({"a": 0.1}, ratios={"speedup": 4.0})
        current = _report({"a": 0.1}, ratios={"speedup": 1.2}, mode="smoke")
        assert self._run_check(tmp_path, baseline, current) == 1
        out = capsys.readouterr().out
        assert "RATIO" in out
        assert "FAIL: 1 regression(s)" in out

    def test_lost_case_coverage_fails(self, tmp_path, capsys):
        baseline = _report({"a": 0.1, "b": 0.2})
        current = _report({"a": 0.1})
        assert self._run_check(tmp_path, baseline, current) == 1
        assert "MISSING b" in capsys.readouterr().out

    def test_missing_baseline_skips_gate(self, tmp_path, capsys):
        cur_dir = str(tmp_path / "cur")
        _write(_report({"a": 0.1}), cur_dir)
        assert main(["simulator", "--check", "--replay", cur_dir,
                     "--baseline-dir", str(tmp_path / "nothing")]) == 0
        assert "skipping gate" in capsys.readouterr().out

    def test_threshold_flag_widens_the_wall_gate(self, tmp_path):
        baseline = _report({"a": 0.1})
        current = _report({"a": 0.2})
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        _write(baseline, base_dir)
        _write(current, cur_dir)
        assert main(["simulator", "--check", "--replay", cur_dir,
                     "--baseline-dir", base_dir, "--threshold", "150"]) == 0
