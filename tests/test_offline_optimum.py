"""Tests for offline model selection and replay policies."""

import numpy as np
import pytest

from repro.offline.optimum import (
    FixedSelection,
    NullTrading,
    PrecomputedTrading,
    best_fixed_models,
)
from repro.policies.trading import TradingContext


def make_context(t, horizon=3):
    return TradingContext(
        t=t, horizon=horizon, cap=10.0,
        buy_price=8.0, sell_price=7.2, prev_buy_price=8.0, prev_sell_price=7.2,
        prev_emissions=0.0, cumulative_emissions=0.0, holdings=10.0,
        mean_slot_emissions=1.0, trade_bound=5.0,
    )


class TestBestFixedModels:
    def test_minimizes_loss_plus_latency(self):
        losses = np.array([0.5, 0.1])
        latencies = np.array([[0.0, 0.0], [0.0, 0.6]])
        models = best_fixed_models(losses, latencies)
        assert models[0] == 1  # 0.1 < 0.5
        assert models[1] == 0  # 0.5 < 0.1 + 0.6

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            best_fixed_models(np.array([0.1, 0.2]), np.zeros((3, 3)))


class TestFixedSelection:
    def test_constant_selection(self):
        policy = FixedSelection(4, model=2)
        assert policy.select(0) == 2
        assert policy.select(99) == 2
        policy.observe(0, 2, 1.0)  # no-op, must not raise

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            FixedSelection(4, model=4)


class TestPrecomputedTrading:
    def test_replays_plan(self):
        policy = PrecomputedTrading(buy=np.array([1.0, 0.0, 2.0]), sell=np.array([0.0, 3.0, 0.0]))
        d0 = policy.decide(make_context(0))
        d1 = policy.decide(make_context(1))
        assert (d0.buy, d0.sell) == (1.0, 0.0)
        assert (d1.buy, d1.sell) == (0.0, 3.0)

    def test_beyond_plan_raises(self):
        policy = PrecomputedTrading(buy=np.zeros(2), sell=np.zeros(2))
        with pytest.raises(IndexError):
            policy.decide(make_context(2, horizon=5))

    def test_negative_plan_rejected(self):
        with pytest.raises(ValueError):
            PrecomputedTrading(buy=np.array([-1.0]), sell=np.array([0.0]))

    def test_tiny_negative_rounding_tolerated(self):
        policy = PrecomputedTrading(buy=np.array([-1e-12]), sell=np.array([0.0]))
        assert policy.decide(make_context(0, horizon=1)).buy == 0.0


class TestNullTrading:
    def test_never_trades(self):
        policy = NullTrading()
        decision = policy.decide(make_context(0))
        assert decision.buy == 0.0
        assert decision.sell == 0.0
