"""Tests for repro.utils.mathutils (incl. property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.mathutils import (
    clip_to_simplex,
    cummax,
    haversine_km,
    moving_average,
    normalize,
    positive_part,
    softmax,
)

finite_vectors = arrays(
    dtype=float,
    shape=st.integers(1, 20),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestPositivePart:
    def test_scalar(self):
        assert positive_part(-3.0) == 0.0
        assert positive_part(2.0) == 2.0

    def test_array(self):
        np.testing.assert_allclose(positive_part(np.array([-1.0, 0.5])), [0.0, 0.5])


class TestNormalize:
    def test_sums_to_one(self):
        np.testing.assert_allclose(normalize(np.array([1.0, 3.0])).sum(), 1.0)

    def test_zero_vector_becomes_uniform(self):
        np.testing.assert_allclose(normalize(np.zeros(4)), np.full(4, 0.25))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        z = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(softmax(z, axis=1).sum(axis=1), [1.0, 1.0])

    def test_shift_invariance(self):
        z = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    def test_large_logits_stable(self):
        out = softmax(np.array([1e4, 0.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0)


class TestClipToSimplex:
    def test_already_on_simplex_unchanged(self):
        p = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(clip_to_simplex(p), p, atol=1e-12)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            clip_to_simplex(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            clip_to_simplex(np.array([]))

    @given(finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_projection_properties(self, v):
        p = clip_to_simplex(v)
        assert np.all(p >= -1e-12)
        assert p.sum() == pytest.approx(1.0, abs=1e-8)

    @given(finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_projection_is_idempotent(self, v):
        p = clip_to_simplex(v)
        np.testing.assert_allclose(clip_to_simplex(p), p, atol=1e-8)


class TestCummax:
    def test_running_maximum(self):
        np.testing.assert_allclose(
            cummax(np.array([1.0, 3.0, 2.0, 5.0])), [1.0, 3.0, 3.0, 5.0]
        )


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_ramp_up(self):
        out = moving_average(np.array([2.0, 4.0, 6.0]), 2)
        np.testing.assert_allclose(out, [2.0, 3.0, 5.0])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_known_distance_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        assert haversine_km(0.0, 0.0, 0.0, 1.0) == pytest.approx(111.19, rel=1e-3)

    def test_symmetry(self):
        d1 = haversine_km(-33.86, 151.21, -37.81, 144.96)  # Sydney-Melbourne
        d2 = haversine_km(-37.81, 144.96, -33.86, 151.21)
        assert d1 == pytest.approx(d2)
        assert 700 < d1 < 720  # ~713 km

    def test_vectorized(self):
        lats = np.array([0.0, 0.0])
        out = haversine_km(lats, np.array([0.0, 0.0]), lats, np.array([1.0, 2.0]))
        assert out.shape == (2,)
        assert out[1] > out[0]
