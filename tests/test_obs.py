"""Tests for repro.obs: events, sinks, tracer, metrics, and instrumentation.

The contract under test: every event round-trips through JSONL bit-exactly,
the no-op tracer is inert (and rejects sinks), and the instrumented
simulator's event stream agrees with the aggregates the simulation itself
reports — e.g. the number of ``model_switch`` events equals the switch
tally in the :class:`SimulationResult`.
"""

import io
import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    NULL_TRACER,
    BlockBoundaryEvent,
    BufferedJsonlSink,
    ArrivalEvent,
    Counter,
    DualUpdateEvent,
    EdgeFilterSink,
    EmissionEvent,
    FaultInjectedEvent,
    FeedbackLostEvent,
    InMemorySink,
    JsonlSink,
    ModelSwitchEvent,
    NullTracer,
    QueueShedEvent,
    ReconfigAppliedEvent,
    RetryEvent,
    SlotStartEvent,
    SnapshotEvent,
    Timer,
    TradeEvent,
    TradeRejectedEvent,
    Tracer,
    WorkerDeathEvent,
    WorkerRestartEvent,
    WorkerSpawnEvent,
    event_from_dict,
    read_events,
)
from repro.sim import ScenarioConfig, Simulator, build_scenario

ALL_EVENTS = [
    SlotStartEvent(t=0, horizon=160),
    ModelSwitchEvent(t=3, edge=1, previous_model=-1, model=4, switch_cost=2.5),
    BlockBoundaryEvent(t=8, edge=0, block=2, length=4, eta=0.5, model=1),
    TradeEvent(t=5, buy=1.25, sell=0.0, buy_price=80.0, sell_price=72.0, cost=100.0),
    DualUpdateEvent(t=5, dual=0.125, constraint=-3.0),
    EmissionEvent(t=5, emissions_kg=4.0, cumulative_kg=20.0, holdings_kg=18.0, violation_kg=2.0),
    FaultInjectedEvent(t=6, kind="edge_outage", edge=2),
    FeedbackLostEvent(t=7, edge=1, model=3),
    TradeRejectedEvent(t=9, buy=1.5, sell=0.0, pending_buy=1.5, pending_sell=0.0),
    RetryEvent(t=11, edge=0, hosted_model=2, target_model=4, attempt=2, backoff_slots=4),
    ArrivalEvent(t=2, edge=1, count=64),
    QueueShedEvent(t=4, edge=0, count=57),
    SnapshotEvent(t=15, path="snap.pkl"),
    WorkerSpawnEvent(t=0, worker=1, num_edges=3, generation=0),
    WorkerDeathEvent(t=12, worker=1, policy="restart", message="boom"),
    WorkerRestartEvent(t=13, worker=1, replay_from=12, attempt=1, backoff_s=0.05),
    ReconfigAppliedEvent(t=24, op="remove_edge", edge=2, active_edges=3, num_workers=2),
]


class TestEvents:
    def test_registry_covers_all_types(self):
        assert set(EVENT_TYPES) == {
            "slot_start",
            "model_switch",
            "block_boundary",
            "trade",
            "dual_update",
            "emission",
            "fault_injected",
            "feedback_lost",
            "trade_rejected",
            "retry",
            "arrival",
            "queue_shed",
            "snapshot",
            "worker_spawn",
            "worker_death",
            "worker_restart",
            "reconfig_applied",
            "request_admit",
            "request_defer",
            "request_drop",
            "deadline_miss",
        }

    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.type)
    def test_dict_round_trip(self, event):
        payload = event.as_dict()
        assert payload["type"] == event.type
        assert event_from_dict(json.loads(json.dumps(payload))) == event

    def test_unknown_type_lists_known_tags(self):
        with pytest.raises(ValueError, match="slot_start"):
            event_from_dict({"type": "warp_drive", "t": 0})


class TestSinks:
    def test_jsonl_round_trip_via_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for event in ALL_EVENTS:
            sink.write(event)
        sink.close()
        assert sink.events_written == len(ALL_EVENTS)
        assert read_events(path) == ALL_EVENTS

    def test_jsonl_stream_stays_open(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.write(ALL_EVENTS[0])
        sink.close()
        assert not stream.closed  # caller owns the stream
        assert json.loads(stream.getvalue())["type"] == "slot_start"

    def test_in_memory_sink_counts(self):
        sink = InMemorySink()
        for event in ALL_EVENTS:
            sink.write(event)
        assert len(sink) == len(ALL_EVENTS)
        assert sink.counts_by_type()["trade"] == 1
        assert sink.of_type("emission") == [ALL_EVENTS[5]]

    def test_buffered_jsonl_batches_writes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = BufferedJsonlSink(path, buffer_size=4)
        for event in ALL_EVENTS[:3]:
            sink.write(event)
        assert sink.buffered == 3
        assert sink.flushes == 0
        sink.write(ALL_EVENTS[3])  # fourth event fills the buffer
        assert sink.buffered == 0
        assert sink.flushes == 1
        sink.close()
        assert read_events(path) == ALL_EVENTS[:4]

    def test_buffered_jsonl_close_flushes_remainder(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = BufferedJsonlSink(path, buffer_size=100)
        for event in ALL_EVENTS:
            sink.write(event)
        sink.close()
        assert sink.events_written == len(ALL_EVENTS)
        assert read_events(path) == ALL_EVENTS

    def test_buffered_jsonl_matches_unbuffered_bytes(self, tmp_path):
        plain, buffered = tmp_path / "plain.jsonl", tmp_path / "buffered.jsonl"
        for sink in (JsonlSink(plain), BufferedJsonlSink(buffered, buffer_size=3)):
            for event in ALL_EVENTS:
                sink.write(event)
            sink.close()
        assert buffered.read_bytes() == plain.read_bytes()

    def test_buffered_jsonl_rejects_bad_buffer_size(self):
        with pytest.raises(ValueError, match="buffer_size"):
            BufferedJsonlSink(io.StringIO(), buffer_size=0)

    def test_edge_filter_forwards_only_matching_edge(self):
        inner = InMemorySink()
        sink = EdgeFilterSink(inner, edge=1)
        for event in ALL_EVENTS:
            sink.write(event)
        # The edge-1 model switch, feedback loss, and stream arrival.
        assert inner.events == [ALL_EVENTS[1], ALL_EVENTS[7], ALL_EVENTS[10]]
        assert sink.events_seen == len(ALL_EVENTS)
        assert sink.events_forwarded == 3
        assert sink.forwarded_counts == {
            "model_switch": 1, "feedback_lost": 1, "arrival": 1,
        }

    def test_edge_filter_drops_edgeless_events(self):
        # slot_start/trade/dual_update/emission carry no edge: never forwarded.
        inner = InMemorySink()
        sink = EdgeFilterSink(inner, edge=0)
        for event in ALL_EVENTS:
            sink.write(event)
        # The edge-0 block boundary, download retry, and queue shed.
        assert inner.events == [ALL_EVENTS[2], ALL_EVENTS[9], ALL_EVENTS[11]]
        assert all(hasattr(event, "edge") for event in inner.events)

    def test_edge_filter_closes_inner_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        inner = JsonlSink(path)
        sink = EdgeFilterSink(inner, edge=1)
        sink.write(ALL_EVENTS[1])
        sink.close()
        assert read_events(path) == [ALL_EVENTS[1]]


class TestTracer:
    def test_fan_out_and_counts(self):
        first, second = InMemorySink(), InMemorySink()
        tracer = Tracer([first, second])
        tracer.emit(ALL_EVENTS[0])
        tracer.emit(ALL_EVENTS[1])
        assert len(first) == len(second) == 2
        assert tracer.event_counts() == {"slot_start": 1, "model_switch": 1}

    def test_counters_and_timers_snapshot(self):
        tracer = Tracer()
        tracer.counter("slots").increment(3)
        with tracer.timer("run"):
            pass
        snapshot = tracer.metrics_snapshot()
        assert snapshot["counters"]["slots"] == 3
        assert snapshot["timers"]["run"] >= 0.0
        assert tracer.timer("run").count == 1

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(ALL_EVENTS[0])  # silently dropped
        assert NULL_TRACER.event_counts() == {}
        with pytest.raises(TypeError):
            NullTracer().add_sink(InMemorySink())


class TestMetrics:
    def test_counter(self):
        counter = Counter("n")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_timer(self):
        timer = Timer("t")
        with timer:
            pass
        assert timer.count == 1
        assert timer.total_seconds >= 0.0
        assert timer.mean_seconds == timer.total_seconds


class TestInstrumentedSimulation:
    @pytest.fixture(scope="class")
    def traced_run(self):
        scenario = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=4, horizon=48)
        )
        sink = InMemorySink()
        simulator = Simulator.from_names(
            scenario, "Ours", "Ours", seed=11, tracer=Tracer([sink])
        )
        return simulator.run(), sink, scenario

    def test_every_clean_event_type_emitted(self, traced_run):
        # A clean (fault-free) run emits every event type except the four
        # fault events, which only fire under a non-empty FaultPlan.
        _, sink, _ = traced_run
        fault_types = {"fault_injected", "feedback_lost", "trade_rejected", "retry"}
        serve_types = {
            "arrival",
            "queue_shed",
            "snapshot",
            "worker_spawn",
            "worker_death",
            "worker_restart",
            "reconfig_applied",
            "request_admit",
            "request_defer",
            "request_drop",
            "deadline_miss",
        }
        assert set(sink.counts_by_type()) == set(EVENT_TYPES) - fault_types - serve_types

    def test_slot_start_per_slot(self, traced_run):
        _, sink, scenario = traced_run
        assert sink.counts_by_type()["slot_start"] == scenario.horizon

    def test_model_switch_events_match_switch_tally(self, traced_run):
        result, sink, _ = traced_run
        assert sink.counts_by_type()["model_switch"] == result.total_switches()

    def test_emission_events_match_recorded_emissions(self, traced_run):
        result, sink, scenario = traced_run
        emissions = sink.of_type("emission")
        assert len(emissions) == scenario.horizon
        assert emissions[-1].cumulative_kg == pytest.approx(
            float(result.emissions.sum())
        )

    def test_tracing_does_not_change_results(self):
        scenario = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=4, horizon=48)
        )
        plain = Simulator.from_names(scenario, "Ours", "Ours", seed=11).run()
        traced = Simulator.from_names(
            scenario, "Ours", "Ours", seed=11, tracer=Tracer([InMemorySink()])
        ).run()
        assert (plain.selections == traced.selections).all()
        assert (plain.trading_cost == traced.trading_cost).all()
        assert float(plain.emissions.sum()) == float(traced.emissions.sum())


class TestAsyncQueueSink:
    def test_byte_identical_to_jsonl_sink_under_full_drain(self, tmp_path):
        from repro.obs import AsyncQueueSink

        direct = tmp_path / "direct.jsonl"
        threaded = tmp_path / "threaded.jsonl"
        plain = JsonlSink(direct)
        for event in ALL_EVENTS:
            plain.write(event)
        plain.close()
        sink = AsyncQueueSink(JsonlSink(threaded))
        for event in ALL_EVENTS:
            sink.write(event)
        sink.close()
        assert sink.dropped == 0
        assert sink.events_written == len(ALL_EVENTS)
        assert threaded.read_bytes() == direct.read_bytes()

    def test_drops_are_counted_when_queue_overflows(self, tmp_path):
        import threading

        from repro.obs import AsyncQueueSink

        release = threading.Event()
        entered = threading.Event()

        class SlowSink:
            def __init__(self):
                self.seen = 0

            def write(self, event):
                entered.set()
                release.wait(timeout=5)
                self.seen += 1

            def close(self):
                pass

        inner = SlowSink()
        sink = AsyncQueueSink(inner, capacity=4)
        # the first event occupies the worker (wait until it is inside the
        # inner write), then four more fill the queue to capacity.
        sink.write(ALL_EVENTS[0])
        assert entered.wait(timeout=5)
        for _ in range(4):
            sink.write(ALL_EVENTS[0])
        overflowed = 3
        for _ in range(overflowed):
            sink.write(ALL_EVENTS[0])
        assert sink.dropped == overflowed
        release.set()
        sink.close()
        assert inner.seen == 5
        assert sink.events_written == 5

    def test_write_after_close_raises(self):
        from repro.obs import AsyncQueueSink

        sink = AsyncQueueSink(InMemorySink())
        sink.close()
        with pytest.raises(ValueError):
            sink.write(ALL_EVENTS[0])

    def test_capacity_validated(self):
        from repro.obs import AsyncQueueSink

        with pytest.raises(ValueError):
            AsyncQueueSink(InMemorySink(), capacity=0)

    def test_used_as_tracer_sink_on_a_real_run(self, tmp_path):
        from repro.obs import AsyncQueueSink

        path = tmp_path / "run.jsonl"
        sink = AsyncQueueSink(JsonlSink(path))
        tracer = Tracer([sink])
        scenario = build_scenario(
            ScenarioConfig(dataset="synthetic", num_edges=2, horizon=16)
        )
        Simulator.from_names(scenario, "Ours", "Ours", seed=5, tracer=tracer).run()
        tracer.close()
        assert sink.dropped == 0
        replayed = list(read_events(path))
        assert len(replayed) == sink.events_written > 0


class TestTraceSummaries:
    def _trace(self, tmp_path, horizon=20, num_edges=2):
        from repro.obs import summarize_trace

        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer([sink])
        scenario = build_scenario(
            ScenarioConfig(
                dataset="synthetic", num_edges=num_edges, horizon=horizon
            )
        )
        result = Simulator.from_names(
            scenario, "Ours", "Ours", seed=9, tracer=tracer
        ).run()
        tracer.close()
        return result, summarize_trace(path), tracer.event_counts()

    def test_summary_counts_match_tracer(self, tmp_path):
        result, summary, counts = self._trace(tmp_path)
        assert summary.event_counts == counts
        assert summary.events_total == sum(counts.values())
        assert summary.slots_seen == summary.horizon == result.horizon

    def test_summary_aggregates_match_result(self, tmp_path):
        result, summary, _ = self._trace(tmp_path)
        assert sum(s.switches for s in summary.edges.values()) == (
            result.total_switches()
        )
        assert summary.total_bought == pytest.approx(float(result.bought.sum()))
        assert summary.total_sold == pytest.approx(float(result.sold.sum()))
        assert summary.trading_cost == pytest.approx(
            float(result.trading_cost.sum())
        )
        assert summary.final_cumulative_kg == pytest.approx(
            float(result.emissions.sum())
        )

    def test_summarize_events_on_empty_iterable(self):
        from repro.obs import summarize_events

        summary = summarize_events([])
        assert summary.events_total == 0
        assert summary.slots_seen == 0
        assert summary.edges == {}
        assert summary.final_dual is None

    def test_edge_rows_sorted_by_edge(self, tmp_path):
        _, summary, _ = self._trace(tmp_path, num_edges=3)
        rows = summary.edge_rows()
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)


class TestStreamingIterEvents:
    """iter_events: lazy decode, truncation tolerance, corruption surfacing."""

    def _write_trace(self, path):
        sink = JsonlSink(path)
        for event in ALL_EVENTS:
            sink.write(event)
        sink.close()

    def test_matches_read_events(self, tmp_path):
        from repro.obs import iter_events

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        assert list(iter_events(path)) == read_events(path)

    def test_is_lazy(self, tmp_path):
        from repro.obs import iter_events

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        stream = iter_events(path)
        assert next(stream) == ALL_EVENTS[0]  # nothing else decoded yet
        stream.close()

    def test_truncated_tail_is_forgiven(self, tmp_path):
        # A crashed writer leaves a torn final line with no newline; the
        # stream must end cleanly with every complete event intact.
        from repro.obs import iter_events

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        full = path.read_text(encoding="utf-8")
        torn = full.rstrip("\n")[: len(full) - 20]
        path.write_text(torn, encoding="utf-8")
        events = list(iter_events(path))
        assert events == ALL_EVENTS[:-1]

    def test_complete_malformed_line_raises(self, tmp_path):
        # Corruption in the middle of a log (newline-terminated garbage)
        # must surface, not be skipped as if it were a truncation.
        from repro.obs import iter_events

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[4] = lines[4][:-15] + "<GARBAGE>"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed JSONL event"):
            list(iter_events(path))

    def test_blank_lines_skipped(self, tmp_path):
        from repro.obs import iter_events

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        body = path.read_text(encoding="utf-8").replace("\n", "\n\n")
        path.write_text(body, encoding="utf-8")
        assert list(iter_events(path)) == ALL_EVENTS

    def test_summarize_trace_streams_torn_log(self, tmp_path):
        from repro.obs import summarize_trace

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        full = path.read_text(encoding="utf-8")
        path.write_text(full.rstrip("\n")[: len(full) - 20], encoding="utf-8")
        summary = summarize_trace(path)
        assert summary.events_total == len(ALL_EVENTS) - 1
        assert "reconfig_applied" not in summary.event_counts


class TestMergeEvents:
    """Deterministic multi-log merge (the sharded-trace replay path)."""

    @staticmethod
    def _write(path, events):
        sink = JsonlSink(path)
        for event in events:
            sink.write(event)
        sink.close()

    def test_merges_by_slot_across_files(self, tmp_path):
        from repro.obs import merge_events

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._write(a, [ArrivalEvent(t=0, edge=0, count=1),
                        ArrivalEvent(t=2, edge=0, count=1)])
        self._write(b, [ArrivalEvent(t=1, edge=1, count=1),
                        ArrivalEvent(t=3, edge=1, count=1)])
        merged = list(merge_events([a, b]))
        assert [e.t for e in merged] == [0, 1, 2, 3]
        assert [e.edge for e in merged] == [0, 1, 0, 1]

    def test_equal_slots_tie_break_by_path_order_then_file_order(self, tmp_path):
        from repro.obs import merge_events

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._write(a, [ArrivalEvent(t=5, edge=0, count=10),
                        QueueShedEvent(t=5, edge=0, count=3)])
        self._write(b, [ArrivalEvent(t=5, edge=1, count=20)])
        first = list(merge_events([a, b]))
        # Within a slot: everything from the first path (in file order),
        # then the second — a pure function of the path list.
        assert [type(e).__name__ for e in first] == [
            "ArrivalEvent", "QueueShedEvent", "ArrivalEvent",
        ]
        assert [getattr(e, "edge", None) for e in first] == [0, 0, 1]
        swapped = list(merge_events([b, a]))
        assert [getattr(e, "edge", None) for e in swapped] == [1, 0, 0]

    def test_interleaving_is_independent_of_file_sizes(self, tmp_path):
        from repro.obs import merge_events

        # The same events split unevenly across logs merge identically:
        # the key is (slot, path index, in-file order), never file length.
        short = tmp_path / "short.jsonl"
        long = tmp_path / "long.jsonl"
        self._write(short, [ArrivalEvent(t=4, edge=0, count=1)])
        self._write(
            long,
            [ArrivalEvent(t=t, edge=1, count=1) for t in range(8)],
        )
        merged = [(e.t, e.edge) for e in merge_events([short, long])]
        # Slots ascend, and within slot 4 the short file (path index 0)
        # comes first even though the other log is eight times longer.
        assert [t for t, _ in merged] == sorted(t for t, _ in merged)
        slot4 = [edge for t, edge in merged if t == 4]
        assert slot4 == [0, 1]

    def test_slotless_events_sort_as_slot_zero(self, tmp_path):
        from repro.obs import merge_events

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._write(a, [ArrivalEvent(t=1, edge=0, count=1)])
        self._write(b, [SlotStartEvent(t=0, horizon=8)])
        merged = list(merge_events([a, b]))
        assert type(merged[0]).__name__ == "SlotStartEvent"

    def test_summarize_traces_single_path_matches_summarize_trace(
        self, tmp_path
    ):
        from repro.obs import summarize_trace, summarize_traces

        path = tmp_path / "run.jsonl"
        self._write(path, ALL_EVENTS)
        assert summarize_traces([path]) == summarize_trace(path)

    def test_split_trace_summarizes_like_the_whole(self, tmp_path):
        from repro.obs import summarize_trace, summarize_traces

        whole = tmp_path / "whole.jsonl"
        self._write(whole, sorted(ALL_EVENTS, key=lambda e: e.t))
        parts = [tmp_path / "p0.jsonl", tmp_path / "p1.jsonl", tmp_path / "p2.jsonl"]
        ordered = sorted(ALL_EVENTS, key=lambda e: e.t)
        for i, part in enumerate(parts):
            self._write(part, ordered[i::3])
        assert summarize_traces(parts) == summarize_trace(whole)
