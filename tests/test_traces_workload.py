"""Tests for the commuter workload trace generator."""

import numpy as np
import pytest

from repro.traces.workload import SLOTS_PER_DAY, WorkloadModel, generate_workload


class TestWorkloadModel:
    def test_shape(self):
        means = WorkloadModel().generate(5, 160, np.random.default_rng(0))
        assert means.shape == (5, 160)

    def test_positive(self):
        means = WorkloadModel().generate(3, 100, np.random.default_rng(1))
        assert np.all(means > 0)

    def test_station_scales_decrease_with_rank(self):
        scales = WorkloadModel().station_scales(10)
        assert np.all(np.diff(scales) < 0)
        assert scales[0] == pytest.approx(1.0)

    def test_zero_zipf_gives_equal_stations(self):
        scales = WorkloadModel(zipf_exponent=0.0).station_scales(5)
        np.testing.assert_allclose(scales, np.ones(5))

    def test_busier_stations_carry_more_traffic(self):
        means = WorkloadModel().generate(10, 160, np.random.default_rng(2))
        totals = means.sum(axis=1)
        assert totals[0] > totals[-1]

    def test_diurnal_double_peak(self):
        """Morning and evening peaks should both exceed the midday trough."""
        model = WorkloadModel(noise_sigma=0.0)
        means = model.generate(1, SLOTS_PER_DAY, np.random.default_rng(3))[0]
        hours = 5.0 + 20.0 * (np.arange(SLOTS_PER_DAY) + 0.5) / SLOTS_PER_DAY
        morning = means[(hours > 7.5) & (hours < 9.5)].max()
        midday = means[(hours > 11.5) & (hours < 14.5)].min()
        evening = means[(hours > 16.5) & (hours < 19.0)].max()
        assert morning > 1.5 * midday
        assert evening > 1.5 * midday

    def test_two_days_differ_with_noise(self):
        means = WorkloadModel().generate(1, 2 * SLOTS_PER_DAY, np.random.default_rng(4))[0]
        day1, day2 = means[:SLOTS_PER_DAY], means[SLOTS_PER_DAY:]
        assert not np.allclose(day1, day2)
        # ... but are strongly correlated (same diurnal profile).
        assert np.corrcoef(day1, day2)[0, 1] > 0.8

    def test_noiseless_days_repeat_exactly(self):
        model = WorkloadModel(noise_sigma=0.0)
        means = model.generate(1, 2 * SLOTS_PER_DAY, np.random.default_rng(5))[0]
        np.testing.assert_allclose(means[:SLOTS_PER_DAY], means[SLOTS_PER_DAY:])

    def test_base_mean_scales_volume(self):
        small = WorkloadModel(base_mean=10.0).generate(2, 40, np.random.default_rng(6))
        large = WorkloadModel(base_mean=100.0).generate(2, 40, np.random.default_rng(6))
        assert large.mean() == pytest.approx(10 * small.mean(), rel=1e-9)

    @pytest.mark.parametrize(
        "kwargs", [{"base_mean": 0}, {"zipf_exponent": -1}, {"noise_sigma": -0.1}]
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadModel(**kwargs)

    def test_invalid_generate_args(self):
        model = WorkloadModel()
        with pytest.raises(ValueError):
            model.generate(0, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.generate(2, 0, np.random.default_rng(0))

    def test_convenience_wrapper(self):
        means = generate_workload(2, 20, np.random.default_rng(7), base_mean=5.0)
        assert means.shape == (2, 20)
