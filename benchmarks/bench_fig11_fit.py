"""Benchmark + shape check for Fig. 11 (fit vs horizon)."""

from repro.experiments import fig11_fit

SEEDS = [0, 1]
# The sub-linear bend in the fit only shows past the default horizon, so
# this sweep reaches T=640 (cf. the paper's Fig. 11 x-axis).
HORIZONS = (40, 160, 640)
COMBOS = (("UCB", "Ran"), ("UCB", "TH"), ("UCB", "LY"))


def test_fig11(run_once):
    result = run_once(
        fig11_fit.run, fast=True, seeds=SEEDS, horizons=HORIZONS, combos=COMBOS
    )
    # Paper shape: ours' neutrality violation is the smallest and sub-linear;
    # cap-oblivious traders (UCB-Ran/TH) violate linearly.
    final = {label: values[-1] for label, values in result.fits.items()}
    assert final["Ours"] == min(final.values())
    assert result.is_sublinear("Ours")
    assert final["UCB-Ran"] > 10 * final["Ours"]
    assert final["UCB-TH"] > 10 * final["Ours"]
