"""Benchmark + shape check for Fig. 13 (per-slot accuracy, CIFAR-10-like)."""

from repro.experiments import fig13_accuracy_cifar

SEEDS = [0, 1]


def test_fig13(run_once):
    result = run_once(fig13_accuracy_cifar.run, fast=True, seeds=SEEDS)
    windows = result.windowed()
    # Same ordering as Fig. 12 on the second dataset.
    assert windows["Greedy-Ran"][-1] == min(values[-1] for values in windows.values())
    assert windows["Ours"][-1] > windows["Ours"][0]
    assert windows["Offline"][-1] >= windows["Ours"][-1] - 0.02
