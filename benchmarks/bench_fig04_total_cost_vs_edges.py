"""Benchmark + shape check for Fig. 4 (total cost vs number of edges)."""

from repro.experiments import fig04_total_cost_vs_edges

SEEDS = [0, 1]
EDGES = (5, 10)
COMBOS = (("Ran", "Ran"), ("Greedy", "LY"), ("TINF", "LY"), ("UCB", "LY"))


def test_fig04(run_once):
    result = run_once(
        fig04_total_cost_vs_edges.run,
        fast=True,
        seeds=SEEDS,
        edge_counts=EDGES,
        combos=COMBOS,
    )
    # Paper shape: ours lowest at every scale; reductions positive throughout.
    for i in range(len(EDGES)):
        online = {
            label: costs[i]
            for label, costs in result.costs.items()
            if label != "Offline"
        }
        assert online["Ours"] == min(online.values())
    reductions = result.reductions_vs()
    assert all(r > 0 for r in reductions.values())
