"""Benchmark + shape check for Fig. 7 (total cost vs initial carbon cap)."""

from repro.experiments import fig07_carbon_cap

SEEDS = [0, 1]
CAPS = (0.0, 500.0, 1000.0)


def test_fig07(run_once):
    result = run_once(fig07_carbon_cap.run, fast=True, seeds=SEEDS, caps=CAPS)
    # Paper shape: cap-aware methods (ours, Offline, UCB-LY) get cheaper as
    # the cap grows; UCB-Ran and UCB-TH ignore the cap entirely.
    assert result.slope("Ours") < 0
    assert result.slope("Offline") < 0
    assert result.slope("UCB-LY") < 0
    assert abs(result.slope("UCB-Ran")) < 1e-6
    assert abs(result.slope("UCB-TH")) < 1e-6
