"""Benchmark helpers.

Figure benchmarks execute a full (fast-mode) experiment once per benchmark
round — they measure end-to-end experiment latency and, as a side effect,
verify the figure's headline shape assertions on every run.

Engine and kernel benchmarks draw their workloads from the
:mod:`repro.bench` case registry (built on :class:`repro.RunSpec`), so
pytest-benchmark runs and ``repro bench`` measure exactly the same code
path users run.  Set ``REPRO_BENCH_OUT=<dir>`` to also emit the
schema-versioned ``BENCH_<suite>.json`` reports from a pytest run.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import report_filename, run_suite


@pytest.fixture()
def run_once(benchmark):
    """Run an expensive callable exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture(scope="session")
def emit_bench_report():
    """Write a suite's ``BENCH_<suite>.json`` when ``REPRO_BENCH_OUT`` is set.

    The emission re-measures through :func:`repro.bench.run_suite` (smoke
    mode) so the written report carries the registry's canonical timing
    protocol, machine fingerprint, and derived ratios — identical in shape
    to what ``repro bench`` writes.
    """
    outdir = os.environ.get("REPRO_BENCH_OUT")

    def emit(suite: str) -> str:
        if not outdir:
            pytest.skip("set REPRO_BENCH_OUT=<dir> to emit BENCH reports")
        os.makedirs(outdir, exist_ok=True)
        report = run_suite(suite, smoke=True)
        return report.write(os.path.join(outdir, report_filename(suite)))

    return emit
