"""Benchmark helpers.

Figure benchmarks execute a full (fast-mode) experiment once per benchmark
round — they measure end-to-end experiment latency and, as a side effect,
verify the figure's headline shape assertions on every run.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an expensive callable exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
