"""Benchmark + shape check for Fig. 14 (algorithm execution time)."""

from repro.experiments import fig14_runtime

EDGES = (5, 10, 20)


def test_fig14(run_once):
    result = run_once(fig14_runtime.run, fast=True, edge_counts=EDGES, horizon=60)
    # Paper shape: Algorithm 1 cost grows with the number of edges (one
    # instance per edge); Algorithm 2 is edge-count independent; both are
    # orders of magnitude below the 900 s slot length.
    assert result.alg1_scales_with_edges()
    assert max(result.alg1_seconds_per_slot) < 90.0
    assert max(result.alg2_seconds_per_slot) < 1.0
    assert max(result.alg2_seconds_per_slot) < max(result.alg1_seconds_per_slot)
