"""Microbenchmarks of the paper's algorithmic kernels.

These run many rounds (unlike the figure benchmarks) and track the hot
paths: the Tsallis OMD solve (scalar and the batched per-block form the
vectorized engine uses), block-schedule construction, one Algorithm-1
block transition, and one Algorithm-2 primal-dual step.
``test_emit_bench_report`` writes ``BENCH_core.json`` when
``REPRO_BENCH_OUT`` is set.
"""

import numpy as np

from repro.core.blocks import build_schedule
from repro.core.carbon_trading import OnlineCarbonTrading
from repro.core.model_selection import OnlineModelSelection
from repro.core.tsallis import (
    tsallis_inf_probabilities,
    tsallis_inf_probabilities_batch,
)
from repro.policies.trading import TradeDecision, TradingContext


def test_tsallis_solver_small(benchmark):
    losses = np.random.default_rng(0).uniform(0, 100, size=6)
    p = benchmark(tsallis_inf_probabilities, losses, 0.5)
    assert abs(p.sum() - 1.0) < 1e-6


def test_tsallis_solver_many_arms(benchmark):
    losses = np.random.default_rng(1).uniform(0, 100, size=256)
    p = benchmark(tsallis_inf_probabilities, losses, 0.1)
    assert abs(p.sum() - 1.0) < 1e-6


def test_tsallis_solver_batched(benchmark):
    """64 independent solves in one call — the per-block vectorized form."""
    rng = np.random.default_rng(2)
    losses = rng.uniform(0, 100, size=(64, 6))
    etas = rng.uniform(0.1, 2.5, size=64)
    p = benchmark(tsallis_inf_probabilities_batch, losses, etas)
    assert np.allclose(p.sum(axis=1), 1.0, atol=1e-6)


def test_block_schedule_construction(benchmark):
    schedule = benchmark(build_schedule, 10000, 3.0, 6)
    assert int(schedule.lengths.sum()) == 10000


def test_algorithm1_full_horizon(benchmark):
    """A full 160-slot select/observe loop for one edge."""

    def run():
        policy = OnlineModelSelection(6, 160, 2.5, np.random.default_rng(2))
        for t in range(160):
            model = policy.select(t)
            policy.observe(t, model, 0.5)
        return policy

    policy = benchmark(run)
    assert policy.selection_counts.sum() == 160


def test_algorithm2_step(benchmark):
    policy = OnlineCarbonTrading()
    context = TradingContext(
        t=1, horizon=160, cap=500.0,
        buy_price=8.0, sell_price=7.2, prev_buy_price=8.2, prev_sell_price=7.4,
        prev_emissions=25.0, cumulative_emissions=25.0, holdings=500.0,
        mean_slot_emissions=25.0, trade_bound=100.0,
    )

    def step():
        decision = policy.decide(context)
        policy.observe(context, decision, 25.0)
        return decision

    decision = benchmark(step)
    assert decision.buy >= 0.0


def test_emit_bench_report(emit_bench_report):
    emit_bench_report("core")
