"""Benchmark + shape check for Fig. 6 (total cost vs carbon emission rate)."""

from repro.experiments import fig06_emission_rate

SEEDS = [0, 1]
RATES = (0.25, 1.0)


def test_fig06(run_once):
    result = run_once(fig06_emission_rate.run, fast=True, seeds=SEEDS, rates=RATES)
    # Paper shape: cost rises with the emission rate for cap-respecting
    # methods, and ours stays below every Lyapunov combo.
    assert result.costs["Ours"][-1] > result.costs["Ours"][0]
    assert result.costs["Offline"][-1] > result.costs["Offline"][0]
    for i in range(len(RATES)):
        assert result.costs["Ours"][i] < result.costs["Greedy-LY"][i]
        assert result.costs["Ours"][i] < result.costs["TINF-LY"][i]
        assert result.costs["Ours"][i] < result.costs["UCB-LY"][i]
