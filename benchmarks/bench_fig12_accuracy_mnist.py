"""Benchmark + shape check for Fig. 12 (per-slot accuracy, MNIST-like)."""

from repro.experiments import fig12_accuracy_mnist

SEEDS = [0, 1]


def test_fig12(run_once):
    result = run_once(fig12_accuracy_mnist.run, fast=True, seeds=SEEDS)
    windows = result.windowed()
    # Paper shape: Offline on top, Greedy-Ran worst, ours improves over time.
    assert windows["Offline"][-1] >= max(
        values[-1] for label, values in windows.items() if label != "Offline"
    ) - 0.02
    assert windows["Greedy-Ran"][-1] == min(values[-1] for values in windows.values())
    assert windows["Ours"][-1] > windows["Ours"][0]
