"""Benchmark + shape check for the price-forecasting extension experiment."""

from repro.experiments import ext_forecast

SEEDS = [0, 1]


def test_ext_forecast(run_once):
    result = run_once(ext_forecast.run, fast=True, seeds=SEEDS)
    regimes = {name: j for j, name in enumerate(result.regimes)}
    mr = regimes["mean-reverting"]
    # On a predictable market the forecaster's early buying collapses the
    # violation at a small unit-price premium.
    assert result.fit_forecast[mr] < 0.5 * result.fit_plain[mr]
    assert result.unit_cost_forecast[mr] < 1.10 * result.unit_cost_plain[mr]
    # On every regime the forecaster never violates much more than vanilla.
    for j in range(len(result.regimes)):
        assert result.fit_forecast[j] < result.fit_plain[j] + 5.0
