"""Benchmark + shape check for Fig. 9 (trading volume vs workload)."""

import numpy as np

from repro.experiments import fig09_trading_vs_workload

SEEDS = [0, 1]


def test_fig09(run_once):
    result = run_once(fig09_trading_vs_workload.run, fast=True, seeds=SEEDS)
    # Paper shape: ours' net purchases track the workload; UCB-Ran/TH do not;
    # ours pays the least per net allowance acquired.
    assert result.workload_correlation("Ours") > 0.5
    assert result.workload_correlation("UCB-Ran") < 0.3
    assert result.workload_correlation("UCB-TH") < 0.3
    ours_unit = result.unit_costs["Ours"]
    for label, unit in result.unit_costs.items():
        if label != "Ours" and not np.isnan(unit):
            assert ours_unit <= unit + 1e-9
