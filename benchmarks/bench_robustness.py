"""Robustness study: trading under a mid-horizon carbon-price regime shift.

Builds the default scenario but replaces the price trace with a
:class:`RegimeShiftPriceModel` series (the whole EU-permit band jumps ~30%
half-way).  Both the paper's Algorithm 2 and the forecasting extension must
keep the neutrality violation bounded across the shift, and the forecaster
must not pay more than the vanilla rule once the new regime settles.
"""

import dataclasses

import numpy as np

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.forecast.trading import ForecastCarbonTrading
from repro.sim import ScenarioConfig, Simulator, build_scenario
from repro.traces.carbon_prices import RegimeShiftPriceModel
from repro.utils.rng import RngFactory, spawn_generator

SEEDS = [0, 1, 2]


def shifted_scenario():
    config = ScenarioConfig(dataset="synthetic", num_edges=6, horizon=160)
    scenario = build_scenario(config)
    prices = RegimeShiftPriceModel().generate(
        config.horizon, spawn_generator(config.seed, "shifted-prices")
    )
    return dataclasses.replace(scenario, prices=prices), config


def run_policy(policy_factory):
    scenario, config = shifted_scenario()
    fits, costs = [], []
    for seed in SEEDS:
        rng = RngFactory(seed)
        selection = [
            OnlineModelSelection(
                scenario.num_models,
                scenario.horizon,
                float(scenario.effective_switch_costs()[i]),
                rng.get(f"sel-{i}"),
            )
            for i in range(scenario.num_edges)
        ]
        result = Simulator(scenario, selection, policy_factory(), run_seed=seed).run()
        fits.append(result.final_fit())
        costs.append(float(result.trading_cost.sum()))
    return float(np.mean(fits)), float(np.mean(costs))


def test_algorithm2_survives_regime_shift(run_once):
    fit, _ = run_once(run_policy, OnlineCarbonTrading)
    scenario, _ = shifted_scenario()
    # Violation stays a small fraction of total emissions despite the shock.
    total_emissions = 160 * scenario.estimated_slot_emissions()
    assert fit < 0.05 * total_emissions


def test_forecaster_competitive_under_shift(run_once):
    def compare():
        return run_policy(OnlineCarbonTrading), run_policy(ForecastCarbonTrading)

    (fit_plain, cost_plain), (fit_forecast, cost_forecast) = run_once(compare)
    scenario, _ = shifted_scenario()
    total_emissions = 160 * scenario.estimated_slot_emissions()
    assert fit_forecast < 0.05 * total_emissions
    # Forecasting must stay within a few percent of vanilla trading cost
    # even when its model is briefly wrong after the shift.
    assert cost_forecast < 1.10 * cost_plain
