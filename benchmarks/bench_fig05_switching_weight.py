"""Benchmark + shape check for Fig. 5 (total cost vs switching weight)."""

from repro.experiments import fig05_switching_weight

SEEDS = [0, 1]
SWEEP = (1.0, 8.0)


def test_fig05(run_once):
    result = run_once(fig05_switching_weight.run, fast=True, seeds=SEEDS, sweep=SWEEP)
    # Paper shape: ours stays (near) flat while switching-oblivious baselines
    # blow up; ours lowest among online methods at the top weight.
    assert result.relative_growth("Ours") < result.relative_growth("Ran-LY")
    assert result.relative_growth("Ours") < result.relative_growth("TINF-LY")
    top = {k: v[-1] for k, v in result.costs.items() if k not in ("Offline", "Greedy-LY")}
    assert top["Ours"] == min(top.values())
