"""Benchmark + shape check for Fig. 3 (cumulative total cost over time)."""

from repro.experiments import fig03_cumulative_cost

SEEDS = [0, 1]
COMBOS = (("Ran", "Ran"), ("Greedy", "LY"), ("UCB", "LY"))


def test_fig03(run_once):
    result = run_once(fig03_cumulative_cost.run, fast=True, seeds=SEEDS, combos=COMBOS)
    finals = result.final_costs()
    # Paper shape: ours grows slowest among online methods, closest to Offline.
    online = {k: v for k, v in finals.items() if k != "Offline"}
    assert finals["Ours"] == min(online.values())
    assert finals["Offline"] <= finals["Ours"]
