"""Ablation: block-based Tsallis-INF vs slot-level Tsallis-INF (Insight 1).

The only difference between "Ours" and the "TINF" baseline is the Theorem-1
block schedule.  This ablation quantifies what the blocks buy: a large
reduction in switching cost at a modest exploration penalty, with total cost
strictly better once switching is non-trivial.
"""

import numpy as np

from repro.experiments.runner import run_combo
from repro.metrics import summarize_many
from repro.sim import ScenarioConfig, build_scenario

SEEDS = [0, 1, 2]


def compare(switching_weight: float):
    config = ScenarioConfig(
        dataset="synthetic", num_edges=6, horizon=160, switching_weight=switching_weight
    )
    scenario = build_scenario(config)
    weights = config.weights
    blocks = summarize_many(
        [run_combo(scenario, "Ours", "Ours", s) for s in SEEDS], weights, "blocks"
    )
    slotwise = summarize_many(
        [run_combo(scenario, "TINF", "Ours", s) for s in SEEDS], weights, "slotwise"
    )
    return blocks, slotwise


def test_blocks_cut_switching_cost(run_once):
    blocks, slotwise = run_once(compare, 1.0)
    assert blocks.switching_cost < 0.5 * slotwise.switching_cost
    assert blocks.switches < slotwise.switches


def test_blocks_win_total_cost_at_high_switching_weight(run_once):
    blocks, slotwise = run_once(compare, 8.0)
    assert blocks.total_cost < slotwise.total_cost
    # The price of the blocks: less exploration, so inference cost is higher
    # — but by a bounded factor, while switching cost shrinks by ~10x.
    assert blocks.inference_cost < 3.0 * slotwise.inference_cost
