"""End-to-end simulator throughput: scalar reference loop vs vectorized engine.

Every case comes from the :mod:`repro.bench` registry, which builds its
workloads from a :class:`repro.RunSpec` — the same construction path
``repro.run`` and the sweep engine use — so these numbers describe what
users actually execute.  ``test_emit_bench_report`` writes the suite's
``BENCH_simulator.json`` when ``REPRO_BENCH_OUT`` is set; committed
baselines live in ``benchmarks/baselines/``.
"""

import pytest

from repro.bench import suite_cases
from repro.sim import ScenarioConfig, Simulator
from repro.sim.io import result_digest
from repro.spec import RunSpec

CASES = {case.name: case for case in suite_cases("simulator")}


@pytest.mark.parametrize("name", sorted(CASES))
def test_simulator_case(benchmark, name):
    case = CASES[name]
    thunk = case.build()
    benchmark.pedantic(thunk, rounds=case.rounds, iterations=1)


def test_engines_agree_bitwise():
    """The two engines the suite compares must produce one digest."""
    spec = RunSpec(
        scenario=ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160),
        selection="Ours",
        trading="Ours",
        seed=0,
    )
    scenario = spec.build_scenario()
    scalar = Simulator.from_spec(scenario, spec).run(vectorized=False)
    vector = Simulator.from_spec(scenario, spec).run(vectorized=True)
    assert result_digest(scalar) == result_digest(vector)


def test_emit_bench_report(emit_bench_report):
    emit_bench_report("simulator")
