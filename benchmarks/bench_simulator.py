"""End-to-end simulator throughput and scenario-build latency."""

from repro.experiments.runner import run_combo
from repro.sim import ScenarioConfig, build_scenario


def test_scenario_build(benchmark):
    config = ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160)
    scenario = benchmark(build_scenario, config)
    assert scenario.num_edges == 10


def test_full_simulation_ours(benchmark):
    config = ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160)
    scenario = build_scenario(config)
    result = benchmark.pedantic(
        run_combo, args=(scenario, "Ours", "Ours", 0), rounds=3, iterations=1
    )
    assert result.horizon == 160


def test_full_simulation_random(benchmark):
    config = ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160)
    scenario = build_scenario(config)
    result = benchmark.pedantic(
        run_combo, args=(scenario, "Ran", "Ran", 0), rounds=3, iterations=1
    )
    assert result.horizon == 160
