"""Inference throughput of the numpy model zoo.

Grounds the latency model: the zoo's real forward-pass costs should be
ordered roughly like the paper's per-model computation costs ``v_{i,n}``
(bigger models slower).
"""

import numpy as np
import pytest

from repro.nn.models import build_cnn, build_lenet5, build_mlp, build_mobilenet_tiny

BATCH = 64


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(0).random((BATCH, 1, 8, 8))


@pytest.fixture(scope="module")
def batch3():
    return np.random.default_rng(0).random((BATCH, 3, 8, 8))


def test_mlp_forward(benchmark, batch):
    net = build_mlp(np.random.default_rng(1), hidden=128)
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_cnn_forward(benchmark, batch):
    net = build_cnn(np.random.default_rng(2), channels=(32, 64))
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_lenet5_forward(benchmark, batch):
    net = build_lenet5(np.random.default_rng(3))
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_mobilenet_forward(benchmark, batch3):
    net = build_mobilenet_tiny(np.random.default_rng(4), width=16)
    out = benchmark(net.predict_proba, batch3)
    assert out.shape == (BATCH, 10)
