"""Inference throughput of the numpy model zoo.

Grounds the latency model: the zoo's real forward-pass costs should be
ordered roughly like the paper's per-model computation costs ``v_{i,n}``
(bigger models slower).  The batch-size sweep demonstrates the batched
matrix-matrix path the simulator's slot kernels rely on: one
``predict_proba`` call over a slot's samples beats sample-at-a-time
forwards by a wide margin.  ``test_emit_bench_report`` writes
``BENCH_nn.json`` when ``REPRO_BENCH_OUT`` is set.
"""

import numpy as np
import pytest

from repro.nn.models import build_cnn, build_lenet5, build_mlp, build_mobilenet_tiny

BATCH = 64


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(0).random((BATCH, 1, 8, 8))


@pytest.fixture(scope="module")
def batch3():
    return np.random.default_rng(0).random((BATCH, 3, 8, 8))


def test_mlp_forward(benchmark, batch):
    net = build_mlp(np.random.default_rng(1), hidden=128)
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_cnn_forward(benchmark, batch):
    net = build_cnn(np.random.default_rng(2), channels=(32, 64))
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_lenet5_forward(benchmark, batch):
    net = build_lenet5(np.random.default_rng(3))
    out = benchmark(net.predict_proba, batch)
    assert out.shape == (BATCH, 10)


def test_mobilenet_forward(benchmark, batch3):
    net = build_mobilenet_tiny(np.random.default_rng(4), width=16)
    out = benchmark(net.predict_proba, batch3)
    assert out.shape == (BATCH, 10)


@pytest.mark.parametrize("size", (1, 8, 64))
def test_mlp_batch_sweep(benchmark, batch, size):
    """Per-call latency across batch sizes (matrix-matrix amortization)."""
    net = build_mlp(np.random.default_rng(1), hidden=128)
    chunk = batch[:size]

    out = benchmark(net.predict_proba, chunk)
    assert out.shape == (size, 10)


def test_batched_forward_matches_per_sample(batch):
    """One batched forward agrees with stacked per-sample forwards.

    Agreement is numerical, not bitwise: BLAS blocks a (64, d) matmul
    differently from 64 (1, d) matvecs.  This is precisely why the
    vectorized simulator keeps its forward-pass shapes identical to the
    scalar kernel's (per-slot batches) instead of fusing whole blocks —
    the golden digests require bit equality, which batching across the
    existing call boundaries would break.
    """
    net = build_mlp(np.random.default_rng(5), hidden=64)
    together = net.predict_proba(batch)
    apart = np.vstack([net.predict_proba(batch[i : i + 1]) for i in range(BATCH)])
    np.testing.assert_allclose(together, apart, rtol=1e-12, atol=1e-15)


def test_emit_bench_report(emit_bench_report):
    emit_bench_report("nn")
