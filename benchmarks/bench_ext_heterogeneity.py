"""Benchmark + shape check for the per-edge heterogeneity extension.

Asserts the headline crossover: with a specialist zoo and biased edges, the
per-edge bandit's sub-linear exploration cost eventually undercuts the
linear heterogeneity penalty of hosting one global model everywhere.
"""

from repro.experiments import ext_heterogeneity


def test_ext_heterogeneity_crossover(run_once):
    result = run_once(
        ext_heterogeneity.run, fast=True, seeds=[0, 1], horizons=(160, 2560)
    )
    assert result.distinct_best_models >= 2
    # At the short horizon exploration dominates; at the long one ours wins.
    assert result.ours[0] > result.global_fixed[0]
    assert result.crossover_reached()
    # Oracle remains the lower bound throughout.
    for j in range(2):
        assert result.oracle_fixed[j] <= min(result.ours[j], result.global_fixed[j])
