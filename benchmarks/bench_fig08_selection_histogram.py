"""Benchmark + shape check for Fig. 8 (selections vs expected loss)."""

import numpy as np

from repro.experiments import fig08_selection_histogram

SEEDS = [0, 1, 2]


def test_fig08(run_once):
    result = run_once(fig08_selection_histogram.run, fast=True, seeds=SEEDS)
    # Paper shape: selection frequency rises as expected loss falls.
    assert result.loss_count_correlation() < -0.4
    best = int(np.argmin(result.expected_losses))
    assert result.ours_counts[best] == result.ours_counts.max()
    # Offline picks a low-loss model; Greedy the lowest-energy (small) one.
    assert result.expected_losses[result.offline_choice] <= np.median(
        result.expected_losses
    )
