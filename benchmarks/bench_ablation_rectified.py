"""Ablation: rectified (proximal) primal step vs memoryless online gradient.

Algorithm 2's primal step anchors each decision at the previous one
(``rectified=True``); the ablation recomputes decisions from zero each slot.
With a well-tuned dual step the two are statistically indistinguishable —
the dual variable integrates the constraint pressure either way.  The
rectified step's measurable value is *robustness*: when the dual step size
is set too small (a slow multiplier), the proximal anchor lets the trade
volume keep accumulating and the neutrality violation stays markedly lower.
"""

import numpy as np

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.sim import ScenarioConfig, Simulator, build_scenario
from repro.utils.rng import RngFactory

SEEDS = [0, 1, 2]


def run_variant(rectified: bool, gamma1: float) -> float:
    """Mean final fit over seeds for one (variant, dual step) pair."""
    config = ScenarioConfig(dataset="synthetic", num_edges=6, horizon=160)
    scenario = build_scenario(config)
    fits = []
    for seed in SEEDS:
        rng = RngFactory(seed)
        selection = [
            OnlineModelSelection(
                scenario.num_models,
                scenario.horizon,
                float(scenario.effective_switch_costs()[i]),
                rng.get(f"sel-{i}"),
            )
            for i in range(scenario.num_edges)
        ]
        trading = OnlineCarbonTrading(gamma1=gamma1, gamma2=4.0, rectified=rectified)
        result = Simulator(scenario, selection, trading, run_seed=seed).run()
        fits.append(result.final_fit())
    return float(np.mean(fits))


def test_rectified_robust_to_slow_dual(run_once):
    def compare():
        return run_variant(True, 0.02), run_variant(False, 0.02)

    fit_rect, fit_plain = run_once(compare)
    # With a 10x-too-small dual step, the proximal anchor keeps covering.
    assert fit_rect < 0.9 * fit_plain


def test_variants_equivalent_when_tuned(run_once):
    def compare():
        return run_variant(True, 0.2), run_variant(False, 0.2)

    fit_rect, fit_plain = run_once(compare)
    assert fit_rect == pytest_approx_ratio(fit_plain, 0.35)


def pytest_approx_ratio(value: float, tolerance: float):
    """An approx-equality helper expressed as a relative band."""
    import pytest

    return pytest.approx(value, rel=tolerance)
