"""Tracing overhead: no-op tracer vs live sinks vs the untraced baseline.

The observability subsystem's hot-path budget is one attribute read per
instrumentation site when tracing is off.  This benchmark quantifies that:
it times the full default scenario (10 edges, 160 slots, "Ours"+"Ours")

* untraced (the seed baseline — ``tracer=None`` → ``NULL_TRACER``),
* with an enabled :class:`Tracer` fanning into an ``InMemorySink``,
* with a :class:`JsonlSink` writing to a scratch file,

and reports each variant's percentage overhead against the baseline.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py

or as a script for a quick one-shot table::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import os
import tempfile
import time

from repro.experiments.runner import run_combo
from repro.obs import InMemorySink, JsonlSink, Tracer
from repro.sim import ScenarioConfig, build_scenario


def _scenario():
    return build_scenario(ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160))


def test_untraced_baseline(benchmark):
    scenario = _scenario()
    result = benchmark.pedantic(
        run_combo, args=(scenario, "Ours", "Ours", 0), rounds=3, iterations=1
    )
    assert result.horizon == 160


def test_noop_tracer(benchmark):
    # Same run with the default NullTracer made explicit: the difference to
    # the baseline is pure guard cost and must stay within noise (<5%).
    scenario = _scenario()
    result = benchmark.pedantic(
        run_combo,
        args=(scenario, "Ours", "Ours", 0),
        kwargs={"tracer": None},
        rounds=3,
        iterations=1,
    )
    assert result.horizon == 160


def test_in_memory_tracer(benchmark):
    scenario = _scenario()

    def traced():
        return run_combo(scenario, "Ours", "Ours", 0, tracer=Tracer([InMemorySink()]))

    result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.horizon == 160


def test_jsonl_tracer(benchmark, tmp_path):
    scenario = _scenario()

    def traced():
        sink = JsonlSink(tmp_path / "trace.jsonl")
        out = run_combo(scenario, "Ours", "Ours", 0, tracer=Tracer([sink]))
        sink.close()
        return out

    result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.horizon == 160


def _time(fn, repeats: int = 5) -> float:
    """Best-of-N wall time of ``fn`` in seconds (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    scenario = _scenario()
    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = os.path.join(tmp, "trace.jsonl")

        def untraced():
            run_combo(scenario, "Ours", "Ours", 0)

        def in_memory():
            run_combo(scenario, "Ours", "Ours", 0, tracer=Tracer([InMemorySink()]))

        def jsonl():
            sink = JsonlSink(jsonl_path)
            run_combo(scenario, "Ours", "Ours", 0, tracer=Tracer([sink]))
            sink.close()

        untraced()  # warm caches before timing
        baseline = _time(untraced)
        variants = [("no-op (default)", _time(untraced)),
                    ("in-memory sink", _time(in_memory)),
                    ("jsonl sink", _time(jsonl))]

    print(f"baseline (untraced): {baseline * 1e3:8.2f} ms")
    for label, seconds in variants:
        overhead = 100.0 * (seconds - baseline) / baseline
        print(f"{label:<20}: {seconds * 1e3:8.2f} ms  ({overhead:+6.1f}%)")


if __name__ == "__main__":
    main()
