"""Benchmark + shape check for Fig. 10 (regret for P0 vs horizon)."""

from repro.experiments import fig10_regret

SEEDS = [0, 1]
HORIZONS = (40, 80, 160)
COMBOS = (("Ran", "LY"), ("UCB", "LY"))


def test_fig10(run_once):
    result = run_once(
        fig10_regret.run, fast=True, seeds=SEEDS, horizons=HORIZONS, combos=COMBOS
    )
    # Paper shape: ours has the lowest regret and grows sub-linearly.
    final = {label: values[-1] for label, values in result.regrets.items()}
    assert final["Ours"] == min(final.values())
    assert result.is_sublinear("Ours")
