"""Edge fleet scaling: operating cost and learning quality from 5 to 40 edges.

Reproduces the Fig. 4 scaling story as a user would run it: for growing
fleets, compare the paper's approach against the strongest baseline combo
(UCB2 + Lyapunov) and the offline optimum, and report where the cost goes
as the fleet grows (switching stays bounded per edge, trading scales with
total workload).

Run:  python examples/edge_fleet_scaling.py
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_combo, run_offline
from repro.metrics import summarize_many
from repro.sim import ScenarioConfig, build_scenario

FLEETS = (5, 10, 20, 40)
SEEDS = [0, 1, 2]


def main() -> None:
    rows = []
    for num_edges in FLEETS:
        config = ScenarioConfig(dataset="synthetic", num_edges=num_edges)
        scenario = build_scenario(config)
        weights = config.weights

        ours = summarize_many(
            [run_combo(scenario, "Ours", "Ours", s) for s in SEEDS], weights, "Ours"
        )
        ucb_ly = summarize_many(
            [run_combo(scenario, "UCB", "LY", s) for s in SEEDS], weights, "UCB-LY"
        )
        offline = summarize_many(
            [run_offline(scenario, s) for s in SEEDS], weights, "Offline"
        )
        saving = 100 * (1 - ours.total_cost / ucb_ly.total_cost)
        rows.append(
            [
                num_edges,
                ours.total_cost,
                ucb_ly.total_cost,
                offline.total_cost,
                saving,
                ours.switches / num_edges,
                ours.mean_accuracy,
            ]
        )
    print(
        format_table(
            [
                "edges",
                "Ours cost",
                "UCB-LY cost",
                "Offline cost",
                "saving vs UCB-LY %",
                "downloads/edge",
                "accuracy",
            ],
            rows,
            title="Fleet scaling (2-day horizon, paper defaults)",
            precision=1,
        )
    )
    costs = np.array([row[1] for row in rows])
    print(
        f"\nCost per edge stays roughly constant: "
        f"{', '.join(f'{c / f:.0f}' for c, f in zip(costs, FLEETS))}"
        " cost units/edge across the sweep."
    )


if __name__ == "__main__":
    main()
