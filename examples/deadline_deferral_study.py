"""Deadline deferral study: what the ingress tier buys under a load spike.

Drives the same spike-shaped request stream through the serve runtime
twice with a per-slot release budget — once with the carbon-aware
deferral router (EDF release order, price look-ahead, SLA priorities)
and once with the deferral-blind FIFO regime — and compares per-class
deadline-hit rates, deferral latency, emissions, and trading cost.

The punchline mirrors the paper's slack-exploitation story: when the
spike exceeds the slot budget, FIFO burns the budget on whatever arrived
first, so delay-sensitive interactive requests queue behind deferrable
batch work and miss their deadlines.  The deadline-aware router releases
by urgency and parks deferrable work for cheaper slots, cutting the miss
rate at equal request volume and equal-or-lower carbon cost.

Run:  python examples/deadline_deferral_study.py
"""

from repro.experiments.reporting import format_table
from repro.ingress import IngressConfig
from repro.obs import Tracer
from repro.serve import ServeConfig, make_runtime
from repro.sim import ScenarioConfig

#: Per-slot release budget — tight enough that the spike must queue.
SLOT_CAPACITY = 8

#: Total requests across the horizon (the spike concentrates ~40% of them).
TOTAL_EVENTS = 4800


def run_one(deferral: bool) -> tuple[dict, object]:
    """One serve run; returns (ingress summary, sim result)."""
    ingress = IngressConfig(deferral=deferral, slot_capacity=SLOT_CAPACITY)
    config = ServeConfig(
        scenario=ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160),
        adapter="shape",
        shape="spike",
        shape_total_events=TOTAL_EVENTS,
        seed=0,
        label=f"deferral-{'on' if deferral else 'off'}",
        ingress=ingress.to_dict(),
    )
    runtime = make_runtime(config, tracer=Tracer())
    result = runtime.run()
    return runtime.ingress.summary(), result


def main() -> None:
    summary_off, result_off = run_one(deferral=False)
    summary_on, result_on = run_one(deferral=True)

    rows = []
    for label, summary, result in (
        ("FIFO (deferral off)", summary_off, result_off),
        ("EDF + look-ahead", summary_on, result_on),
    ):
        misses = summary["deadline_misses"]
        released = summary["requests_released"]
        rows.append([
            label,
            summary["requests_in"],
            summary["requests_deferred"],
            f"{misses / released:.3f}" if released else "n/a",
            " ".join(
                f"{name}={row['hit_rate']:.2f}"
                for name, row in summary["per_class"].items()
                if row["hit_rate"] is not None
            ),
            float(result.emissions.sum()),
            float(result.trading_cost.sum()),
        ])
    print(format_table(
        ["router", "requests", "deferred", "miss rate", "per-class hit",
         "emissions kg", "trading cost"],
        rows,
        title=f"Spike load, slot budget {SLOT_CAPACITY} "
              f"(requests conserved in both runs)",
    ))

    miss_off = summary_off["deadline_misses"] / summary_off["requests_released"]
    miss_on = summary_on["deadline_misses"] / summary_on["requests_released"]
    carbon_off = float(result_off.emissions.sum())
    carbon_on = float(result_on.emissions.sum())

    # The comparison the study exists to make: both routers serve every
    # request (conservation), but only the deadline-aware one meets SLAs.
    assert summary_on["requests_in"] == summary_off["requests_in"]
    assert miss_on < miss_off, (miss_on, miss_off)
    assert carbon_on <= carbon_off * 1.02, (carbon_on, carbon_off)
    print(
        f"\ndeferral cuts the deadline-miss rate {miss_off:.3f} -> {miss_on:.3f} "
        f"at {'equal' if carbon_on <= carbon_off else 'near-equal'} carbon "
        f"({carbon_off:.1f} -> {carbon_on:.1f} kg)"
    )


if __name__ == "__main__":
    main()
