"""Carbon market study: how trading policy choice affects cost and neutrality.

Fixes the model-selection policy to the paper's Algorithm 1 and swaps the
trading side between the paper's Algorithm 2, the three baselines (Random,
Threshold, Lyapunov), and the exact offline trading LP, under three carbon
caps.  Shows the paper's Fig. 7/9/11 story in one table: only cap-aware
policies respond to the cap, and Algorithm 2 achieves near-neutrality at the
lowest effective allowance price.

Run:  python examples/carbon_market_study.py
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.runner import make_selection_policies, make_trading_policy, run_offline
from repro.sim import ScenarioConfig, Simulator, build_scenario
from repro.utils.rng import RngFactory

TRADERS = ("Ours", "Ran", "TH", "LY")
CAPS = (0.0, 500.0, 2000.0)
SEEDS = (0, 1, 2)


def run_trader(scenario, trader_name: str, seed: int):
    rng = RngFactory(seed).child(trader_name)
    selection = make_selection_policies("Ours", scenario, rng)
    trading = make_trading_policy(trader_name, scenario, rng)
    return Simulator(
        scenario, selection, trading, run_seed=seed, label=trader_name
    ).run()


def main() -> None:
    rows = []
    for cap in CAPS:
        config = ScenarioConfig(dataset="synthetic", carbon_cap_kg=cap)
        scenario = build_scenario(config)
        for trader in TRADERS:
            results = [run_trader(scenario, trader, seed) for seed in SEEDS]
            trading_cost = float(np.mean([r.trading_cost.sum() for r in results]))
            fit = float(np.mean([r.final_fit() for r in results]))
            emissions = float(np.mean([r.emissions.sum() for r in results]))
            units = [r.unit_purchase_cost() for r in results]
            finite = [u for u in units if not np.isnan(u)]
            unit = float(np.mean(finite)) if finite else float("nan")
            rows.append(
                [f"R={cap:g}", trader, trading_cost, fit, 100 * fit / emissions, unit]
            )
        offline = [run_offline(scenario, seed) for seed in SEEDS]
        rows.append(
            [
                f"R={cap:g}",
                "Offline-LP",
                float(np.mean([r.trading_cost.sum() for r in offline])),
                float(np.mean([r.final_fit() for r in offline])),
                0.0,
                float(np.mean([r.unit_purchase_cost() for r in offline])),
            ]
        )
    print(
        format_table(
            ["cap", "trader", "trading cost (cent)", "fit (kg)", "fit %", "unit cost (cent/kg)"],
            rows,
            title="Trading policy comparison under Algorithm-1 model selection",
            precision=1,
        )
    )
    print(
        "\nReading guide: 'fit' is uncovered emissions at the end of the two days;\n"
        "Algorithm 2 ('Ours') should be near-neutral at a unit price close to the\n"
        "offline LP, while Ran/TH leave large violations or pay more per kg."
    )


if __name__ == "__main__":
    main()
