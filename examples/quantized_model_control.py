"""Quantization-aware model control (paper future work, Section VII).

Doubles the bandit's arm set with int8-quantized variants of the trained
MNIST-like zoo: each variant is a real quantized numpy network with its own
measured loss table, 4x smaller download size (cheaper switching, less
transfer energy) and slightly lower accuracy.  Algorithm 1 then learns
*online* whether the energy savings of a quantized model justify its loss —
exactly the quantization-aware carbon/energy control the paper sketches for
future work.

Run:  python examples/quantized_model_control.py   (trains the zoo once, ~30 s)
"""

import numpy as np

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.experiments.reporting import format_table
from repro.metrics import summarize_run
from repro.sim import ScenarioConfig, Simulator, build_scenario_with_profiles
from repro.sim.zoo import quantized_trained_profiles, trained_pool, trained_profiles
from repro.utils.rng import RngFactory

ZOO_KWARGS = dict(zoo_seed=1234, n_train=1500, n_test=3000, image_size=8)


def run(profiles, label: str, num_edges: int = 6, horizon: int = 160):
    config = ScenarioConfig(
        dataset="synthetic",  # profiles are supplied explicitly below
        num_edges=num_edges,
        horizon=horizon,
        num_models=len(profiles),
    )
    x_pool, y_pool = trained_pool("mnist", **ZOO_KWARGS)
    scenario = build_scenario_with_profiles(config, profiles, x_pool=x_pool, y_pool=y_pool)
    rng = RngFactory(11)
    selection = [
        OnlineModelSelection(
            scenario.num_models,
            scenario.horizon,
            float(scenario.effective_switch_costs()[i]),
            rng.get(f"sel-{i}"),
        )
        for i in range(scenario.num_edges)
    ]
    result = Simulator(
        scenario, selection, OnlineCarbonTrading(), run_seed=11, label=label
    ).run()
    return scenario, result, config


def main() -> None:
    fp32 = trained_profiles("mnist", **ZOO_KWARGS)
    int8 = quantized_trained_profiles("mnist", bits=8, **ZOO_KWARGS)

    print("Model zoo (float vs int8):")
    rows = []
    for a, b in zip(fp32, int8):
        rows.append(
            [a.name, a.size_bytes / 1e3, b.size_bytes / 1e3, a.accuracy, b.accuracy]
        )
    print(
        format_table(
            ["model", "fp32 KB", "int8 KB", "fp32 acc", "int8 acc"],
            rows,
            precision=3,
        )
    )

    comparison = []
    for label, profiles in {
        "fp32 zoo (6 arms)": fp32,
        "fp32 + int8 (12 arms)": fp32 + int8,
    }.items():
        _, result, config = run(profiles, label)
        s = summarize_run(result, config.weights)
        quantized_share = float(
            np.mean(result.selections >= len(fp32)) if len(profiles) > 6 else 0.0
        )
        comparison.append(
            [label, s.total_cost, s.switching_cost, s.emissions, s.mean_accuracy,
             100 * quantized_share]
        )
    print()
    print(
        format_table(
            ["arm set", "total cost", "switching", "emissions kg", "accuracy",
             "% slots on int8"],
            comparison,
            title="Algorithm 1 with and without quantized arms",
            precision=2,
        )
    )
    print(
        "\nWith the int8 arms available the controller spends roughly half its\n"
        "slots on quantized models, cutting emissions while holding accuracy.\n"
        "Doubling the arm count also doubles what exploration costs over a\n"
        "short two-day horizon (visible in the total), which is precisely the\n"
        "trade-off the paper's future-work section flags for quantization-\n"
        "aware control of large models."
    )


if __name__ == "__main__":
    main()
