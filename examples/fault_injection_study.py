"""Fault-injection study: Fig. 6 under a mid-run carbon-market outage.

Re-runs the paper's emission-rate sweep (Fig. 6) twice through the same
``SweepEngine`` — once clean, once with a deterministic fault plan that
takes the allowance market offline for the middle quarter of the horizon
and rejects 5% of the remaining trades.  During the outage every trading
policy degrades the same way: intents are carried over (bounded by the
per-slot trade bound) and reconcile when the market returns, while the
dual ascent keeps updating on the *realized* zero trades.

The table shows each algorithm's total cost per emission rate, clean vs
outage, and the relative cost increase.  Cap-aware policies (Ours, LY)
pay for the outage — they lean on trading to stay neutral — while
trading-agnostic baselines barely move, which is exactly the paper's
story about why allowance trading matters.

Both sweeps are bit-reproducible: the fault realization derives from the
run seed and the plan alone, so re-running this script reproduces every
number exactly.

Run:  python examples/fault_injection_study.py
"""

from repro.experiments import fig06_emission_rate
from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.settings import default_config
from repro.faults import FaultPlan, MarketOutage, TradeRejection


def outage_plan(horizon: int) -> FaultPlan:
    """Market offline for the middle quarter, light rejections elsewhere."""
    return FaultPlan((
        MarketOutage(start=3 * horizon // 8, end=5 * horizon // 8),
        TradeRejection(probability=0.05),
    ))


def main() -> None:
    horizon = default_config(fast=True).horizon
    plan = outage_plan(horizon)
    clean = fig06_emission_rate.run(fast=True, engine=SweepEngine())
    faulted = fig06_emission_rate.run(fast=True, engine=SweepEngine(faults=plan))

    rates = clean.rates
    rows = []
    for label in sorted(clean.costs, key=lambda k: clean.costs[k][-1]):
        clean_costs = clean.costs[label]
        outage_costs = faulted.costs[label]
        worst_bump = max(
            (o - c) / c for c, o in zip(clean_costs, outage_costs)
        )
        rows.append(
            [label]
            + [f"{c:.0f}/{o:.0f}" for c, o in zip(clean_costs, outage_costs)]
            + [f"{100 * worst_bump:+.1f}%"]
        )
    headers = (
        ["algorithm"]
        + [f"rho={rate} clean/outage" for rate in rates]
        + ["worst bump"]
    )
    window = plan.of_kind("market_outage")[0]
    print(
        format_table(
            headers,
            rows,
            title=(
                "Fig. 6 under a market outage "
                f"(slots [{window.start}, {window.end}) offline, 5% rejections)"
            ),
        )
    )


if __name__ == "__main__":
    main()
