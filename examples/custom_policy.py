"""Registering custom policies and comparing them through ``repro.run``.

The simulator accepts anything implementing the ``SelectionPolicy`` /
``TradingPolicy`` interfaces, and the policy registry makes new families
first-class citizens: one ``@register_selection`` / ``@register_trading``
decorator each, and they are available by name everywhere — ``repro.run``,
``Simulator.from_names``, ``run_combo``, and the ``repro simulate`` /
``repro trace`` CLIs.  This example registers two simple custom families
and benchmarks them against the paper's algorithms on the same scenario
(common random numbers make the comparison exact):

* ``ExploreThenCommit`` (name ``"ETC"``) — samples every model a few
  slots, then commits.
* ``BudgetPacingTrader`` (name ``"Pacing"``) — buys exactly the
  uncovered-emission pace, ignoring prices.

Run:  python examples/custom_policy.py
"""

import numpy as np

import repro
from repro.experiments.reporting import format_table
from repro.metrics import summarize_run
from repro.policies import register_selection, register_trading
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.sim import ScenarioConfig, build_scenario


class ExploreThenCommit(SelectionPolicy):
    """Try each model ``rounds`` slots, then commit to the best average."""

    name = "ETC"

    def __init__(self, num_models: int, rounds: int = 3) -> None:
        super().__init__(num_models)
        self.rounds = rounds
        self._sums = np.zeros(num_models)
        self._counts = np.zeros(num_models, dtype=int)
        self._committed: int | None = None

    def select(self, t: int) -> int:
        if self._committed is not None:
            return self._committed
        untried = np.nonzero(self._counts < self.rounds)[0]
        if untried.size > 0:
            return int(untried[0])
        self._committed = int(np.argmin(self._sums / self._counts))
        return self._committed

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
        self._sums[model] += loss
        self._counts[model] += 1


class BudgetPacingTrader(TradingPolicy):
    """Buy whatever keeps holdings level with cumulative emissions."""

    name = "Pacing"

    def decide(self, context: TradingContext) -> TradeDecision:
        gap = context.cumulative_emissions + context.mean_slot_emissions - context.holdings
        return TradeDecision(buy=self._clip(gap, context.trade_bound), sell=0.0)


# A builder calibrates a family to a scenario: selection builders return one
# policy per edge, trading builders a single policy.  Neither family below
# is randomized, so the rng_factory goes unused (builtin families draw named
# streams from it to keep runs seed-exact).  Duplicate names raise by
# default; replace=True keeps this script re-runnable in a live session.


@register_selection("ETC", replace=True)
def build_etc(scenario, rng_factory):
    return [ExploreThenCommit(scenario.num_models) for _ in range(scenario.num_edges)]


@register_trading("Pacing", replace=True)
def build_pacing(scenario, rng_factory):
    return BudgetPacingTrader()


def main() -> None:
    config = ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160)
    scenario = build_scenario(config)

    # Once registered, custom names compose with builtin ones freely.  The
    # same seed gives every combination identical scenario randomness.
    contenders = {
        "Ours (paper)": ("Ours", "Ours"),
        "ETC + Pacing": ("ETC", "Pacing"),
        "ETC + Ours": ("ETC", "Ours"),
    }

    rows = []
    for label, (selection, trading) in contenders.items():
        result = repro.run(
            scenario, selection=selection, trading=trading, seed=7, label=label
        )
        s = summarize_run(result, config.weights)
        rows.append(
            [label, s.total_cost, s.switching_cost, s.trading_cost, s.final_fit, s.mean_accuracy]
        )
    print(
        format_table(
            ["policy", "total", "switching", "trading", "fit (kg)", "accuracy"],
            rows,
            title="Custom policies vs the paper's algorithms (same scenario & randomness)",
            precision=1,
        )
    )
    print(
        "\nOn this easy stochastic instance ETC can win: with large, stable loss\n"
        "gaps, exploring each model three slots and committing is near-optimal.\n"
        "The paper's block Tsallis-INF pays more exploration up front but keeps\n"
        "a worst-case guarantee: it cannot be locked onto a bad model by a few\n"
        "lucky samples or by drifting losses, which is exactly where ETC fails.\n"
        "Pacing stays neutral but buys at the average price; Algorithm 2 buys\n"
        "below it. Swap in your own policy with one @register_* decorator."
    )


if __name__ == "__main__":
    main()
