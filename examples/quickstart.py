"""Quickstart: carbon-neutral edge AI inference in a few calls.

Builds the paper's default scenario (10 edges, a two-day horizon of 160
fifteen-minute slots, 6 models, EU-permit-style allowance prices), runs the
paper's two online algorithms jointly through the one-call ``repro.run``
API, and prints the cost breakdown, the carbon-neutrality status, and the
comparison against the offline optimum.

Run:  python examples/quickstart.py
"""

import repro
from repro.experiments.runner import run_offline
from repro.metrics import summarize_run
from repro.sim import ScenarioConfig, build_scenario


def main() -> None:
    # 1. Describe the system (synthetic profiles keep this instant; use
    #    dataset="mnist" for the trained numpy model zoo).  Building the
    #    scenario once lets the offline comparison below reuse it.
    config = ScenarioConfig(dataset="synthetic", num_edges=10, horizon=160)
    scenario = build_scenario(config)

    # 2. Simulate the full horizon: "Ours" resolves to one Algorithm-1
    #    policy per edge plus the Algorithm-2 trading policy, calibrated to
    #    the scenario by the repro.policies registry.
    result = repro.run(scenario, selection="Ours", trading="Ours", seed=42,
                       label="Ours")

    # 3. Inspect the outcome.
    summary = summarize_run(result, config.weights)
    print("=== Ours (Algorithm 1 + Algorithm 2) ===")
    print(f"total cost        : {summary.total_cost:10.1f}")
    print(f"  inference       : {summary.inference_cost:10.1f}")
    print(f"  computation     : {summary.compute_cost:10.1f}")
    print(f"  switching       : {summary.switching_cost:10.1f} ({summary.switches:.0f} downloads)")
    print(f"  allowance trade : {summary.trading_cost:10.1f}")
    print(f"emissions         : {summary.emissions:10.1f} kg")
    print(f"net allowances    : {summary.net_purchase:10.1f} kg bought")
    print(f"neutrality gap    : {summary.final_fit:10.1f} kg "
          f"({100 * summary.final_fit / summary.emissions:.1f}% of emissions)")
    print(f"stream accuracy   : {summary.mean_accuracy:10.3f}")

    # 4. Compare against the clairvoyant offline optimum.
    offline = run_offline(scenario, seed=42)
    offline_cost = offline.total_cost(config.weights)
    print("\n=== Offline optimum (hindsight) ===")
    print(f"total cost        : {offline_cost:10.1f}")
    print(f"regret of Ours    : {summary.total_cost - offline_cost:10.1f}")


if __name__ == "__main__":
    main()
