"""The request model: SLA classes and individual requests.

Everything below the ingress tier is slot-granular arrival *counts*
(``M_i^t``); this module is where individual requests exist.  A
:class:`Request` is immutable and fully determined at arrival: its
deadline is ``arrival_slot + deadline_slots`` for its class, clamped to
the last slot of the horizon so every request can always be released
before the run ends (the accounting equation stays exact by
construction).  An :class:`SlaClass` describes one service tier: its
share of the thinned traffic, its deadline budget, its release priority,
and whether the router may voluntarily defer it to a cheaper slot.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request", "SlaClass", "clamp_deadline"]


@dataclass(frozen=True)
class SlaClass:
    """One service tier of the ingress traffic mix.

    Parameters
    ----------
    name:
        Stable identifier (used in stats, config, and wait accounting).
    share:
        Fraction of thinned traffic assigned to this class; shares across
        a mix must sum to 1.
    deadline_slots:
        Deadline budget in slots: a request arriving at ``t`` must be
        released by ``t + deadline_slots`` to count as a deadline hit.
    priority:
        Release priority — higher releases first when slot capacity binds.
    deferrable:
        Whether the router may hold requests of this class past their
        arrival slot to chase a cheaper forecast slot (within deadline).
    """

    name: str
    share: float
    deadline_slots: int
    priority: int
    deferrable: bool

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLA class name must be non-empty")
        if not 0.0 < self.share <= 1.0:
            raise ValueError(
                f"class {self.name!r}: share must be in (0, 1], got {self.share}"
            )
        if self.deadline_slots < 0:
            raise ValueError(
                f"class {self.name!r}: deadline_slots must be >= 0, "
                f"got {self.deadline_slots}"
            )


@dataclass(frozen=True)
class Request:
    """One inference request flowing through the ingress tier."""

    seq: int
    edge: int
    arrival_slot: int
    sla: str
    deadline_slot: int
    priority: int


def clamp_deadline(arrival_slot: int, deadline_slots: int, horizon: int) -> int:
    """The effective deadline slot: arrival + budget, clamped into the run.

    Clamping to ``horizon - 1`` guarantees the final slot's forced flush
    releases every queued request, which is what makes request accounting
    (``in == served + shed + offline + dropped``) exact at end of run.
    """
    return min(arrival_slot + deadline_slots, horizon - 1)
