"""Request-level ingress: carbon-aware routing above the slot kernels.

The stack below this package is slot-granular — arrival *counts*
``M_i^t`` flow into :class:`~repro.sim.kernel.EdgeSlotKernel` and the
aggregator.  ``repro.ingress`` adds the request level on top:

* :mod:`repro.ingress.request` — the immutable :class:`Request` model
  and :class:`SlaClass` service tiers;
* :mod:`repro.ingress.generator` — deterministic thinning of the base
  slot counts into per-class requests (exact conservation);
* :mod:`repro.ingress.router` — admission, deadline-ordered deferral
  queues, and carbon-aware release using price look-ahead;
* :mod:`repro.ingress.stats` — per-slot payloads and run-level SLA
  accounting;
* :mod:`repro.ingress.adapter` — the aggregation seam that disguises
  the whole tier as a :class:`~repro.serve.adapters.StreamAdapter`.

Enable it with ``ServeConfig(ingress=IngressConfig().to_dict())``, or on
the CLI via ``repro serve --ingress [CONFIG.json]`` and ``repro soak
--ingress``.
"""

from repro.ingress.adapter import IngressAdapter, wrap_with_ingress
from repro.ingress.config import DEFAULT_CLASSES, IngressConfig
from repro.ingress.generator import RequestThinner
from repro.ingress.request import Request, SlaClass, clamp_deadline
from repro.ingress.router import IngressRouter
from repro.ingress.stats import IngressStats, resolve_payload

__all__ = [
    "DEFAULT_CLASSES",
    "IngressAdapter",
    "IngressConfig",
    "IngressRouter",
    "IngressStats",
    "Request",
    "RequestThinner",
    "SlaClass",
    "clamp_deadline",
    "resolve_payload",
    "wrap_with_ingress",
]
