"""Ingress tier configuration: the SLA mix and router policy knobs.

Mirrors :class:`repro.serve.config.ServeConfig`'s contract: a frozen
dataclass with eager validation, a strict ``from_dict`` (unknown keys are
errors), and a lossless JSON round-trip — an :class:`IngressConfig` is
embedded verbatim (as its dict form) inside ``ServeConfig.ingress`` so
serve snapshots and soak reports carry the full ingress contract.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.forecast.price_models import (
    AR1Forecaster,
    EwmaForecaster,
    PriceForecaster,
)
from repro.ingress.request import SlaClass

__all__ = ["ADMISSION_POLICIES", "DEFAULT_CLASSES", "FORECASTERS", "IngressConfig"]

#: Admission policies applied when a class's deferral queue is full.
ADMISSION_POLICIES = ("admit", "drop-oldest", "deadline-shed")

#: Forecaster families the router can use for cheap-slot look-ahead.
FORECASTERS = ("ewma", "ar1")

#: The default three-tier SLA mix: latency-critical interactive traffic,
#: delay-tolerant standard traffic, and batch work that can wait a day of
#: slots for a greener interval.
DEFAULT_CLASSES: tuple[SlaClass, ...] = (
    SlaClass(
        name="interactive", share=0.6, deadline_slots=1, priority=2, deferrable=False
    ),
    SlaClass(
        name="standard", share=0.3, deadline_slots=6, priority=1, deferrable=True
    ),
    SlaClass(name="batch", share=0.1, deadline_slots=24, priority=0, deferrable=True),
)


@dataclass(frozen=True)
class IngressConfig:
    """Full configuration of the request-level ingress tier.

    Parameters
    ----------
    classes:
        The SLA mix; shares must sum to 1 (within float tolerance).
    deferral:
        Master switch for carbon-aware deferral.  Off, the router is a
        plain FIFO: with ``slot_capacity == 0`` it releases every request
        in its arrival slot, which is the bit-parity path against the
        non-ingress adapters (pinned golden digests unmoved).
    admission:
        Queue-overflow policy: ``admit`` (unbounded), ``drop-oldest``
        (evict the earliest-deadline queued request), or ``deadline-shed``
        (evict whichever request — newcomer included — has the most
        deadline slack).
    queue_capacity:
        Per-class deferral-queue bound in requests; 0 means unbounded.
    slot_capacity:
        Per-edge per-slot release budget in requests; 0 means unlimited.
        Deadline-forced releases and the final-slot flush ignore it.
    lookahead:
        How many future slots the price forecast scans for a cheaper
        release opportunity.
    defer_margin:
        Relative price improvement required to defer: wait only if the
        best forecast price beats the current price by this fraction.
    forecaster:
        Price-forecast family (``repro.forecast.price_models``).
    sample_every:
        Rate cap for the sampled ingress obs events: emit on slots where
        ``t % sample_every == 0``.
    """

    classes: tuple[SlaClass, ...] = field(default=DEFAULT_CLASSES)
    deferral: bool = True
    admission: str = "admit"
    queue_capacity: int = 0
    slot_capacity: int = 0
    lookahead: int = 8
    defer_margin: float = 0.02
    forecaster: str = "ewma"
    sample_every: int = 1

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("ingress needs at least one SLA class")
        classes = tuple(
            SlaClass(**cls) if isinstance(cls, dict) else cls for cls in self.classes
        )
        object.__setattr__(self, "classes", classes)
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLA class names: {names}")
        total = sum(cls.share for cls in classes)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"SLA class shares must sum to 1, got {total}")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if self.forecaster not in FORECASTERS:
            raise ValueError(
                f"unknown forecaster {self.forecaster!r}; choose from {FORECASTERS}"
            )
        if self.queue_capacity < 0:
            raise ValueError(f"queue_capacity must be >= 0, got {self.queue_capacity}")
        if self.slot_capacity < 0:
            raise ValueError(f"slot_capacity must be >= 0, got {self.slot_capacity}")
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        if not 0.0 <= self.defer_margin < 1.0:
            raise ValueError(
                f"defer_margin must be in [0, 1), got {self.defer_margin}"
            )
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")

    @property
    def class_names(self) -> tuple[str, ...]:
        """Class names in mix order (the order thinned counts arrive in)."""
        return tuple(cls.name for cls in self.classes)

    def make_forecaster(self) -> PriceForecaster:
        """A fresh forecaster instance of the configured family."""
        if self.forecaster == "ar1":
            return AR1Forecaster()
        return EwmaForecaster()

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        payload = dataclasses.asdict(self)
        payload["classes"] = [dataclasses.asdict(cls) for cls in self.classes]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "IngressConfig":
        """Strict inverse of :meth:`to_dict`: unknown keys are errors."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown IngressConfig keys: {sorted(unknown)}")
        data = dict(payload)
        if "classes" in data:
            data["classes"] = tuple(
                SlaClass(**entry) if isinstance(entry, dict) else entry
                for entry in data["classes"]
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "IngressConfig":
        """Load a config from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
