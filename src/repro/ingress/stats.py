"""SLA accounting: per-slot stat payloads and the run-level accumulator.

Per-slot stats are produced *provisionally* by the router (it cannot know
whether the slot it released into will actually serve), then **resolved**
against the edge's :class:`~repro.sim.kernel.EdgeSlotOutcome`: if the
slot was shed at the work queue or the edge was offline, every release
that slot becomes a deadline miss regardless of timing.  Resolved
payloads are plain dicts of ints — picklable, mergeable, and safe to ship
over the shard frame protocol — and :class:`IngressStats` folds any
number of them (any edge, any order) into run totals.

The run-level accounting identity, checked by ``repro soak --ingress``::

    requests_in == events_served + events_shed + events_dropped_offline
                   + requests_dropped

holds because every admitted request is eventually released (deadlines
clamp to the final slot, which force-flushes), and every released request
lands in exactly one of served / shed / dropped-offline via its slot's
outcome.
"""

from __future__ import annotations

from repro.sim.kernel import EdgeSlotOutcome

__all__ = ["IngressStats", "resolve_payload"]


def resolve_payload(
    provisional: dict[str, object], outcome: EdgeSlotOutcome
) -> dict[str, object]:
    """Finalize one slot's provisional router stats against its outcome.

    A release only counts as a deadline *hit* if the slot actually served
    (not shed, not offline) **and** the release was on time.
    """
    served = not (outcome.shed or outcome.offline)
    per_class: dict[str, list[int]] = {}
    hits = 0
    for name, (released, on_time) in provisional["per_class"].items():
        class_hits = on_time if served else 0
        per_class[name] = [released, class_hits]
        hits += class_hits
    released_total = int(provisional["released"])
    return {
        "in": int(provisional["in"]),
        "dropped": int(provisional["dropped"]),
        "released": released_total,
        "deferred": int(provisional["deferred"]),
        "queued": int(provisional["queued"]),
        "hits": hits,
        "misses": released_total - hits,
        "per_class": per_class,
        "waits": dict(provisional["waits"]),
    }


class IngressStats:
    """Run-level request accounting, folded from resolved slot payloads."""

    def __init__(self, class_names: tuple[str, ...]) -> None:
        self.requests_in = 0
        self.requests_dropped = 0
        self.requests_released = 0
        self.requests_deferred = 0
        self.deadline_hits = 0
        self.deadline_misses = 0
        self.per_class: dict[str, dict[str, int]] = {
            name: {"released": 0, "hits": 0, "misses": 0} for name in class_names
        }
        self.waits: dict[int, int] = {}

    def absorb(self, payload: dict[str, object]) -> None:
        """Fold one resolved slot payload into the run totals."""
        self.requests_in += payload["in"]
        self.requests_dropped += payload["dropped"]
        self.requests_released += payload["released"]
        self.requests_deferred += payload["deferred"]
        self.deadline_hits += payload["hits"]
        self.deadline_misses += payload["misses"]
        for name, (released, hits) in payload["per_class"].items():
            bucket = self.per_class[name]
            bucket["released"] += released
            bucket["hits"] += hits
            bucket["misses"] += released - hits
        for wait, count in payload["waits"].items():
            wait = int(wait)
            self.waits[wait] = self.waits.get(wait, 0) + count

    def accounting_ok(self, served: int, shed: int, dropped_offline: int) -> bool:
        """The request-conservation identity against the slot-level counters."""
        return (
            self.requests_in
            == served + shed + dropped_offline + self.requests_dropped
        )

    def summary(self) -> dict[str, object]:
        """JSON-ready run summary (embedded in SoakReport v3)."""
        per_class = {}
        for name, bucket in self.per_class.items():
            released = bucket["released"]
            per_class[name] = {
                "released": released,
                "hits": bucket["hits"],
                "misses": bucket["misses"],
                "hit_rate": bucket["hits"] / released if released else None,
            }
        released = self.requests_released
        return {
            "requests_in": self.requests_in,
            "requests_dropped": self.requests_dropped,
            "requests_released": released,
            "requests_deferred": self.requests_deferred,
            "deadline_hits": self.deadline_hits,
            "deadline_misses": self.deadline_misses,
            "deadline_hit_rate": self.deadline_hits / released if released else None,
            "per_class": per_class,
            "wait_histogram": {str(w): c for w, c in sorted(self.waits.items())},
        }
