"""The aggregation seam: an ingress tier disguised as a stream adapter.

:class:`IngressAdapter` wraps any count-producing
:class:`~repro.serve.adapters.StreamAdapter` (poisson, replay, shape —
not dataset, whose pre-drawn indices are inseparable from its counts).
Per slot it thins the base count into per-SLA-class requests
(:class:`~repro.ingress.generator.RequestThinner`), routes them through
the :class:`~repro.ingress.router.IngressRouter`, and hands the runtime a
plain :class:`~repro.serve.queues.WorkItem` carrying the *released*
count.  Everything underneath — edge kernels, slot aggregator, sharded
tier, vectorized fast path — sees ordinary per-slot ``M_i^t`` counts and
works unchanged.

The adapter also owns the slot-stats lifecycle: ``next_item`` parks the
router's provisional stats under the slot index, and the runtime calls
:meth:`IngressAdapter.resolve_slot` once the slot's
:class:`~repro.sim.kernel.EdgeSlotOutcome` is known (shed/offline slots
turn releases into deadline misses).  During a shard worker's silent
catch-up the runtime calls :meth:`IngressAdapter.discard_slot` instead —
queue state advances, already-merged stats are not re-reported.

Sampled obs events (``request_admit`` / ``request_defer`` /
``request_drop`` / ``deadline_miss``) are emitted at resolution, only on
slots where ``t % sample_every == 0`` and the count is nonzero, so event
volume stays bounded at request scale.
"""

from __future__ import annotations

import numpy as np

from repro.ingress.config import IngressConfig
from repro.ingress.generator import RequestThinner
from repro.ingress.router import IngressRouter
from repro.ingress.stats import resolve_payload
from repro.obs.events import (
    DeadlineMissEvent,
    RequestAdmitEvent,
    RequestDeferEvent,
    RequestDropEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.adapters import DatasetAdapter, StreamAdapter
from repro.serve.queues import WorkItem
from repro.sim.kernel import EdgeSlotOutcome
from repro.sim.scenario import Scenario

__all__ = ["IngressAdapter", "wrap_with_ingress"]


class IngressAdapter(StreamAdapter):
    """Request-level front end for one edge (see module docstring)."""

    name = "ingress"

    def __init__(
        self,
        base: StreamAdapter,
        *,
        edge: int,
        config: IngressConfig,
        seed: int,
        horizon: int,
        prices: np.ndarray,
        tracer: Tracer | None = None,
    ) -> None:
        if isinstance(base, DatasetAdapter):
            raise ValueError(
                "ingress cannot wrap the dataset adapter: its pre-drawn "
                "indices are coupled to its counts, so deferral would "
                "desynchronize data from arrivals"
            )
        self.base = base
        self.edge = int(edge)
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.thinner = RequestThinner(seed, edge, config.classes)
        self.router = IngressRouter(edge, config, horizon)
        self._prices = prices
        self._pending: dict[int, dict[str, object]] = {}

    def next_item(self, t: int) -> WorkItem:
        """Thin and route the base slot count; return the released count."""
        base_item = self.base.next_item(t)
        counts = self.thinner.split(base_item.count)
        released, provisional = self.router.step(t, counts, float(self._prices[t]))
        self._pending[t] = provisional
        return WorkItem(t=t, count=released)

    def resolve_slot(self, outcome: EdgeSlotOutcome) -> dict[str, object]:
        """Finalize slot ``outcome.t``'s stats; emits sampled obs events."""
        provisional = self._pending.pop(outcome.t)
        payload = resolve_payload(provisional, outcome)
        tracer = self.tracer
        if tracer.enabled and outcome.t % self.config.sample_every == 0:
            t, edge = outcome.t, self.edge
            admitted = payload["in"] - payload["dropped"]
            if admitted:
                tracer.emit(RequestAdmitEvent(t=t, edge=edge, count=admitted))
            if payload["deferred"]:
                tracer.emit(
                    RequestDeferEvent(t=t, edge=edge, count=payload["deferred"])
                )
            if payload["dropped"]:
                tracer.emit(
                    RequestDropEvent(t=t, edge=edge, count=payload["dropped"])
                )
            if payload["misses"]:
                tracer.emit(
                    DeadlineMissEvent(t=t, edge=edge, count=payload["misses"])
                )
        return payload

    def discard_slot(self, t: int) -> None:
        """Drop slot ``t``'s provisional stats (shard catch-up replay)."""
        self._pending.pop(t, None)

    def state_dict(self) -> dict[str, object]:
        """Base-adapter, thinner, and router state in one picklable dict.

        ``pending`` is serialized defensively; at every quiescent snapshot
        boundary it is empty (release capping guarantees all released
        slots resolved before the snapshot).
        """
        return {
            "base": self.base.state_dict(),
            "thinner": self.thinner.state_dict(),
            "router": self.router.state_dict(),
            "pending": dict(self._pending),
        }

    def load_state(self, state: dict[str, object]) -> None:
        """Restore the state captured by :meth:`state_dict`."""
        self.base.load_state(state["base"])
        self.thinner.load_state(state["thinner"])
        self.router.load_state(state["router"])
        self._pending = dict(state["pending"])


def wrap_with_ingress(
    adapters: list[StreamAdapter],
    *,
    config: IngressConfig,
    scenario: Scenario,
    seed: int,
    tracer: Tracer | None = None,
) -> list[StreamAdapter]:
    """Wrap every edge's adapter with the ingress tier.

    Called from :func:`repro.serve.runtime.build_serve_kernels` — the
    shared determinism seam — so the in-process runtime, every shard
    worker, and the shard parent all hold identically-configured ingress
    state as a pure function of the serve config.
    """
    return [
        IngressAdapter(
            base,
            edge=edge,
            config=config,
            seed=seed,
            horizon=scenario.horizon,
            prices=scenario.prices.buy,
            tracer=tracer,
        )
        for edge, base in enumerate(adapters)
    ]
