"""The carbon-aware ingress router: admission, deferral, release.

One router instance fronts one edge.  Each slot it ingests that edge's
thinned per-class request counts and decides, per request, between three
fates: **release now** (the request joins the slot's ``M_i^t`` count and
is served by the edge kernel), **defer** (the request waits in a
deadline-ordered heap for a cheaper forecast slot or for slot capacity),
or **drop** (admission policy under queue overflow).

Two scheduling regimes, selected by ``config.deferral``:

* **deferral on** — per-SLA-class ``heapq`` queues keyed
  ``(deadline_slot, seq)``; deadline order equals FIFO order within a
  class because a class's deadline budget is constant.  Releases run
  deadline-forced requests first (capacity-exempt — deadline beats
  throttle), then fill remaining slot capacity by class priority,
  holding back deferrable requests whose look-ahead forecast
  (:mod:`repro.forecast.price_models`) shows a cheaper slot within
  deadline.  The hold-back check is a valid heap-prefix cut: the top of a
  class heap has the *earliest* deadline, so its look-ahead window is a
  subset of every deeper entry's window — if the top prefers to wait, so
  does everything under it.
* **deferral off** — one plain FIFO per edge, deadline- and
  carbon-blind.  With ``slot_capacity == 0`` every request releases in
  its arrival slot, reproducing the non-ingress adapter path bit-exactly;
  with a capacity it models the naive baseline the example study
  compares against (spill releases in arrival order, whatever the SLA).

Determinism: routing consumes no randomness at all — given the thinned
counts and the price trace, every decision is a pure function of config
and slot index.  The final slot force-releases everything (deadlines are
clamped to ``horizon - 1``), so no request is ever left in a queue and
request accounting closes exactly.
"""

from __future__ import annotations

import copy
import heapq
from collections import deque

import numpy as np

from repro.ingress.config import IngressConfig
from repro.ingress.request import clamp_deadline

__all__ = ["IngressRouter"]

#: Queue entry layout: (deadline_slot, seq, arrival_slot, class_index).
_DEADLINE, _SEQ, _ARRIVAL, _CLASS = 0, 1, 2, 3


class IngressRouter:
    """Per-edge admission/deferral/release engine (see module docstring)."""

    def __init__(self, edge: int, config: IngressConfig, horizon: int) -> None:
        self.edge = int(edge)
        self.config = config
        self.horizon = int(horizon)
        self.classes = config.classes
        #: Class indices in release order: priority descending, name as a
        #: deterministic tie-break.
        self._release_order = sorted(
            range(len(self.classes)),
            key=lambda ci: (-self.classes[ci].priority, self.classes[ci].name),
        )
        self._seq = 0
        self._heaps: list[list[tuple[int, int, int, int]]] = [
            [] for _ in self.classes
        ]
        self._fifo: deque[tuple[int, int, int, int]] = deque()
        self._forecaster = config.make_forecaster()

    @property
    def depth(self) -> int:
        """Requests currently queued (all classes)."""
        return len(self._fifo) + sum(len(heap) for heap in self._heaps)

    def step(
        self, t: int, counts: np.ndarray | list[int], price: float
    ) -> tuple[int, dict[str, object]]:
        """Route one slot; returns ``(released_count, provisional stats)``.

        ``counts`` are the thinned per-class arrivals (mix order) and
        ``price`` is the slot's realized buy price — the forecaster sees
        it before any deferral decision, matching the paper's information
        structure (decisions at ``t`` use prices up to ``t`` only).
        """
        self._forecaster.update(price)
        defer_cache: dict[int, bool] = {}
        total_in = int(np.sum(counts))
        dropped = 0
        released: list[tuple[int, int, int, int]] = []

        if self.config.deferral:
            dropped += self._admit_heaps(t, counts)
            released = self._release_heaps(t, price, defer_cache)
        else:
            released, fifo_dropped = self._route_fifo(t, counts)
            dropped += fifo_dropped

        per_class: dict[str, list[int]] = {
            cls.name: [0, 0] for cls in self.classes
        }
        waits: dict[int, int] = {}
        for entry in released:
            stats = per_class[self.classes[entry[_CLASS]].name]
            stats[0] += 1
            if t <= entry[_DEADLINE]:
                stats[1] += 1
            wait = t - entry[_ARRIVAL]
            if wait:
                waits[wait] = waits.get(wait, 0) + 1

        # This slot's arrivals still queued at slot end — counted by scan
        # (queues are small) so admission evictions of *older* entries can
        # never push the tally negative.
        deferred = sum(
            1 for entry in self._fifo if entry[_ARRIVAL] == t
        ) + sum(
            1
            for heap in self._heaps
            for entry in heap
            if entry[_ARRIVAL] == t
        )
        provisional: dict[str, object] = {
            "in": total_in,
            "dropped": dropped,
            "released": len(released),
            "deferred": deferred,
            "queued": self.depth,
            "per_class": per_class,
            "waits": waits,
        }
        return len(released), provisional

    # ------------------------------------------------------------------
    # deferral-on regime: per-class deadline heaps

    def _admit_heaps(self, t: int, counts: np.ndarray | list[int]) -> int:
        """Push the slot's arrivals into class heaps; returns drops."""
        capacity = self.config.queue_capacity
        policy = self.config.admission
        dropped = 0
        for ci, count in enumerate(counts):
            deadline = clamp_deadline(t, self.classes[ci].deadline_slots, self.horizon)
            heap = self._heaps[ci]
            for _ in range(int(count)):
                entry = (deadline, self._seq, t, ci)
                self._seq += 1
                if capacity and len(heap) >= capacity and policy != "admit":
                    if policy == "drop-oldest":
                        heapq.heappop(heap)
                        dropped += 1
                    else:  # deadline-shed: evict the slackest request
                        slackest = max(range(len(heap)), key=lambda j: heap[j][:2])
                        if heap[slackest][:2] > entry[:2]:
                            heap[slackest] = heap[-1]
                            heap.pop()
                            heapq.heapify(heap)
                        else:
                            dropped += 1
                            continue
                        dropped += 1
                heapq.heappush(heap, entry)
        return dropped

    def _release_heaps(
        self, t: int, price: float, defer_cache: dict[int, bool]
    ) -> list[tuple[int, int, int, int]]:
        """Pop this slot's releases: forced first, then capacity fill."""
        released: list[tuple[int, int, int, int]] = []
        # Deadline-forced releases are capacity-exempt: a request whose
        # deadline is now goes out now, throttle or not.  On the final slot
        # every deadline has clamped to t, so this pass drains everything.
        for ci in self._release_order:
            heap = self._heaps[ci]
            while heap and heap[0][_DEADLINE] <= t:
                released.append(heapq.heappop(heap))
        capacity = self.config.slot_capacity
        for ci in self._release_order:
            cls = self.classes[ci]
            heap = self._heaps[ci]
            while heap and (not capacity or len(released) < capacity):
                if cls.deferrable and self._prefer_wait(
                    t, heap[0][_DEADLINE], price, defer_cache
                ):
                    break
                released.append(heapq.heappop(heap))
        return released

    def _prefer_wait(
        self, t: int, deadline: int, price: float, cache: dict[int, bool]
    ) -> bool:
        """Whether a cheaper forecast slot exists within the wait window."""
        window = min(deadline, t + self.config.lookahead) - t
        if window <= 0:
            return False
        cached = cache.get(window)
        if cached is None:
            forecaster = self._forecaster
            best = min(forecaster.predict(k) for k in range(1, window + 1))
            cached = best < price * (1.0 - self.config.defer_margin)
            cache[window] = cached
        return cached

    # ------------------------------------------------------------------
    # deferral-off regime: one deadline-blind FIFO

    def _route_fifo(
        self, t: int, counts: np.ndarray | list[int]
    ) -> tuple[list[tuple[int, int, int, int]], int]:
        """Arrival-order release up to slot capacity; spill queues FIFO."""
        arrivals: list[tuple[int, int, int, int]] = []
        for ci, count in enumerate(counts):
            deadline = clamp_deadline(t, self.classes[ci].deadline_slots, self.horizon)
            for _ in range(int(count)):
                arrivals.append((deadline, self._seq, t, ci))
                self._seq += 1
        pending = self._fifo
        pending.extend(arrivals)
        capacity = self.config.slot_capacity
        budget = len(pending) if not capacity or t == self.horizon - 1 else capacity
        released = [pending.popleft() for _ in range(min(budget, len(pending)))]
        return released, self._enforce_fifo_capacity()

    def _enforce_fifo_capacity(self) -> int:
        """Apply the admission policy to the FIFO spill queue; returns drops."""
        capacity = self.config.queue_capacity
        policy = self.config.admission
        if not capacity or policy == "admit":
            return 0
        dropped = 0
        pending = self._fifo
        while len(pending) > capacity:
            if policy == "drop-oldest":
                pending.popleft()
            else:  # deadline-shed
                slackest = max(range(len(pending)), key=lambda j: pending[j][:2])
                del pending[slackest]
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # snapshot support

    def state_dict(self) -> dict[str, object]:
        """Picklable router state (queues, seq counter, forecaster)."""
        return {
            "seq": self._seq,
            "heaps": [list(heap) for heap in self._heaps],
            "fifo": list(self._fifo),
            "forecaster": copy.deepcopy(self._forecaster),
        }

    def load_state(self, state: dict[str, object]) -> None:
        """Restore the state captured by :meth:`state_dict`."""
        self._seq = int(state["seq"])
        self._heaps = [list(heap) for heap in state["heaps"]]
        for heap in self._heaps:
            heapq.heapify(heap)
        self._fifo = deque(state["fifo"])
        self._forecaster = copy.deepcopy(state["forecaster"])
