"""Request generation by thinning the slot-granular arrival counts.

The ingress tier does not invent a new arrival process: it *thins* the
count the base stream adapter produced for the slot into per-SLA-class
request counts with one multinomial draw.  Because a multinomial
partitions its total exactly, the thinned class counts sum to the base
count for every slot, every seed, every shape — conservation is exact by
construction, not by test.  The draw comes from the dedicated
``ingress-thin-<edge>`` stream (:func:`repro.utils.rng.thinning_stream`),
so the base arrival/data streams are never perturbed and a
deferral-disabled ingress run feeds the kernels bit-identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.ingress.request import SlaClass
from repro.utils.rng import thinning_stream

__all__ = ["RequestThinner"]


class RequestThinner:
    """Splits one edge's per-slot counts across the SLA mix."""

    def __init__(self, seed: int, edge: int, classes: tuple[SlaClass, ...]) -> None:
        self.seed = int(seed)
        self.edge = int(edge)
        self.classes = classes
        shares = np.asarray([cls.share for cls in classes], dtype=float)
        # Guard against float drift so numpy's multinomial never rejects.
        self._shares = shares / shares.sum()
        self._rng = thinning_stream(self.seed, self.edge)

    def split(self, count: int) -> np.ndarray:
        """Class counts for one slot; always sums to ``count`` exactly."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            # Draw anyway so every slot consumes the stream exactly once;
            # the position stays a pure function of the count sequence
            # (which the base adapter makes deterministic), never of which
            # code path a quiet slot took.
            self._rng.multinomial(0, self._shares)
            return np.zeros(len(self._shares), dtype=int)
        return self._rng.multinomial(int(count), self._shares)

    def state_dict(self) -> dict[str, object]:
        """Picklable stream state (for quiescent snapshots)."""
        return {"rng": self._rng.bit_generator.state}

    def load_state(self, state: dict[str, object]) -> None:
        """Restore the stream captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
