"""Synthetic datasets and stochastic data-stream machinery.

Replaces the paper's MNIST / CIFAR-10 test streams with seeded synthetic
classification tasks of matching structure (10 classes, image tensors, IID
sampling), per the substitution table in DESIGN.md.
"""

from repro.data.synthetic import Dataset, make_cifar10_like, make_mnist_like, make_dataset
from repro.data.streams import ArrivalProcess, DataStream, StreamBatch

__all__ = [
    "Dataset",
    "make_mnist_like",
    "make_cifar10_like",
    "make_dataset",
    "ArrivalProcess",
    "DataStream",
    "StreamBatch",
]
