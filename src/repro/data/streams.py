"""Stochastic data streams (paper Section II-A).

Each edge receives an IID stream: the number of arrivals ``M_i^t`` at slot
``t`` is a random variable (here Poisson around the workload trace value,
truncated to at least one sample), and each arriving sample ``(a, b)`` is
drawn IID from the fixed unknown distribution ``D`` — realised as sampling
with replacement from the dataset's held-out test pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrivalProcess", "DataStream", "StreamBatch"]


@dataclass(frozen=True)
class StreamBatch:
    """The samples arriving at one edge in one time slot."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError("features and labels disagree on batch size")

    @property
    def size(self) -> int:
        """Number of arriving samples ``M_i^t``."""
        return int(self.labels.shape[0])


class ArrivalProcess:
    """Random arrival counts ``M_i^t`` following an unknown distribution.

    Counts are Poisson-distributed around a per-slot mean supplied by the
    workload trace, truncated below at 1 (a slot always serves at least one
    request, so the average loss ``L_{i,n}^t`` is well defined).
    """

    def __init__(self, mean_arrivals: np.ndarray, rng: np.random.Generator) -> None:
        means = np.asarray(mean_arrivals, dtype=float)
        if means.ndim != 1:
            raise ValueError(f"mean_arrivals must be 1-D, got shape {means.shape}")
        if np.any(means < 0) or not np.all(np.isfinite(means)):
            raise ValueError("mean_arrivals must be finite and non-negative")
        self._means = means
        self._rng = rng

    @property
    def horizon(self) -> int:
        """Number of slots the underlying trace covers."""
        return int(self._means.size)

    def mean(self, t: int) -> float:
        """Mean arrival count at slot ``t`` (wraps around the trace)."""
        return float(self._means[t % self._means.size])

    def sample(self, t: int) -> int:
        """Draw ``M_i^t`` for slot ``t``."""
        return int(max(self._rng.poisson(self.mean(t)), 1))

    def sample_slots(self, horizon: int) -> np.ndarray:
        """Draw ``M_i^t`` for slots ``0..horizon-1`` in one call.

        NumPy's ``Generator.poisson`` with an array of means draws one
        variate per element in order, consuming the bit stream exactly as
        ``horizon`` scalar :meth:`sample` calls would — part of the
        ``Generator`` stream-stability contract — so the vectorized
        simulator can pre-draw a whole horizon without moving any digest.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        # Tiled trace == [self.mean(t) for t in range(horizon)] (wrap-around).
        reps = -(-horizon // self._means.size)
        means = np.tile(self._means, reps)[:horizon]
        return np.maximum(self._rng.poisson(means), 1).astype(np.int64)


class DataStream:
    """IID sampling with replacement from a fixed data pool."""

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on pool size")
        if features.shape[0] == 0:
            raise ValueError("data pool must be non-empty")
        self._features = features
        self._labels = np.asarray(labels)
        self._rng = rng

    @property
    def pool_size(self) -> int:
        """Number of distinct samples in the pool."""
        return int(self._labels.shape[0])

    def draw(self, count: int) -> StreamBatch:
        """Draw ``count`` IID samples (with replacement)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        idx = self._rng.integers(0, self.pool_size, size=count)
        return StreamBatch(features=self._features[idx], labels=self._labels[idx])
