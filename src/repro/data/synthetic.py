"""Seeded synthetic image-classification datasets.

``make_mnist_like`` produces an easy 10-class grayscale task (models reach
high accuracy, mirroring MNIST); ``make_cifar10_like`` produces a harder
3-channel task with heavier class overlap (mirroring CIFAR-10).  Each class
is a smooth random prototype image; samples are prototype + Gaussian noise,
optionally mixed with a neighbouring class prototype to create overlap.

The bandit algorithms only ever interact with these data through the
per-sample squared loss of real model forward passes, so any fixed task with
a stable model-quality ordering reproduces the paper's stochastic structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "make_mnist_like", "make_cifar10_like", "make_dataset"]


@dataclass(frozen=True)
class Dataset:
    """A train/test split of image tensors (NCHW) with integer labels."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        for split, (x, y) in {
            "train": (self.x_train, self.y_train),
            "test": (self.x_test, self.y_test),
        }.items():
            if x.ndim != 4:
                raise ValueError(f"{split} images must be NCHW, got shape {x.shape}")
            if y.ndim != 1 or y.shape[0] != x.shape[0]:
                raise ValueError(f"{split} labels misaligned with images")

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of a single image."""
        return tuple(self.x_train.shape[1:])  # type: ignore[return-value]


def _smooth_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    channels: int,
    size: int,
    coarse: int = 4,
) -> np.ndarray:
    """Random low-frequency class prototype images in [0, 1].

    A coarse random grid is bilinearly upsampled so each prototype is a
    smooth, visually distinct pattern — a stand-in for digit/object shapes.
    """
    if size % coarse != 0:
        raise ValueError(f"size {size} must be a multiple of coarse {coarse}")
    grids = rng.uniform(0.0, 1.0, size=(num_classes, channels, coarse, coarse))
    # Bilinear upsample coarse -> size via linear interpolation on each axis.
    scale = size // coarse
    positions = (np.arange(size) + 0.5) / scale - 0.5
    lo = np.clip(np.floor(positions).astype(int), 0, coarse - 1)
    hi = np.clip(lo + 1, 0, coarse - 1)
    frac = np.clip(positions - lo, 0.0, 1.0)

    rows = grids[:, :, lo, :] * (1 - frac)[None, None, :, None]
    rows += grids[:, :, hi, :] * frac[None, None, :, None]
    out = rows[:, :, :, lo] * (1 - frac)[None, None, None, :]
    out += rows[:, :, :, hi] * frac[None, None, None, :]
    return out


def make_dataset(
    *,
    name: str,
    rng: np.random.Generator,
    channels: int,
    image_size: int = 8,
    num_classes: int = 10,
    n_train: int = 2000,
    n_test: int = 8000,
    noise: float = 0.25,
    overlap: float = 0.0,
) -> Dataset:
    """Generate a synthetic classification dataset.

    Parameters
    ----------
    noise:
        Standard deviation of per-pixel Gaussian noise.
    overlap:
        In ``[0, 1)``; fraction of a *neighbouring class* prototype mixed
        into every sample, raising Bayes error (used for the CIFAR-like set).
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    prototypes = _smooth_prototypes(rng, num_classes, channels, image_size)

    def _sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=n)
        base = prototypes[labels]
        if overlap > 0:
            neighbour = prototypes[(labels + 1) % num_classes]
            base = (1.0 - overlap) * base + overlap * neighbour
        x = base + rng.normal(0.0, noise, size=base.shape)
        return np.clip(x, 0.0, 1.0), labels

    x_train, y_train = _sample(n_train)
    x_test, y_test = _sample(n_test)
    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=num_classes,
    )


def make_mnist_like(
    rng: np.random.Generator,
    n_train: int = 2000,
    n_test: int = 8000,
    image_size: int = 8,
) -> Dataset:
    """Easy grayscale 10-class task (MNIST stand-in)."""
    return make_dataset(
        name="mnist-like",
        rng=rng,
        channels=1,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        noise=0.22,
        overlap=0.0,
    )


def make_cifar10_like(
    rng: np.random.Generator,
    n_train: int = 2000,
    n_test: int = 8000,
    image_size: int = 8,
) -> Dataset:
    """Harder 3-channel 10-class task with class overlap (CIFAR-10 stand-in)."""
    return make_dataset(
        name="cifar10-like",
        rng=rng,
        channels=3,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        noise=0.33,
        overlap=0.25,
    )
