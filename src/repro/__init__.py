"""Reproduction of *Carbon-Neutralizing Edge AI Inference for Data Streams
via Model Control and Allowance Trading* (ICDCS 2025).

Public API highlights:

* :class:`repro.core.OnlineModelSelection` — the paper's Algorithm 1
  (switching-aware block Tsallis-INF model selection).
* :class:`repro.core.OnlineCarbonTrading` — the paper's Algorithm 2
  (long-term-aware online primal-dual allowance trading).
* :class:`repro.sim.ScenarioConfig` / :func:`repro.sim.build_scenario` /
  :class:`repro.sim.Simulator` — the trace-driven cloud-edge evaluation
  engine.
* :class:`repro.RunSpec` — the typed, JSON-round-trippable description of
  one run (scenario recipe, policy names, seed, faults, trace options).
* :func:`repro.run` — one-call spec -> scenario -> simulate.
* :mod:`repro.policies` — policy interfaces and the name registry
  (``@register_selection`` / ``@register_trading``).
* :mod:`repro.obs` — structured simulation tracing (:class:`repro.obs.Tracer`).
* :mod:`repro.faults` — deterministic fault injection
  (:class:`repro.faults.FaultPlan`).
* :mod:`repro.experiments` — one module per paper figure.
"""

from repro.api import run
from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.faults import FaultPlan
from repro.obs import Tracer
from repro.sim import (
    CostWeights,
    Scenario,
    ScenarioConfig,
    SimulationResult,
    Simulator,
    build_scenario,
)
from repro.spec import RunSpec

__version__ = "1.2.0"

__all__ = [
    "OnlineModelSelection",
    "OnlineCarbonTrading",
    "CostWeights",
    "FaultPlan",
    "RunSpec",
    "Scenario",
    "ScenarioConfig",
    "SimulationResult",
    "Simulator",
    "Tracer",
    "build_scenario",
    "run",
    "__version__",
]
