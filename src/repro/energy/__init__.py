"""Energy consumption and carbon-emission accounting (paper Section II-A)."""

from repro.energy.model import EnergyModel, sample_inference_energies, sample_latencies

__all__ = ["EnergyModel", "sample_inference_energies", "sample_latencies"]
