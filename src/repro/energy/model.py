"""Energy and carbon model.

Implements the paper's accounting:

* inference energy  ``E_{i,n}^t = phi_n * M_i^t``  (kWh),
* transfer energy   ``F_{i,n}  = theta_i * W_n``   (kWh), and
* emissions         ``rho * energy``               (kg CO2),

with one calibration knob, ``requests_per_arrival``: each simulated arrival
statistically represents that many real-world inference requests.  The paper
subsamples 8000 data points to stand in for millions of requests while using
an absolute carbon cap of 500; without an explicit scale the stated
per-sample energies (1e-8 kWh) would make the cap trivially slack.  The
default (2e6) calibrates cumulative emissions over the default scenario to a
few times the default cap, so allowance trading is genuinely exercised —
matching the paper's figures where net purchases track the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_finite, check_nonnegative, check_positive

__all__ = ["EnergyModel", "sample_inference_energies", "sample_latencies"]

# Paper ranges (Section V-A).
PHI_RANGE_KWH = (6e-8, 10e-8)  # inference energy per request
LATENCY_RANGE_S = (0.025, 0.150)  # computation latency per request
THETA_KWH_PER_BYTE = 1.02e-16  # transfer energy per byte
RHO_KG_PER_KWH = 0.5  # 500 g/kWh


def sample_inference_energies(
    num_models: int, rng: np.random.Generator, model_sizes: np.ndarray | None = None
) -> np.ndarray:
    """Per-model inference energy ``phi_n`` in [6e-8, 10e-8] kWh/request.

    When ``model_sizes`` is given, energies are ordered by size (bigger
    models consume more), with small jitter, mirroring reality.
    """
    if num_models <= 0:
        raise ValueError(f"num_models must be positive, got {num_models}")
    lo, hi = PHI_RANGE_KWH
    if model_sizes is None:
        return rng.uniform(lo, hi, size=num_models)
    sizes = check_finite(model_sizes, "model_sizes")
    if sizes.size != num_models:
        raise ValueError("model_sizes length must equal num_models")
    span = sizes.max() - sizes.min()
    rel = (sizes - sizes.min()) / span if span > 0 else np.full(num_models, 0.5)
    jitter = rng.uniform(-0.05, 0.05, size=num_models)
    return lo + (hi - lo) * np.clip(rel + jitter, 0.0, 1.0)


def sample_latencies(
    num_edges: int,
    num_models: int,
    rng: np.random.Generator,
    model_sizes: np.ndarray | None = None,
) -> np.ndarray:
    """Computation cost ``v_{i,n}`` (seconds/request) in the paper's range.

    Latency grows with model size and varies per edge (heterogeneous
    hardware), yielding an ``(num_edges, num_models)`` matrix.
    """
    if num_edges <= 0 or num_models <= 0:
        raise ValueError("num_edges and num_models must be positive")
    lo, hi = LATENCY_RANGE_S
    if model_sizes is None:
        rel = rng.uniform(0.0, 1.0, size=num_models)
    else:
        sizes = check_finite(model_sizes, "model_sizes")
        span = sizes.max() - sizes.min()
        rel = (sizes - sizes.min()) / span if span > 0 else np.full(num_models, 0.5)
    edge_speed = rng.uniform(0.7, 1.3, size=num_edges)
    base = lo + (hi - lo) * rel
    matrix = np.outer(edge_speed, base)
    return np.clip(matrix, lo, hi)


@dataclass(frozen=True)
class EnergyModel:
    """Carbon accounting for the cloud-edge system.

    Attributes
    ----------
    phi_kwh:
        (N,) inference energy per request, kWh.
    theta_kwh_per_byte:
        (I,) transfer energy per byte sent to each edge, kWh.
    model_sizes_bytes:
        (N,) serialized model sizes ``W_n``.
    rho_kg_per_kwh:
        Carbon emission rate (paper: 0.5 kg/kWh).
    requests_per_arrival:
        Real-world requests represented by one simulated arrival.
    """

    phi_kwh: np.ndarray
    theta_kwh_per_byte: np.ndarray
    model_sizes_bytes: np.ndarray
    rho_kg_per_kwh: float = RHO_KG_PER_KWH
    requests_per_arrival: float = 2e6

    def __post_init__(self) -> None:
        check_finite(self.phi_kwh, "phi_kwh")
        check_finite(self.theta_kwh_per_byte, "theta_kwh_per_byte")
        check_finite(self.model_sizes_bytes, "model_sizes_bytes")
        if np.any(self.phi_kwh <= 0):
            raise ValueError("phi_kwh entries must be positive")
        if np.any(self.theta_kwh_per_byte < 0):
            raise ValueError("theta_kwh_per_byte entries must be non-negative")
        if np.any(self.model_sizes_bytes <= 0):
            raise ValueError("model sizes must be positive")
        if self.phi_kwh.shape != self.model_sizes_bytes.shape:
            raise ValueError("phi_kwh and model_sizes_bytes must align per model")
        check_nonnegative(self.rho_kg_per_kwh, "rho_kg_per_kwh")
        check_positive(self.requests_per_arrival, "requests_per_arrival")

    @property
    def num_models(self) -> int:
        """Number of models N."""
        return int(self.phi_kwh.size)

    @property
    def num_edges(self) -> int:
        """Number of edges I."""
        return int(self.theta_kwh_per_byte.size)

    def inference_energy_kwh(self, model: int, arrivals: int | float) -> float:
        """``E_{i,n}^t = phi_n * M`` scaled by ``requests_per_arrival``."""
        if arrivals < 0:
            raise ValueError(f"arrivals must be non-negative, got {arrivals}")
        return float(self.phi_kwh[model] * arrivals * self.requests_per_arrival)

    def transfer_energy_kwh(self, edge: int, model: int) -> float:
        """``F_{i,n} = theta_i * W_n``."""
        return float(self.theta_kwh_per_byte[edge] * self.model_sizes_bytes[model])

    def emissions_kg(self, energy_kwh: float) -> float:
        """Convert energy to carbon emissions via the rate ``rho``."""
        if energy_kwh < 0:
            raise ValueError(f"energy must be non-negative, got {energy_kwh}")
        return float(self.rho_kg_per_kwh * energy_kwh)

    def slot_emissions_kg(
        self, edge: int, model: int, arrivals: int | float, switched: bool
    ) -> float:
        """Total slot emissions: inference plus (if switched) model transfer.

        This is the paper's ``rho * (E_{i,n}^t + y_i^t F_{i,n})``.
        """
        energy = self.inference_energy_kwh(model, arrivals)
        if switched:
            energy += self.transfer_energy_kwh(edge, model)
        return self.emissions_kg(energy)

    def transfer_table_kwh(self) -> np.ndarray:
        """``(I, N)`` table of transfer energies ``F_{i,n} = theta_i * W_n``.

        Row ``i``, column ``n`` is the exact single multiplication
        :meth:`transfer_energy_kwh` performs, so table lookups are bitwise
        interchangeable with the scalar method — the vectorized simulator
        precomputes this once per run.
        """
        return self.theta_kwh_per_byte[:, None] * self.model_sizes_bytes[None, :]

    def slot_emissions_kg_batch(
        self,
        models: np.ndarray,
        arrivals: np.ndarray,
        switched: np.ndarray,
        transfer_kwh: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`slot_emissions_kg` over many edge-slots at once.

        ``transfer_kwh`` carries the already-gathered per-element transfer
        energies (rows/cells of :meth:`transfer_table_kwh`).  The scalar
        method's floating-point operation order is preserved element by
        element — ``((phi_n * M) * scale)`` then ``+ F_{i,n}`` only where
        switched (adding literal ``+0.0`` elsewhere, which is bit-exact for
        the non-negative energies here), then ``* rho`` — so every entry
        matches the scalar call bitwise.
        """
        if np.any(arrivals < 0):
            raise ValueError("arrivals must be non-negative")
        energy = (self.phi_kwh[models] * arrivals) * self.requests_per_arrival
        energy = energy + np.where(switched, transfer_kwh, 0.0)
        return self.rho_kg_per_kwh * energy

    def with_rho(self, rho_kg_per_kwh: float) -> "EnergyModel":
        """Copy of this model with a different emission rate (fig06 sweep)."""
        return EnergyModel(
            phi_kwh=self.phi_kwh,
            theta_kwh_per_byte=self.theta_kwh_per_byte,
            model_sizes_bytes=self.model_sizes_bytes,
            rho_kg_per_kwh=rho_kg_per_kwh,
            requests_per_arrival=self.requests_per_arrival,
        )
