"""Differentiable layers for the numpy NN substrate.

Each layer implements ``forward(x, training)`` and ``backward(grad_out)``.
Trainable layers expose ``params`` (name -> array) and accumulate matching
``grads`` during ``backward``.  Shapes follow NCHW for image tensors.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.ops import col2im, conv_output_size, im2col

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPoolGlobal",
    "ReLU",
    "Flatten",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
]


class Layer:
    """Base class: a differentiable, optionally trainable transformation."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching whatever backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), fill ``self.grads`` and return dL/d(input)."""
        raise NotImplementedError

    def num_params(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_params()})"


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b`` on (N, D) inputs."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": he_normal((in_features, out_features), fan_in=in_features, rng=rng),
            "b": zeros_init((out_features,)),
        }
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a training forward pass")
        self.grads["W"] = self._x.T @ grad_out
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class Conv2D(Layer):
    """2-D convolution (NCHW) implemented with im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid Conv2D geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        self.params = {
            "W": he_normal((out_channels, in_channels, kernel, kernel), fan_in, rng),
            "b": zeros_init((out_channels,)),
        }
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        n, _, h, w = x.shape
        oh = conv_output_size(h, self.kernel, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel, self.stride, self.padding)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["b"]
        if training:
            self._cols = cols
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, oc, oh, ow = grad_out.shape
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, oc)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] = (grad_mat.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] = grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        return col2im(grad_cols, self._x_shape, self.kernel, self.stride, self.padding)


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: each input channel convolved independently.

    This is the building block of MobileNet-V1 depthwise-separable
    convolutions (followed by a 1x1 ``Conv2D`` pointwise step).
    """

    def __init__(
        self,
        channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__()
        if min(channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid DepthwiseConv2D geometry")
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = kernel * kernel
        self.params = {
            "W": he_normal((channels, kernel, kernel), fan_in, rng),
            "b": zeros_init((channels,)),
        }
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"DepthwiseConv2D expected (N, {self.channels}, H, W), got {x.shape}"
            )
        n, c, h, w = x.shape
        oh = conv_output_size(h, self.kernel, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel, self.stride, self.padding)
        # (N*OH*OW, C*K*K) -> (N*OH*OW, C, K*K)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        cols3 = cols.reshape(-1, c, self.kernel * self.kernel)
        w_flat = self.params["W"].reshape(c, -1)
        out = np.einsum("pck,ck->pc", cols3, w_flat) + self.params["b"]
        if training:
            self._cols = cols3
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, oh, ow = grad_out.shape
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, c)
        w_flat = self.params["W"].reshape(c, -1)
        self.grads["W"] = np.einsum("pc,pck->ck", grad_mat, self._cols).reshape(
            self.params["W"].shape
        )
        self.grads["b"] = grad_mat.sum(axis=0)
        grad_cols = np.einsum("pc,ck->pck", grad_mat, w_flat).reshape(
            n * oh * ow, c * self.kernel * self.kernel
        )
        return col2im(grad_cols, self._x_shape, self.kernel, self.stride, self.padding)


class MaxPool2D(Layer):
    """Max pooling with ``kernel == stride`` (non-overlapping windows)."""

    def __init__(self, size: int = 2) -> None:
        super().__init__()
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s != 0 or w % s != 0:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool size {s}")
        xr = x.reshape(n, c, h // s, s, w // s, s)
        out = xr.max(axis=(3, 5))
        if training:
            expanded = out[:, :, :, None, :, None]
            mask = (xr == expanded).astype(float)
            # Split gradient equally among tied maxima so backward is exact.
            mask /= np.maximum(mask.sum(axis=(3, 5), keepdims=True), 1.0)
            self._mask = mask
            self._x_shape = x.shape
        else:
            self._mask = None
            self._x_shape = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        grad = grad_out[:, :, :, None, :, None] * self._mask
        return grad.reshape(self._x_shape)


class AvgPoolGlobal(Layer):
    """Global average pooling: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"AvgPoolGlobal expected NCHW, got shape {x.shape}")
        self._x_shape = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), self._x_shape
        ).copy()


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.maximum(x, 0.0)
        self._mask = (x > 0.0) if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * self._mask


class Flatten(Layer):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate <= 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class _BatchNormBase(Layer):
    """Shared batch-normalization machinery (axes differ per variant)."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {
            "W": np.ones(num_features),  # scale (gamma)
            "b": np.zeros(num_features),  # shift (beta)
        }
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    # Subclasses define how to view (N, C, ...) tensors as (M, C) matrices.
    def _to_matrix(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _from_matrix(self, m: np.ndarray, like: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        matrix = self._to_matrix(x)
        if matrix.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {matrix.shape[1]}"
            )
        if training:
            mean = matrix.mean(axis=0)
            var = matrix.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        normalized = (matrix - mean) / std
        out = normalized * self.params["W"] + self.params["b"]
        self._cache = (normalized, std, x.shape) if training else None
        return self._from_matrix(out, x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        normalized, std, x_shape = self._cache
        grad = self._to_matrix(grad_out)
        m = grad.shape[0]
        self.grads["W"] = np.sum(grad * normalized, axis=0)
        self.grads["b"] = grad.sum(axis=0)
        # Standard batch-norm input gradient (through batch mean/variance).
        gxn = grad * self.params["W"]
        grad_in = (
            gxn
            - gxn.mean(axis=0)
            - normalized * np.mean(gxn * normalized, axis=0)
        ) / std
        return self._from_matrix(grad_in, np.empty(x_shape))


class BatchNorm1D(_BatchNormBase):
    """Batch normalization over (N, C) feature matrices."""

    def _to_matrix(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1D expects (N, C), got shape {x.shape}")
        return x

    def _from_matrix(self, m: np.ndarray, like: np.ndarray) -> np.ndarray:
        return m


class BatchNorm2D(_BatchNormBase):
    """Batch normalization over (N, C, H, W) image tensors, per channel."""

    def _to_matrix(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2D expects NCHW, got shape {x.shape}")
        n, c, h, w = x.shape
        return x.transpose(0, 2, 3, 1).reshape(n * h * w, c)

    def _from_matrix(self, m: np.ndarray, like: np.ndarray) -> np.ndarray:
        n, c, h, w = like.shape
        return m.reshape(n, h, w, c).transpose(0, 3, 1, 2)
