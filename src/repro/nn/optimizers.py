"""First-order optimizers for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: updates every trainable layer in place after backward."""

    def step(self, layers: list[Layer]) -> None:
        """Apply one update using the gradients stored on ``layers``."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers: list[Layer]) -> None:
        for idx, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                if self.weight_decay > 0 and name != "b":
                    grad = grad + self.weight_decay * param
                if self.momentum > 0:
                    key = (idx, name)
                    vel = self._velocity.get(key)
                    vel = grad if vel is None else self.momentum * vel + grad
                    self._velocity[key] = vel
                    grad = vel
                param -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, layers: list[Layer]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for idx, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                if self.weight_decay > 0 and name != "b":
                    grad = grad + self.weight_decay * param
                key = (idx, name)
                m = self._m.get(key, np.zeros_like(param))
                v = self._v.get(key, np.zeros_like(param))
                m = self.beta1 * m + (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad * grad
                self._m[key] = m
                self._v[key] = v
                m_hat = m / bias1
                v_hat = v / bias2
                param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
