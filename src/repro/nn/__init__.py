"""A small from-scratch numpy neural-network framework.

This substrate replaces the PyTorch models used in the paper's evaluation.
It provides real forward/backward passes, SGD/Adam training, and builders for
the paper's six-model zoo (two CNN widths, LeNet-5, MLP, and a MobileNet-V1
style depthwise-separable network), all operating on NCHW numpy arrays.
"""

from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import (
    AvgPoolGlobal,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.nn.quantization import QuantizedSequential, quantize_network, quantize_tensor
from repro.nn.losses import BrierLoss, SoftmaxCrossEntropy, squared_label_loss
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.models import (
    ModelSpec,
    build_cnn,
    build_lenet5,
    build_mlp,
    build_mobilenet_tiny,
    build_model,
    build_model_zoo,
    mnist_like_zoo_specs,
    cifar_like_zoo_specs,
)
from repro.nn.training import TrainingResult, Trainer, evaluate_accuracy, evaluate_brier

__all__ = [
    "he_normal",
    "xavier_uniform",
    "zeros_init",
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPoolGlobal",
    "ReLU",
    "Flatten",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
    "QuantizedSequential",
    "quantize_network",
    "quantize_tensor",
    "BrierLoss",
    "SoftmaxCrossEntropy",
    "squared_label_loss",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "ModelSpec",
    "build_cnn",
    "build_lenet5",
    "build_mlp",
    "build_mobilenet_tiny",
    "build_model",
    "build_model_zoo",
    "mnist_like_zoo_specs",
    "cifar_like_zoo_specs",
    "Trainer",
    "TrainingResult",
    "evaluate_accuracy",
    "evaluate_brier",
]
