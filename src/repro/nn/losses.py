"""Loss functions for training and for the paper's inference loss.

The paper measures per-sample inference loss as the squared loss
``l_n(a, b) = (h_n(a) - b)^2``.  For classifiers we follow the standard
multi-class reading: ``h_n(a)`` is the softmax probability vector and ``b``
its one-hot label, giving the Brier score ``||p - e_b||^2 in [0, 2]``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.mathutils import softmax

__all__ = ["SoftmaxCrossEntropy", "BrierLoss", "squared_label_loss"]


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("label out of range")
    out = np.zeros((labels.size, num_classes), dtype=float)
    out[np.arange(labels.size), labels] = 1.0
    return out


def squared_label_loss(probabilities: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample squared (Brier) loss ``||p - one_hot(b)||^2``.

    Parameters
    ----------
    probabilities:
        (N, K) predicted class probabilities.
    labels:
        (N,) integer ground-truth labels.

    Returns
    -------
    (N,) array of per-sample losses in ``[0, 2]``.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.ndim != 2:
        raise ValueError(f"probabilities must be (N, K), got shape {p.shape}")
    y = _one_hot(np.asarray(labels), p.shape[1])
    return np.sum((p - y) ** 2, axis=1)


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy over a batch of logits."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Return ``(loss, dloss/dlogits)``."""
        p = softmax(logits, axis=1)
        n = logits.shape[0]
        y = _one_hot(np.asarray(labels), logits.shape[1])
        eps = 1e-12
        loss = float(-np.sum(y * np.log(p + eps)) / n)
        grad = (p - y) / n
        return loss, grad


class BrierLoss:
    """Mean squared loss between softmax probabilities and one-hot labels.

    This is the differentiable form of :func:`squared_label_loss`, used to
    verify by gradient check that the inference-loss definition is coherent.
    """

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Return ``(loss, dloss/dlogits)``."""
        p = softmax(logits, axis=1)
        n = logits.shape[0]
        y = _one_hot(np.asarray(labels), logits.shape[1])
        loss = float(np.sum((p - y) ** 2) / n)
        # dL/dz_i = (2/n) * (g_i - p_i * sum_j g_j) with g = p * (p - y).
        g = p * (p - y)
        grad = (2.0 / n) * (g - p * g.sum(axis=1, keepdims=True))
        return loss, grad
