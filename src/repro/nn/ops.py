"""Low-level tensor ops: padding and im2col/col2im for convolutions.

All image tensors are NCHW.  ``im2col`` unrolls sliding windows into a 2-D
matrix so that convolution becomes a single matrix multiply; ``col2im``
scatter-adds the matrix back, which is exactly the adjoint operation needed
for the convolution backward pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im", "pad_nchw"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unroll sliding windows of ``x`` (N,C,H,W) into (N*OH*OW, C*K*K)."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, padding)
    ow = conv_output_size(w, kernel, stride, padding)
    xp = pad_nchw(x, padding)
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * oh
        for kx in range(kernel):
            x_end = kx + stride * ow
            cols[:, :, ky, kx, :, :] = xp[:, :, ky:y_end:stride, kx:x_end:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kernel * kernel)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to (N,C,H,W)."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kernel, stride, padding)
    ow = conv_output_size(w, kernel, stride, padding)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * oh
        for kx in range(kernel):
            x_end = kx + stride * ow
            xp[:, :, ky:y_end:stride, kx:x_end:stride] += cols6[:, :, ky, kx, :, :]
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]
