"""Mini-batch training loop and evaluation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy, squared_label_loss
from repro.nn.network import Sequential
from repro.nn.optimizers import Optimizer, SGD

__all__ = ["TrainingResult", "Trainer", "evaluate_accuracy", "evaluate_brier"]


def evaluate_accuracy(network: Sequential, x: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples classified correctly."""
    if x.shape[0] == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    predictions = network.predict(x)
    return float(np.mean(predictions == np.asarray(labels)))


def evaluate_brier(network: Sequential, x: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared (Brier) inference loss — the paper's ``E[l_n]`` estimate."""
    if x.shape[0] == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    proba = network.predict_proba(x)
    return float(np.mean(squared_label_loss(proba, labels)))


@dataclass
class TrainingResult:
    """Per-epoch training history."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        """Training loss after the last epoch."""
        if not self.train_loss:
            raise ValueError("no epochs recorded")
        return self.train_loss[-1]


class Trainer:
    """Trains a :class:`Sequential` network by mini-batch gradient descent."""

    def __init__(
        self,
        network: Sequential,
        optimizer: Optimizer | None = None,
        loss: SoftmaxCrossEntropy | None = None,
    ) -> None:
        self.network = network
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.05, momentum=0.9)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()

    def fit(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        x_val: np.ndarray | None = None,
        labels_val: np.ndarray | None = None,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs, shuffling each epoch with ``rng``."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot train on an empty dataset")
        if labels.shape[0] != n:
            raise ValueError("x and labels disagree on the sample count")

        result = TrainingResult()
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                xb, yb = x[batch_idx], labels[batch_idx]
                logits = self.network.forward(xb, training=True)
                loss_value, grad = self.loss(logits, yb)
                self.network.backward(grad)
                self.optimizer.step(self.network.layers)
                epoch_loss += loss_value * xb.shape[0]
                correct += int(np.sum(np.argmax(logits, axis=1) == yb))
            result.train_loss.append(epoch_loss / n)
            result.train_accuracy.append(correct / n)
            if x_val is not None and labels_val is not None:
                result.val_accuracy.append(
                    evaluate_accuracy(self.network, x_val, labels_val)
                )
        return result
