"""Post-training weight quantization (paper Section VII, future work #2).

The paper's future work proposes carbon/energy control for large models via
quantization-aware model control.  This module implements symmetric
per-tensor uniform quantization of a trained network's weights: each weight
tensor is snapped to a ``2^bits``-level grid (simulated quantization — the
forward pass runs on the dequantized values, the standard way to evaluate
quantization accuracy), while the *serialized size* shrinks to
``bits/32`` of the float model.  Quantized variants therefore make
perfect extra "arms" for the model-selection bandit: smaller ``W_n``
(cheaper downloads, lower transfer energy), lower inference energy, and a
measurable accuracy cost that the controller must learn online.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.network import Sequential

__all__ = ["QuantizedSequential", "quantize_tensor", "quantize_network"]

_FLOAT_BITS = 32


def quantize_tensor(tensor: np.ndarray, bits: int) -> np.ndarray:
    """Simulated symmetric uniform quantization of one tensor.

    Values are scaled so the largest magnitude maps to the edge of a
    ``2^bits``-level signed integer grid, rounded, and mapped back.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    arr = np.asarray(tensor, dtype=float)
    max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
    if max_abs <= 0.0:
        return arr.copy()
    levels = 2 ** (bits - 1) - 1 if bits > 1 else 1
    scale = max_abs / levels
    return np.round(arr / scale) * scale


class QuantizedSequential(Sequential):
    """A Sequential whose serialized size reflects its weight bit-width."""

    def __init__(self, layers: list[Layer], bits: int, name: str = "model") -> None:
        super().__init__(layers, name=name)
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        """Size when shipped as ``bits``-wide integers plus scales."""
        # One float scale per parameter tensor is negligible; count weights.
        raw_bits = self.num_params() * self.bits
        return max(int(np.ceil(raw_bits / 8)), 1)


def quantize_network(network: Sequential, bits: int) -> QuantizedSequential:
    """Return a quantized copy of ``network`` (the original is untouched).

    Every parameter tensor is independently quantized; biases are kept in
    float (standard practice — they are a negligible fraction of the size
    and quantizing them costs disproportionate accuracy).
    """
    import copy

    layers = copy.deepcopy(network.layers)
    for layer in layers:
        for key in layer.params:
            if key == "b":
                continue
            layer.params[key] = quantize_tensor(layer.params[key], bits)
    return QuantizedSequential(layers, bits=bits, name=f"{network.name}-int{bits}")
