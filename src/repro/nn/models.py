"""The paper's model zoo, rebuilt for the synthetic 8x8 datasets.

The paper evaluates six models per dataset — two variants of each of three
architecture families (Section V-A): for MNIST a small CNN, LeNet-5 and an
MLP; for CIFAR-10 a small CNN, LeNet-5 and MobileNet-V1.  We reproduce the
same families at 8x8 input resolution, with two width variants per family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import (
    AvgPoolGlobal,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.nn.network import Sequential

__all__ = [
    "ModelSpec",
    "build_mlp",
    "build_cnn",
    "build_lenet5",
    "build_mobilenet_tiny",
    "build_model",
    "build_model_zoo",
    "mnist_like_zoo_specs",
    "cifar_like_zoo_specs",
]


@dataclass(frozen=True)
class ModelSpec:
    """Declarative description of one zoo member.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"cnn-32"``.
    family:
        One of ``{"mlp", "cnn", "lenet5", "mobilenet"}``.
    in_channels / image_size / num_classes:
        Input geometry.
    kwargs:
        Family-specific width parameters forwarded to the builder.
    epochs:
        Training epochs used when materializing the zoo; varying epochs (and
        widths) is how the zoo acquires a realistic spread of loss levels.
    """

    name: str
    family: str
    in_channels: int = 1
    image_size: int = 8
    num_classes: int = 10
    kwargs: dict = field(default_factory=dict)
    epochs: int = 4


def build_mlp(
    rng: np.random.Generator,
    in_channels: int = 1,
    image_size: int = 8,
    num_classes: int = 10,
    hidden: int = 64,
    name: str = "mlp",
) -> Sequential:
    """Two fully-connected layers with ReLU — the paper's MLP."""
    in_dim = in_channels * image_size * image_size
    return Sequential(
        [
            Flatten(),
            Dense(in_dim, hidden, rng),
            ReLU(),
            Dense(hidden, num_classes, rng),
        ],
        name=name,
    )


def build_cnn(
    rng: np.random.Generator,
    in_channels: int = 1,
    image_size: int = 8,
    num_classes: int = 10,
    channels: tuple[int, int] = (32, 64),
    name: str = "cnn",
) -> Sequential:
    """The paper's CNN: two 3x3 conv+ReLU blocks, each with 2x2 max pooling."""
    c1, c2 = channels
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    final = image_size // 4
    return Sequential(
        [
            Conv2D(in_channels, c1, kernel=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(c2 * final * final, num_classes, rng),
        ],
        name=name,
    )


def build_lenet5(
    rng: np.random.Generator,
    in_channels: int = 1,
    image_size: int = 8,
    num_classes: int = 10,
    width_scale: float = 1.0,
    name: str = "lenet5",
) -> Sequential:
    """LeNet-5 scaled to 8x8 input (5x5 convs, two pools, three dense layers)."""
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    c1 = max(int(round(6 * width_scale)), 2)
    c2 = max(int(round(16 * width_scale)), 4)
    f1 = max(int(round(120 * width_scale)), 16)
    f2 = max(int(round(84 * width_scale)), 12)
    final = image_size // 4
    return Sequential(
        [
            Conv2D(in_channels, c1, kernel=5, rng=rng, padding=2),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel=5, rng=rng, padding=2),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(c2 * final * final, f1, rng),
            ReLU(),
            Dense(f1, f2, rng),
            ReLU(),
            Dense(f2, num_classes, rng),
        ],
        name=name,
    )


def build_mobilenet_tiny(
    rng: np.random.Generator,
    in_channels: int = 3,
    image_size: int = 8,
    num_classes: int = 10,
    width: int = 16,
    name: str = "mobilenet",
) -> Sequential:
    """MobileNet-V1 style network: depthwise-separable conv blocks."""
    if image_size % 2 != 0:
        raise ValueError(f"image_size must be even, got {image_size}")
    return Sequential(
        [
            Conv2D(in_channels, width, kernel=3, rng=rng, padding=1),
            ReLU(),
            # Depthwise-separable block 1.
            DepthwiseConv2D(width, kernel=3, rng=rng, padding=1),
            ReLU(),
            Conv2D(width, 2 * width, kernel=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            # Depthwise-separable block 2.
            DepthwiseConv2D(2 * width, kernel=3, rng=rng, padding=1),
            ReLU(),
            Conv2D(2 * width, 4 * width, kernel=1, rng=rng),
            ReLU(),
            AvgPoolGlobal(),
            Dense(4 * width, num_classes, rng),
        ],
        name=name,
    )


_BUILDERS = {
    "mlp": build_mlp,
    "cnn": build_cnn,
    "lenet5": build_lenet5,
    "mobilenet": build_mobilenet_tiny,
}


def build_model(spec: ModelSpec, rng: np.random.Generator) -> Sequential:
    """Instantiate the (untrained) network described by ``spec``."""
    builder = _BUILDERS.get(spec.family)
    if builder is None:
        raise ValueError(
            f"unknown model family {spec.family!r}; expected one of {sorted(_BUILDERS)}"
        )
    return builder(
        rng,
        in_channels=spec.in_channels,
        image_size=spec.image_size,
        num_classes=spec.num_classes,
        name=spec.name,
        **spec.kwargs,
    )


def mnist_like_zoo_specs(image_size: int = 8, num_classes: int = 10) -> list[ModelSpec]:
    """Six-model zoo for the MNIST-like dataset (paper Section V-A)."""
    common = {"in_channels": 1, "image_size": image_size, "num_classes": num_classes}
    return [
        ModelSpec("cnn-32", "cnn", kwargs={"channels": (16, 32)}, epochs=5, **common),
        ModelSpec("cnn-64", "cnn", kwargs={"channels": (32, 64)}, epochs=5, **common),
        ModelSpec("lenet5", "lenet5", kwargs={"width_scale": 1.0}, epochs=4, **common),
        ModelSpec("lenet5-slim", "lenet5", kwargs={"width_scale": 0.5}, epochs=2, **common),
        ModelSpec("mlp-128", "mlp", kwargs={"hidden": 128}, epochs=4, **common),
        ModelSpec("mlp-32", "mlp", kwargs={"hidden": 32}, epochs=1, **common),
    ]


def cifar_like_zoo_specs(image_size: int = 8, num_classes: int = 10) -> list[ModelSpec]:
    """Six-model zoo for the CIFAR-10-like dataset (paper Section V-A)."""
    common = {"in_channels": 3, "image_size": image_size, "num_classes": num_classes}
    return [
        ModelSpec("cnn-64", "cnn", kwargs={"channels": (32, 64)}, epochs=5, **common),
        ModelSpec("cnn-128", "cnn", kwargs={"channels": (64, 128)}, epochs=5, **common),
        ModelSpec("lenet5", "lenet5", kwargs={"width_scale": 1.0}, epochs=4, **common),
        ModelSpec("lenet5-slim", "lenet5", kwargs={"width_scale": 0.5}, epochs=2, **common),
        ModelSpec("mobilenet-16", "mobilenet", kwargs={"width": 16}, epochs=4, **common),
        ModelSpec("mobilenet-8", "mobilenet", kwargs={"width": 8}, epochs=1, **common),
    ]


def build_model_zoo(
    specs: list[ModelSpec], rng: np.random.Generator
) -> list[Sequential]:
    """Instantiate every model in ``specs`` (untrained)."""
    return [build_model(spec, rng) for spec in specs]
