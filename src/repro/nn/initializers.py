"""Weight initializers for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros_init"]


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization, suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in/fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=float)
