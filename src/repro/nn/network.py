"""Sequential network container."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.utils.mathutils import softmax

__all__ = ["Sequential"]

_BYTES_PER_PARAM = 4  # float32 storage, as shipped over the network


class Sequential:
    """A feed-forward stack of layers ending in logits.

    The container exposes the operations the simulator needs: probability
    prediction (softmax over logits), classification, parameter counting and
    the model size in bytes (the paper's ``W_n``, used for transfer energy).
    """

    def __init__(self, layers: list[Layer], name: str = "model") -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack, returning logits."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate from dL/dlogits through every layer."""
        grad = grad_logits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability predictions (N, K)."""
        return softmax(self.forward(x, training=False), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions (N,)."""
        return np.argmax(self.forward(x, training=False), axis=1)

    def num_params(self) -> int:
        """Total trainable parameter count."""
        return sum(layer.num_params() for layer in self.layers)

    def size_bytes(self) -> int:
        """Serialized model size in bytes — the paper's model size ``W_n``."""
        return self.num_params() * _BYTES_PER_PARAM

    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy out all parameters (for checkpointing in tests)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Load parameters previously returned by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError("weight list length does not match layer count")
        for layer, stored in zip(self.layers, weights):
            if set(stored) != set(layer.params):
                raise ValueError("weight keys do not match layer parameters")
            for key, value in stored.items():
                if layer.params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{layer.params[key].shape} vs {value.shape}"
                    )
                layer.params[key] = value.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}], params={self.num_params()})"
