"""Lyapunov drift-plus-penalty carbon trading baseline.

The paper's state-of-the-art trading baseline ("LY", after Yang et al. and
related carbon-neutral scheduling work): maintain a virtual queue tracking
the cumulative neutrality violation,

    Q^{t+1} = [Q^t + e^t - R/T - z^t + w^t]^+ ,

and at each slot minimize the drift-plus-penalty bound

    V * (z c^t - w r^t) + Q^t * (e - R/T - z + w)

over ``0 <= z, w <= bound``.  The objective is linear in ``(z, w)``, so the
minimizer is bang-bang: buy the maximum when ``Q^t > V c^t`` (the queue
pressure outweighs the purchase price) and sell the maximum when
``Q^t < V r^t`` (selling revenue outweighs the queue pressure).
"""

from __future__ import annotations

from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["LyapunovTrading"]


class LyapunovTrading(TradingPolicy):
    """Virtual-queue drift-plus-penalty trading (paper "LY").

    Parameters
    ----------
    v:
        The drift-plus-penalty trade-off weight ``V``; larger values weigh
        trading cost more against queue (violation) growth.
    trade_fraction:
        Fraction of the feasible trade bound used as the bang-bang quantity,
        smoothing the all-or-nothing behaviour slightly.
    """

    name = "LY"

    def __init__(self, v: float = 1.0, trade_fraction: float = 0.5) -> None:
        check_positive(v, "v")
        check_positive(trade_fraction, "trade_fraction")
        if trade_fraction > 1.0:
            raise ValueError(f"trade_fraction must be <= 1, got {trade_fraction}")
        self.v = v
        self.trade_fraction = trade_fraction
        self._queue = 0.0
        self._queue_history: list[float] = []

    @property
    def queue(self) -> float:
        """Current virtual-queue backlog ``Q^t``."""
        return self._queue

    @property
    def queue_history(self) -> list[float]:
        """Queue value after every completed slot."""
        return list(self._queue_history)

    def decide(self, context: TradingContext) -> TradeDecision:
        quantity = self.trade_fraction * context.trade_bound
        buy = quantity if self._queue > self.v * context.buy_price else 0.0
        sell = quantity if self._queue < self.v * context.sell_price else 0.0
        return TradeDecision(buy=buy, sell=sell)

    def observe(
        self, context: TradingContext, decision: TradeDecision, emissions: float
    ) -> None:
        check_nonnegative(emissions, "emissions")
        drift = emissions - context.cap_per_slot - decision.buy + decision.sell
        self._queue = max(self._queue + drift, 0.0)
        self._queue_history.append(self._queue)
