"""Threshold carbon trading baseline."""

from __future__ import annotations

from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ThresholdTrading"]


class ThresholdTrading(TradingPolicy):
    """Price-threshold trading (paper "TH").

    Buys a fixed quantity whenever the buying price drops below
    ``buy_threshold`` and sells a fixed quantity whenever the selling price
    rises above ``sell_threshold``.  Quantities default to the running mean
    of slot emissions so the policy is at least scale-aware, but — as the
    paper notes — its decisions are unrelated to the cap or the workload.
    """

    name = "TH"

    def __init__(
        self,
        buy_threshold: float,
        sell_threshold: float,
        quantity: float | None = None,
    ) -> None:
        check_positive(buy_threshold, "buy_threshold")
        check_positive(sell_threshold, "sell_threshold")
        self.buy_threshold = buy_threshold
        self.sell_threshold = sell_threshold
        if quantity is not None:
            check_nonnegative(quantity, "quantity")
        self.quantity = quantity

    def _quantity(self, context: TradingContext) -> float:
        if self.quantity is not None:
            return self.quantity
        return context.mean_slot_emissions

    def decide(self, context: TradingContext) -> TradeDecision:
        quantity = self._clip(self._quantity(context), context.trade_bound)
        buy = quantity if context.buy_price < self.buy_threshold else 0.0
        sell = quantity if context.sell_price > self.sell_threshold else 0.0
        return TradeDecision(buy=buy, sell=sell)
