"""Random carbon trading baseline."""

from __future__ import annotations

import numpy as np

from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.utils.validation import check_in_range

__all__ = ["RandomTrading"]


class RandomTrading(TradingPolicy):
    """Buys and sells uniformly random quantities each slot (paper "Ran").

    Quantities are drawn from ``[0, intensity * trade_bound]``, independent
    of prices, workload and the cap — the paper's point of comparison for a
    policy with no signal at all.
    """

    name = "Ran"

    def __init__(self, rng: np.random.Generator, intensity: float = 0.25) -> None:
        check_in_range(intensity, "intensity", 0.0, 1.0)
        self._rng = rng
        self.intensity = intensity

    def decide(self, context: TradingContext) -> TradeDecision:
        high = self.intensity * context.trade_bound
        return TradeDecision(
            buy=float(self._rng.uniform(0.0, high)),
            sell=float(self._rng.uniform(0.0, high)),
        )
