"""Baseline carbon-trading policies (paper Section V-A)."""

from repro.trading.random_trader import RandomTrading
from repro.trading.threshold import ThresholdTrading
from repro.trading.lyapunov import LyapunovTrading

__all__ = ["RandomTrading", "ThresholdTrading", "LyapunovTrading"]
