"""reprolint — AST-based reproducibility & numerical-safety linter.

This reproduction's claims (Theorem 1-3 regret/fit bounds, figure-level
agreement with the paper) are only checkable when every run is seed-exact
and every numerical invariant holds.  reprolint enforces that discipline
statically: a visitor framework over the Python AST, a registry of rules
with stable ``RPL001``... codes, per-line ``# noqa: RPLxxx`` suppression,
and text/JSON reporters.  The whole package gates itself through
``tests/test_lint_self.py``, which requires ``repro-lint src/repro`` to
report zero findings.

Quick use::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])      # [] when clean

    $ python -m repro.lint src/repro          # exit 0 clean / 1 findings
"""

from repro.lint.engine import (
    SEVERITIES,
    FileContext,
    Finding,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import (
    DEFAULT_PATH_RULES,
    DEFAULT_PATH_SEVERITY,
    Rule,
    all_rules,
    register,
    registered_codes,
)

__all__ = [
    "DEFAULT_PATH_RULES",
    "DEFAULT_PATH_SEVERITY",
    "FileContext",
    "Finding",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "registered_codes",
    "render_json",
    "render_text",
]
