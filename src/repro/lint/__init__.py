"""reprolint — AST-based reproducibility & numerical-safety linter.

This reproduction's claims (Theorem 1-3 regret/fit bounds, figure-level
agreement with the paper) are only checkable when every run is seed-exact
and every numerical invariant holds.  reprolint enforces that discipline
statically: a visitor framework over the Python AST, a registry of rules
with stable ``RPL001``... codes, per-line ``# noqa: RPLxxx`` suppression,
and text/JSON/SARIF reporters.  Since the project-level pass, runs over a
path set share one :class:`~repro.lint.project.ProjectContext` — an
import/symbol index that lets rules follow calls and re-exports *across*
the linted files (async-safety RPL012, RNG-stream discipline RPL015,
shape-claim checking RPL017).  The whole package gates itself through
``tests/test_lint_self.py``, which requires ``repro-lint src/repro`` to
report zero findings.

Quick use::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])      # [] when clean

    $ python -m repro.lint src/repro          # exit 0 clean / 1 findings
    $ python -m repro.lint --format sarif src # CI code-scanning output
    $ python -m repro.lint --write-baseline lint-baseline.json src
    $ python -m repro.lint --baseline lint-baseline.json src
"""

from repro.lint.baseline import (
    filter_new_findings,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    SEVERITIES,
    FileContext,
    Finding,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.project import (
    ModuleInfo,
    ProjectContext,
    ShapeClaim,
    build_project,
)
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.rules import (
    DEFAULT_PATH_RULES,
    DEFAULT_PATH_SEVERITY,
    ProjectRule,
    Rule,
    all_rules,
    register,
    registered_codes,
)

__all__ = [
    "DEFAULT_PATH_RULES",
    "DEFAULT_PATH_SEVERITY",
    "FileContext",
    "Finding",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "SEVERITIES",
    "ShapeClaim",
    "all_rules",
    "build_project",
    "filter_new_findings",
    "fingerprint",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "registered_codes",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
