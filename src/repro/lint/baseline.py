"""Baseline workflow: record today's findings, gate only on new ones.

Adopting a new rule family over a large tree usually surfaces legacy
findings that are not worth fixing in the same change.  The baseline
workflow makes that adoption incremental without weakening the gate for
new code:

* ``repro-lint --write-baseline lint-baseline.json src/`` records every
  current finding;
* ``repro-lint --baseline lint-baseline.json src/`` reports all findings
  but exit-gates only those *not* in the baseline.

Findings are matched by a content fingerprint (path, rule code, message),
deliberately excluding line/column so unrelated edits that shift code do
not resurrect baselined findings.  Identical fingerprints are counted: a
file that had two baselined ``RPL010`` prints and grows a third fails the
gate with exactly one new finding.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.lint.engine import Finding

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "filter_new_findings",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Bump when the baseline file layout changes; loading a newer (or garbage)
#: file raises so a stale baseline cannot silently disable the gate.
BASELINE_SCHEMA_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable content fingerprint of one finding (line/column excluded)."""
    payload = f"{finding.path}|{finding.code}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Write the baseline file recording ``findings`` (fingerprint counts)."""
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "total_findings": len(findings),
        "fingerprints": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> Counter[str]:
    """Load fingerprint counts from a baseline file.

    Raises ``ValueError`` on a malformed file or unknown schema version —
    a corrupt baseline must fail loudly, not admit everything.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"baseline file {path} must hold a JSON object")
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline file {path} has schema_version {version!r}; "
            f"this build reads version {BASELINE_SCHEMA_VERSION} — "
            "regenerate with --write-baseline"
        )
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v >= 0
        for k, v in fingerprints.items()
    ):
        raise ValueError(
            f"baseline file {path}: 'fingerprints' must map strings to "
            "non-negative counts"
        )
    return Counter(fingerprints)


def filter_new_findings(
    findings: Sequence[Finding], baseline: Counter[str]
) -> list[Finding]:
    """The findings not covered by ``baseline`` (fingerprint-count aware).

    Each baselined fingerprint absorbs up to its recorded count of matching
    findings (in report order); the remainder — new findings — are
    returned and should gate the exit code.
    """
    budget = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh
