"""The reprolint rule registry.

Each rule has a stable code (``RPL001``...), a one-line summary, and a
``check(context)`` method yielding :class:`~repro.lint.engine.Finding`
objects.  Rules are registered with :func:`register` so reporters, the CLI,
and the self-gate test all enumerate the same set.

The rules encode this reproduction's failure modes: Algorithm 1's
Tsallis-INF sampling and Algorithm 2's primal-dual updates are verifiable
against the paper's Theorem 1-3 bounds only if every run is seed-exact and
every simplex/estimator invariant holds, so randomness must flow through
named ``np.random.Generator`` streams, clock reads must not leak into
simulated time, and hot-path numerics must be guarded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding

__all__ = [
    "DEFAULT_PATH_RULES",
    "DEFAULT_PATH_SEVERITY",
    "DunderAllDriftRule",
    "FloatEqualityRule",
    "GlobalRandomStateRule",
    "HOT_PATH_DIRS",
    "InPlaceArrayMutationRule",
    "MutableDefaultRule",
    "PRINT_ALLOWED",
    "PrintInLibraryRule",
    "Rule",
    "SilentExceptionRule",
    "UnguardedHotPathNumericsRule",
    "UnseededDefaultRngRule",
    "UnvalidatedArrayParamRule",
    "WallClockRule",
    "all_rules",
    "dotted_name",
    "register",
    "registered_codes",
]

#: Directories whose modules form the numerical hot path (Algorithms 1-2).
HOT_PATH_DIRS = ("core", "bandits", "trading")

#: Directories/modules allowed to write to stdout (user-facing surfaces).
PRINT_ALLOWED = ("experiments", "lint", "cli", "__main__")

#: Per-path rule waivers applied by default (directory/stem -> rule codes).
#: ``benchmarks/`` harnesses print their results by design — that is their
#: entire user interface — so RPL010 is waived there by configuration
#: instead of per-line ``noqa`` noise; every other rule still applies.
DEFAULT_PATH_RULES: dict[str, frozenset[str]] = {
    "benchmarks": frozenset({"RPL010"}),
}

#: Per-path severity overrides applied by default (directory/stem ->
#: {code: severity}).  ``examples/`` scripts also print by design, but a
#: *downgrade* beats a waiver there: prints stay visible in reports (so an
#: example growing non-demo logic is noticed) without failing the gate.
DEFAULT_PATH_SEVERITY: dict[str, dict[str, str]] = {
    "examples": {"RPL010": "warning"},
}

_REGISTRY: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry (code-unique)."""
    if not cls.code.startswith("RPL"):
        raise ValueError(f"rule code must start with 'RPL', got {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list["Rule"]:
    """One fresh instance of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def registered_codes() -> list[str]:
    """The sorted stable codes of every registered rule."""
    return sorted(_REGISTRY)


class Rule:
    """Base class: subclasses set ``code``/``summary`` and yield findings.

    ``severity`` is the rule's default level for every finding it emits
    (``"error"`` gates the CLI exit code, ``"warning"`` never does);
    per-path severity overrides may adjust it after the fact.
    """

    code: str = "RPL000"
    summary: str = ""
    severity: str = "error"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file; default walks every AST node."""
        for node in ast.walk(context.tree):
            yield from self.visit(node, context)

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        """Per-node hook for ``check``'s default walk; override either."""
        return iter(())

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Resolve ``a.b.c`` attribute chains to the string ``"a.b.c"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


# Module-level numpy legacy RandomState functions and stdlib ``random``
# sampling functions — both mutate hidden global state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "beta", "binomial", "exponential",
        "gamma", "geometric", "gumbel", "laplace", "lognormal", "poisson",
        "get_state", "set_state", "random_integers", "randrange", "choices",
        "betavariate", "gauss", "expovariate", "triangular", "vonmisesvariate",
    }
)


@register
class GlobalRandomStateRule(Rule):
    """RPL001 — calls that draw from hidden global RNG state."""

    code = "RPL001"
    summary = (
        "global random state (np.random.* / random.*) breaks seed "
        "reproducibility; thread a np.random.Generator instead"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is None:
                return
            parts = name.split(".")
            if (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[-1] in _GLOBAL_RANDOM_FNS
            ):
                yield self.finding(
                    context,
                    node,
                    f"call to {name}() uses hidden global RNG state; "
                    "draw from an explicit np.random.Generator stream",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in _GLOBAL_RANDOM_FNS
                )
                if bad:
                    yield self.finding(
                        context,
                        node,
                        "importing global-state samplers from the stdlib "
                        f"random module ({', '.join(bad)}); use "
                        "np.random.Generator streams",
                    )


@register
class UnseededDefaultRngRule(Rule):
    """RPL002 — ``default_rng()`` with no seed in library code."""

    code = "RPL002"
    summary = (
        "default_rng() without a seed/SeedSequence is nondeterministic; "
        "accept a Generator parameter or thread a seed"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name is None or name.split(".")[-1] != "default_rng":
            return
        if not node.args and not node.keywords:
            yield self.finding(
                context,
                node,
                "default_rng() without arguments seeds from OS entropy; "
                "pass a seed/SeedSequence or accept a Generator parameter",
            )


@register
class FloatEqualityRule(Rule):
    """RPL003 — ``==`` / ``!=`` against float literals."""

    code = "RPL003"
    summary = (
        "float equality comparison; use an explicit tolerance "
        "(math.isclose / np.isclose) or an ordering test"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(
                isinstance(side, ast.Constant) and isinstance(side.value, float)
                for side in pair
            ):
                yield self.finding(
                    context,
                    node,
                    "equality comparison against a float literal is "
                    "rounding-fragile; compare with a tolerance or restate "
                    "as an ordering test",
                )


_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


@register
class MutableDefaultRule(Rule):
    """RPL004 — mutable default argument values."""

    code = "RPL004"
    summary = "mutable default argument is shared across calls; default to None"

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                yield self.finding(
                    context,
                    default,
                    f"mutable default argument in {node.name}() is evaluated "
                    "once and shared across calls; default to None and "
                    "construct inside the body",
                )


_STABILIZERS = frozenset({"clip", "min", "max", "minimum", "maximum", "where"})


def _has_stabilizer(node: ast.AST) -> bool:
    """Whether a subtree contains a range-limiting call (clip/min/max/...)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] in _STABILIZERS:
                return True
    return False


_ZERO_REDUCERS = frozenset({"sum", "len", "count_nonzero", "prod"})


@register
class UnguardedHotPathNumericsRule(Rule):
    """RPL005 — unguarded ``exp`` / risky division in hot-path modules."""

    code = "RPL005"
    summary = (
        "hot-path (core/bandits/trading) exp without clip/max-shift, or "
        "division by a bare reduction that can be zero"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.in_directory(*HOT_PATH_DIRS):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if (
                    name is not None
                    and name.split(".")[-1] == "exp"
                    and name.split(".")[0] in {"np", "numpy", "math"}
                    and node.args
                    and not _has_stabilizer(node.args[0])
                ):
                    yield self.finding(
                        context,
                        node,
                        "np.exp on an unbounded argument can overflow and "
                        "poison the simplex; clip or max-shift the exponent "
                        "first",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                den = node.right
                if isinstance(den, ast.Call):
                    name = _call_name(den)
                    if (
                        name is not None
                        and name.split(".")[-1] in _ZERO_REDUCERS
                        and not _has_stabilizer(node.right)
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"division by {name}(...) can divide by zero on "
                            "empty/degenerate input; bound it with max(...) "
                            "or validate first",
                        )


def _annotation_text(annotation: ast.AST | None) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse failure is cosmetic only
        return ""


_ARRAY_MARKERS = ("ndarray", "ArrayLike")


@register
class UnvalidatedArrayParamRule(Rule):
    """RPL006 — public ``core/`` callables taking arrays without check_*."""

    code = "RPL006"
    summary = (
        "public core/ function accepts an ndarray parameter but never calls "
        "a check_* validator"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.in_directory("core"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            annotated = [
                arg.arg
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
                if any(
                    marker in _annotation_text(arg.annotation)
                    for marker in _ARRAY_MARKERS
                )
            ]
            if not annotated:
                continue
            calls_validator = any(
                isinstance(sub, ast.Call)
                and (name := dotted_name(sub.func)) is not None
                and name.split(".")[-1].startswith("check_")
                for sub in ast.walk(node)
            )
            if not calls_validator:
                yield self.finding(
                    context,
                    node,
                    f"{node.name}() accepts array parameter(s) "
                    f"{', '.join(annotated)} but never calls a check_* "
                    "validator (repro.utils.validation)",
                )


@register
class DunderAllDriftRule(Rule):
    """RPL007 — ``__all__`` out of sync with the module's public names."""

    code = "RPL007"
    summary = (
        "__all__ lists an unbound name, or a public top-level def/class is "
        "missing from __all__"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        module = context.tree
        all_node: ast.AST | None = None
        declared: list[str] | None = None
        for stmt in module.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    all_node = stmt
                    if isinstance(value, (ast.List, ast.Tuple)):
                        declared = [
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
        if all_node is None or declared is None:
            return

        bound: set[str] = set()
        public_defs: dict[str, ast.AST] = {}
        for stmt in module.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        return  # star imports defeat static analysis
                    bound.add(alias.asname or alias.name.split(".")[0])
        bound.add("__version__")

        for name in declared:
            if name not in bound:
                yield self.finding(
                    context,
                    all_node,
                    f"__all__ lists {name!r} which is not defined or "
                    "imported at module top level",
                )
        declared_set = set(declared)
        for name, node in sorted(public_defs.items()):
            if name not in declared_set:
                yield self.finding(
                    context,
                    node,
                    f"public top-level name {name!r} is missing from "
                    "__all__; export it or rename with a leading underscore",
                )


_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """RPL008 — wall-clock reads leaking into simulated time."""

    code = "RPL008"
    summary = (
        "time.time()/datetime.now() makes runs time-dependent; simulated "
        "time must come from the slot index (perf_counter is fine for "
        "duration measurement)"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name in _WALL_CLOCK_CALLS:
            yield self.finding(
                context,
                node,
                f"{name}() reads the wall clock, making runs "
                "nondeterministic; derive simulated time from the slot "
                "index (use time.perf_counter only to measure durations)",
            )


@register
class SilentExceptionRule(Rule):
    """RPL009 — bare excepts and silently swallowed broad exceptions."""

    code = "RPL009"
    summary = "bare except, or broad except whose body is just pass"

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield self.finding(
                context,
                node,
                "bare except catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions you expect",
            )
            return
        broad = dotted_name(node.type) in {"Exception", "BaseException"}
        swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if broad and swallows:
            yield self.finding(
                context,
                node,
                "broad exception silently swallowed; numerical failures in "
                "this codebase must surface, not vanish",
            )


@register
class PrintInLibraryRule(Rule):
    """RPL010 — stray ``print`` in library (non-CLI, non-experiment) code."""

    code = "RPL010"
    summary = (
        "print() in library code pollutes experiment output; raise, return, "
        "or report through the experiments/reporting layer"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.stem in PRINT_ALLOWED or context.in_directory(*PRINT_ALLOWED):
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    context,
                    node,
                    "print() in library code; route output through the "
                    "reporting layer or a returned value",
                )


#: ndarray methods that mutate the array they are called on.
_INPLACE_ARRAY_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "setflags", "itemset"}
)

#: Calls that produce an independent array (rebinding a parameter through
#: one of these severs aliasing with the caller's array).
_COPYING_CALLS = frozenset({"copy", "array", "deepcopy", "ascontiguousarray"})


def _is_copy_expr(value: ast.expr) -> bool:
    """Whether an expression's result is detached from its inputs' storage."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] in _COPYING_CALLS:
                return True
    return False


@register
class InPlaceArrayMutationRule(Rule):
    """RPL011 — array parameters mutated in place without a ``.copy()``."""

    code = "RPL011"
    summary = (
        "function mutates an ndarray parameter in place without copying "
        "first; the caller's array is silently modified"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node, context)

    def _check_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        context: FileContext,
    ) -> Iterator[Finding]:
        args = func.args
        array_params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if any(
                marker in _annotation_text(arg.annotation)
                for marker in _ARRAY_MARKERS
            )
        }
        if not array_params:
            return
        # A parameter rebound to a fresh array (x = x.copy(), np.array(x),
        # copy.deepcopy(x), ...) no longer aliases the caller's storage:
        # mutations after the rebind line are the callee's own business.
        copied_after: dict[str, int] = {}
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign) and _is_copy_expr(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id in array_params:
                        line = copied_after.get(target.id, sub.lineno)
                        copied_after[target.id] = min(line, sub.lineno)
        for sub in ast.walk(func):
            param = self._mutated_param(sub, array_params)
            if param is None:
                continue
            if getattr(sub, "lineno", 0) > copied_after.get(param, 1 << 60):
                continue
            yield self.finding(
                context,
                sub,
                f"{func.name}() mutates array parameter {param!r} in "
                "place; the caller's array is silently modified — operate "
                f"on a copy ({param} = {param}.copy()) or document the "
                "aliasing contract",
            )

    @staticmethod
    def _mutated_param(node: ast.AST, params: set[str]) -> str | None:
        """The parameter name ``node`` mutates in place, if any."""

        def base_name(target: ast.expr) -> str | None:
            if isinstance(target, ast.Subscript):
                inner = target.value
                while isinstance(inner, (ast.Subscript, ast.Attribute)):
                    inner = inner.value
                if isinstance(inner, ast.Name):
                    return inner.id
            return None

        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = base_name(target)
                if name in params:
                    return name
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id in params:
                return target.id
            name = base_name(target)
            if name in params:
                return name
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in params
                and node.func.attr in _INPLACE_ARRAY_METHODS
            ):
                return node.func.value.id
            for keyword in node.keywords:
                if (
                    keyword.arg == "out"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in params
                ):
                    return keyword.value.id
        return None
