"""The reprolint rule registry.

Each rule has a stable code (``RPL001``...), a one-line summary, and a
``check(context)`` method yielding :class:`~repro.lint.engine.Finding`
objects.  Rules are registered with :func:`register` so reporters, the CLI,
and the self-gate test all enumerate the same set.

The rules encode this reproduction's failure modes: Algorithm 1's
Tsallis-INF sampling and Algorithm 2's primal-dual updates are verifiable
against the paper's Theorem 1-3 bounds only if every run is seed-exact and
every simplex/estimator invariant holds, so randomness must flow through
named ``np.random.Generator`` streams, clock reads must not leak into
simulated time, and hot-path numerics must be guarded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.project import (
    ModuleInfo,
    ProjectContext,
    ResolvedFunction,
    build_module,
)

__all__ = [
    "BlockingCallInAsyncRule",
    "DEFAULT_PATH_RULES",
    "DEFAULT_PATH_SEVERITY",
    "DroppedTaskRule",
    "DunderAllDriftRule",
    "FloatEqualityRule",
    "GlobalRandomStateRule",
    "HOT_PATH_DIRS",
    "InPlaceArrayMutationRule",
    "LateRealizedRandomnessRule",
    "MutableDefaultRule",
    "PRINT_ALLOWED",
    "PrintInLibraryRule",
    "ProjectRule",
    "RawGeneratorRule",
    "Rule",
    "ShapeClaimRule",
    "SharedAsyncStateRule",
    "SilentExceptionRule",
    "UnguardedHotPathNumericsRule",
    "UnseededDefaultRngRule",
    "UnvalidatedArrayParamRule",
    "WallClockRule",
    "all_rules",
    "dotted_name",
    "register",
    "registered_codes",
]

#: Directories whose modules form the numerical hot path (Algorithms 1-2).
HOT_PATH_DIRS = ("core", "bandits", "trading")

#: Directories/modules allowed to write to stdout (user-facing surfaces).
PRINT_ALLOWED = ("experiments", "lint", "cli", "__main__")

#: Per-path rule waivers applied by default (directory/stem -> rule codes).
#: ``benchmarks/`` harnesses print their results by design — that is their
#: entire user interface — so RPL010 is waived there by configuration
#: instead of per-line ``noqa`` noise; every other rule still applies.
#: ``tests/`` intentionally compare floats bit-for-bit (the reproducibility
#: contract *is* exact equality) and spin up ad-hoc seeded generators per
#: test case, so RPL003 and RPL015 are waived there; benchmarks likewise
#: seed throwaway generators for load synthesis.
#: ``repro.bench`` (the in-package benchmark registry behind ``repro
#: bench``) needs no entry: its workload generators go through the keyed
#: ``spawn_generator`` helper, and its printing surface is confined to
#: ``bench/cli.py``, which the RPL010 ``cli``-stem allowance covers.
DEFAULT_PATH_RULES: dict[str, frozenset[str]] = {
    "benchmarks": frozenset({"RPL010", "RPL015"}),
    "tests": frozenset({"RPL003", "RPL015"}),
}

#: Per-path severity overrides applied by default (directory/stem ->
#: {code: severity}).  ``examples/`` scripts also print by design, but a
#: *downgrade* beats a waiver there: prints stay visible in reports (so an
#: example growing non-demo logic is noticed) without failing the gate.
DEFAULT_PATH_SEVERITY: dict[str, dict[str, str]] = {
    "examples": {"RPL010": "warning"},
}

_REGISTRY: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry (code-unique)."""
    if not cls.code.startswith("RPL"):
        raise ValueError(f"rule code must start with 'RPL', got {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list["Rule"]:
    """One fresh instance of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def registered_codes() -> list[str]:
    """The sorted stable codes of every registered rule."""
    return sorted(_REGISTRY)


class Rule:
    """Base class: subclasses set ``code``/``summary`` and yield findings.

    ``severity`` is the rule's default level for every finding it emits
    (``"error"`` gates the CLI exit code, ``"warning"`` never does);
    per-path severity overrides may adjust it after the fact.
    """

    code: str = "RPL000"
    summary: str = ""
    severity: str = "error"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file; default walks every AST node."""
        for node in ast.walk(context.tree):
            yield from self.visit(node, context)

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        """Per-node hook for ``check``'s default walk; override either."""
        return iter(())

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Resolve ``a.b.c`` attribute chains to the string ``"a.b.c"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


# Module-level numpy legacy RandomState functions and stdlib ``random``
# sampling functions — both mutate hidden global state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "beta", "binomial", "exponential",
        "gamma", "geometric", "gumbel", "laplace", "lognormal", "poisson",
        "get_state", "set_state", "random_integers", "randrange", "choices",
        "betavariate", "gauss", "expovariate", "triangular", "vonmisesvariate",
    }
)


@register
class GlobalRandomStateRule(Rule):
    """RPL001 — calls that draw from hidden global RNG state."""

    code = "RPL001"
    summary = (
        "global random state (np.random.* / random.*) breaks seed "
        "reproducibility; thread a np.random.Generator instead"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is None:
                return
            parts = name.split(".")
            if (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[-1] in _GLOBAL_RANDOM_FNS
            ):
                yield self.finding(
                    context,
                    node,
                    f"call to {name}() uses hidden global RNG state; "
                    "draw from an explicit np.random.Generator stream",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in _GLOBAL_RANDOM_FNS
                )
                if bad:
                    yield self.finding(
                        context,
                        node,
                        "importing global-state samplers from the stdlib "
                        f"random module ({', '.join(bad)}); use "
                        "np.random.Generator streams",
                    )


@register
class UnseededDefaultRngRule(Rule):
    """RPL002 — ``default_rng()`` with no seed in library code."""

    code = "RPL002"
    summary = (
        "default_rng() without a seed/SeedSequence is nondeterministic; "
        "accept a Generator parameter or thread a seed"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name is None or name.split(".")[-1] != "default_rng":
            return
        if not node.args and not node.keywords:
            yield self.finding(
                context,
                node,
                "default_rng() without arguments seeds from OS entropy; "
                "pass a seed/SeedSequence or accept a Generator parameter",
            )


@register
class FloatEqualityRule(Rule):
    """RPL003 — ``==`` / ``!=`` against float literals."""

    code = "RPL003"
    summary = (
        "float equality comparison; use an explicit tolerance "
        "(math.isclose / np.isclose) or an ordering test"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(
                isinstance(side, ast.Constant) and isinstance(side.value, float)
                for side in pair
            ):
                yield self.finding(
                    context,
                    node,
                    "equality comparison against a float literal is "
                    "rounding-fragile; compare with a tolerance or restate "
                    "as an ordering test",
                )


_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


@register
class MutableDefaultRule(Rule):
    """RPL004 — mutable default argument values."""

    code = "RPL004"
    summary = "mutable default argument is shared across calls; default to None"

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                yield self.finding(
                    context,
                    default,
                    f"mutable default argument in {node.name}() is evaluated "
                    "once and shared across calls; default to None and "
                    "construct inside the body",
                )


_STABILIZERS = frozenset({"clip", "min", "max", "minimum", "maximum", "where"})


def _has_stabilizer(node: ast.AST) -> bool:
    """Whether a subtree contains a range-limiting call (clip/min/max/...)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] in _STABILIZERS:
                return True
    return False


_ZERO_REDUCERS = frozenset({"sum", "len", "count_nonzero", "prod"})


@register
class UnguardedHotPathNumericsRule(Rule):
    """RPL005 — unguarded ``exp`` / risky division in hot-path modules."""

    code = "RPL005"
    summary = (
        "hot-path (core/bandits/trading) exp without clip/max-shift, or "
        "division by a bare reduction that can be zero"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.in_directory(*HOT_PATH_DIRS):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if (
                    name is not None
                    and name.split(".")[-1] == "exp"
                    and name.split(".")[0] in {"np", "numpy", "math"}
                    and node.args
                    and not _has_stabilizer(node.args[0])
                ):
                    yield self.finding(
                        context,
                        node,
                        "np.exp on an unbounded argument can overflow and "
                        "poison the simplex; clip or max-shift the exponent "
                        "first",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                den = node.right
                if isinstance(den, ast.Call):
                    name = _call_name(den)
                    if (
                        name is not None
                        and name.split(".")[-1] in _ZERO_REDUCERS
                        and not _has_stabilizer(node.right)
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"division by {name}(...) can divide by zero on "
                            "empty/degenerate input; bound it with max(...) "
                            "or validate first",
                        )


def _annotation_text(annotation: ast.AST | None) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse failure is cosmetic only
        return ""


_ARRAY_MARKERS = ("ndarray", "ArrayLike")


@register
class UnvalidatedArrayParamRule(Rule):
    """RPL006 — public ``core/`` callables taking arrays without check_*."""

    code = "RPL006"
    summary = (
        "public core/ function accepts an ndarray parameter but never calls "
        "a check_* validator"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.in_directory("core"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            annotated = [
                arg.arg
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
                if any(
                    marker in _annotation_text(arg.annotation)
                    for marker in _ARRAY_MARKERS
                )
            ]
            if not annotated:
                continue
            calls_validator = any(
                isinstance(sub, ast.Call)
                and (name := dotted_name(sub.func)) is not None
                and name.split(".")[-1].startswith("check_")
                for sub in ast.walk(node)
            )
            if not calls_validator:
                yield self.finding(
                    context,
                    node,
                    f"{node.name}() accepts array parameter(s) "
                    f"{', '.join(annotated)} but never calls a check_* "
                    "validator (repro.utils.validation)",
                )


@register
class DunderAllDriftRule(Rule):
    """RPL007 — ``__all__`` out of sync with the module's public names."""

    code = "RPL007"
    summary = (
        "__all__ lists an unbound name, or a public top-level def/class is "
        "missing from __all__"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        module = context.tree
        all_node: ast.AST | None = None
        declared: list[str] | None = None
        for stmt in module.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    all_node = stmt
                    if isinstance(value, (ast.List, ast.Tuple)):
                        declared = [
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
        if all_node is None or declared is None:
            return

        bound: set[str] = set()
        public_defs: dict[str, ast.AST] = {}
        for stmt in module.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        return  # star imports defeat static analysis
                    bound.add(alias.asname or alias.name.split(".")[0])
        bound.add("__version__")

        for name in declared:
            if name not in bound:
                yield self.finding(
                    context,
                    all_node,
                    f"__all__ lists {name!r} which is not defined or "
                    "imported at module top level",
                )
        declared_set = set(declared)
        for name, node in sorted(public_defs.items()):
            if name not in declared_set:
                yield self.finding(
                    context,
                    node,
                    f"public top-level name {name!r} is missing from "
                    "__all__; export it or rename with a leading underscore",
                )


_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """RPL008 — wall-clock reads leaking into simulated time."""

    code = "RPL008"
    summary = (
        "time.time()/datetime.now() makes runs time-dependent; simulated "
        "time must come from the slot index (perf_counter is fine for "
        "duration measurement)"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name in _WALL_CLOCK_CALLS:
            yield self.finding(
                context,
                node,
                f"{name}() reads the wall clock, making runs "
                "nondeterministic; derive simulated time from the slot "
                "index (use time.perf_counter only to measure durations)",
            )


@register
class SilentExceptionRule(Rule):
    """RPL009 — bare excepts and silently swallowed broad exceptions."""

    code = "RPL009"
    summary = "bare except, or broad except whose body is just pass"

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield self.finding(
                context,
                node,
                "bare except catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions you expect",
            )
            return
        broad = dotted_name(node.type) in {"Exception", "BaseException"}
        swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if broad and swallows:
            yield self.finding(
                context,
                node,
                "broad exception silently swallowed; numerical failures in "
                "this codebase must surface, not vanish",
            )


@register
class PrintInLibraryRule(Rule):
    """RPL010 — stray ``print`` in library (non-CLI, non-experiment) code."""

    code = "RPL010"
    summary = (
        "print() in library code pollutes experiment output; raise, return, "
        "or report through the experiments/reporting layer"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.stem in PRINT_ALLOWED or context.in_directory(*PRINT_ALLOWED):
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    context,
                    node,
                    "print() in library code; route output through the "
                    "reporting layer or a returned value",
                )


#: ndarray methods that mutate the array they are called on.
_INPLACE_ARRAY_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "setflags", "itemset"}
)

#: Calls that produce an independent array (rebinding a parameter through
#: one of these severs aliasing with the caller's array).
_COPYING_CALLS = frozenset({"copy", "array", "deepcopy", "ascontiguousarray"})


def _is_copy_expr(value: ast.expr) -> bool:
    """Whether an expression's result is detached from its inputs' storage."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] in _COPYING_CALLS:
                return True
    return False


@register
class InPlaceArrayMutationRule(Rule):
    """RPL011 — array parameters mutated in place without a ``.copy()``."""

    code = "RPL011"
    summary = (
        "function mutates an ndarray parameter in place without copying "
        "first; the caller's array is silently modified"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node, context)

    def _check_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        context: FileContext,
    ) -> Iterator[Finding]:
        args = func.args
        array_params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if any(
                marker in _annotation_text(arg.annotation)
                for marker in _ARRAY_MARKERS
            )
        }
        if not array_params:
            return
        # A parameter rebound to a fresh array (x = x.copy(), np.array(x),
        # copy.deepcopy(x), ...) no longer aliases the caller's storage:
        # mutations after the rebind line are the callee's own business.
        copied_after: dict[str, int] = {}
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign) and _is_copy_expr(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id in array_params:
                        line = copied_after.get(target.id, sub.lineno)
                        copied_after[target.id] = min(line, sub.lineno)
        for sub in ast.walk(func):
            param = self._mutated_param(sub, array_params)
            if param is None:
                continue
            if getattr(sub, "lineno", 0) > copied_after.get(param, 1 << 60):
                continue
            yield self.finding(
                context,
                sub,
                f"{func.name}() mutates array parameter {param!r} in "
                "place; the caller's array is silently modified — operate "
                f"on a copy ({param} = {param}.copy()) or document the "
                "aliasing contract",
            )

    @staticmethod
    def _mutated_param(node: ast.AST, params: set[str]) -> str | None:
        """The parameter name ``node`` mutates in place, if any."""

        def base_name(target: ast.expr) -> str | None:
            if isinstance(target, ast.Subscript):
                inner = target.value
                while isinstance(inner, (ast.Subscript, ast.Attribute)):
                    inner = inner.value
                if isinstance(inner, ast.Name):
                    return inner.id
            return None

        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = base_name(target)
                if name in params:
                    return name
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id in params:
                return target.id
            name = base_name(target)
            if name in params:
                return name
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in params
                and node.func.attr in _INPLACE_ARRAY_METHODS
            ):
                return node.func.value.id
            for keyword in node.keywords:
                if (
                    keyword.arg == "out"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in params
                ):
                    return keyword.value.id
        return None


# ---------------------------------------------------------------------------
# Project-aware rules (RPL012-RPL017)
# ---------------------------------------------------------------------------


class ProjectRule(Rule):
    """Base for rules that consume the cross-module :class:`ProjectContext`.

    The engine passes ``project`` when linting a path set; single-blob entry
    points pass ``None`` and the rule degrades to per-file precision (same
    code paths, empty import resolution).
    """

    requires_project = True

    def check(
        self, context: FileContext, project: ProjectContext | None = None
    ) -> Iterator[Finding]:
        """Yield findings for one file, with optional project context."""
        return iter(())


def _module_for(
    context: FileContext, project: ProjectContext | None
) -> ModuleInfo:
    """The indexed module for this file, building one locally if needed."""
    if project is not None:
        module = project.module_for_path(context.path)
        if module is not None:
            return module
    return build_module(context.path, context.source, context.tree)


def _canonical_call(name: str, module: ModuleInfo | None) -> str:
    """Rewrite a call name's head through the module's import aliases.

    ``sleep`` with ``from time import sleep`` becomes ``time.sleep``;
    unaliased names pass through unchanged.
    """
    if module is None:
        return name
    head, _, rest = name.partition(".")
    target = module.imports.get(head, head)
    return f"{target}.{rest}" if rest else target


def _follow_reexports(
    dotted: str, project: ProjectContext | None, _depth: int = 0
) -> str:
    """Chase ``from m import f as g`` chains across project modules.

    ``helpers.make_stream`` resolves to ``numpy.random.default_rng`` when
    ``helpers.py`` aliased it — the cross-module view per-file rules lack.
    """
    if project is None or _depth > 5 or "." not in dotted:
        return dotted
    mod_part, _, symbol = dotted.rpartition(".")
    target = project.resolve_module(mod_part)
    if target is not None and symbol in target.imports:
        onward = target.imports[symbol]
        if onward != dotted:
            return _follow_reexports(onward, project, _depth + 1)
    return dotted


def _executed_calls(
    body: list[ast.stmt] | ast.AST,
) -> Iterator[ast.Call]:
    """Calls executed when this body runs (nested defs/lambdas excluded)."""
    stack: list[ast.AST] = list(body) if isinstance(body, list) else [body]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _async_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.AsyncFunctionDef, str | None]]:
    """Every ``async def`` in the module with its enclosing class name."""

    def walk(node: ast.AST, owner: str | None) -> Iterator[tuple[ast.AsyncFunctionDef, str | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, ast.AsyncFunctionDef):
                yield child, owner
                yield from walk(child, owner)
            else:
                yield from walk(child, owner)

    yield from walk(tree, None)


def _resolve_sync_callee(
    name: str,
    module: ModuleInfo,
    owner_class: str | None,
    project: ProjectContext | None,
) -> ResolvedFunction | None:
    """Resolve a call name to a function def we can analyze, if possible."""
    if name.startswith("self."):
        rest = name[len("self.") :]
        if owner_class is None or "." in rest:
            return None
        node = module.class_method(owner_class, rest)
        if node is None:
            return None
        return ResolvedFunction(
            module=module, qualname=f"{owner_class}.{rest}", node=node
        )
    if project is not None:
        return project.resolve_function(module, name)
    if "." not in name:
        node = module.functions.get(name)
        if node is not None:
            return ResolvedFunction(module=module, qualname=name, node=node)
    return None


#: Canonical dotted names that always block the event loop.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "socket.create_connection",
        "socket.create_server",
        "socket.getaddrinfo",
    }
)

#: ``subprocess`` entry points that wait on a child synchronously.
_BLOCKING_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen", "getoutput",
     "getstatusoutput"}
)

#: Attribute calls performing synchronous file I/O (``Path`` and file
#: objects); receivers are not type-resolved, so this is a name heuristic.
_BLOCKING_FILE_ATTRS = frozenset(
    {"open", "read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Maximum function-call hops followed when searching for a transitively
#: reachable blocking primitive from an ``async def``.
_BLOCKING_DEPTH = 3


def _blocking_primitive(call: ast.Call, module: ModuleInfo | None) -> str | None:
    """A human-readable description if this call blocks the event loop."""
    name = _call_name(call)
    if name is None:
        return None
    canon = _canonical_call(name, module)
    if canon in _BLOCKING_CALLS:
        return f"{canon}()"
    parts = canon.split(".")
    if parts[0] == "subprocess" and parts[-1] in _BLOCKING_SUBPROCESS:
        return f"{canon}()"
    if name == "open" and (module is None or "open" not in module.imports):
        return "open()"
    if "." in name and name.split(".")[-1] in _BLOCKING_FILE_ATTRS:
        return f"{name}()"
    return None


@register
class BlockingCallInAsyncRule(ProjectRule):
    """RPL012 — blocking calls inside ``async def``, including transitive."""

    code = "RPL012"
    summary = (
        "blocking call (time.sleep / sync file or socket I/O / subprocess) "
        "inside async def stalls every coroutine sharing the loop; use the "
        "asyncio equivalent or asyncio.to_thread"
    )

    def check(
        self, context: FileContext, project: ProjectContext | None = None
    ) -> Iterator[Finding]:
        module = _module_for(context, project)
        for fn, owner in _async_functions(context.tree):
            for call in _executed_calls(fn.body):
                primitive = _blocking_primitive(call, module)
                if primitive is not None:
                    yield self.finding(
                        context,
                        call,
                        f"blocking {primitive} inside async def {fn.name}; "
                        "the event loop (and every other coroutine) stalls "
                        "until it returns — use the asyncio equivalent or "
                        "asyncio.to_thread",
                    )
                    continue
                name = _call_name(call)
                if name is None:
                    continue
                resolved = _resolve_sync_callee(name, module, owner, project)
                if resolved is None or isinstance(
                    resolved.node, ast.AsyncFunctionDef
                ):
                    continue
                seen = {(resolved.module.name, resolved.qualname)}
                hit = self._search(resolved, project, 1, seen)
                if hit is not None:
                    primitive, chain = hit
                    via = " -> ".join([resolved.qualname, *chain])
                    yield self.finding(
                        context,
                        call,
                        f"async def {fn.name} reaches blocking {primitive} "
                        f"through {via}; the event loop stalls until it "
                        "returns — use the asyncio equivalent or "
                        "asyncio.to_thread",
                    )

    def _search(
        self,
        fn: ResolvedFunction,
        project: ProjectContext | None,
        depth: int,
        seen: set[tuple[str, str]],
    ) -> tuple[str, list[str]] | None:
        """Find a blocking primitive reachable from ``fn``, depth-capped."""
        owner = fn.qualname.split(".")[0] if "." in fn.qualname else None
        for call in _executed_calls(fn.node.body):
            primitive = _blocking_primitive(call, fn.module)
            if primitive is not None:
                return primitive, []
            if depth >= _BLOCKING_DEPTH:
                continue
            name = _call_name(call)
            if name is None:
                continue
            resolved = _resolve_sync_callee(name, fn.module, owner, project)
            if resolved is None or isinstance(resolved.node, ast.AsyncFunctionDef):
                continue
            key = (resolved.module.name, resolved.qualname)
            if key in seen:
                continue
            seen.add(key)
            sub = self._search(resolved, project, depth + 1, seen)
            if sub is not None:
                return sub[0], [resolved.qualname, *sub[1]]
        return None


@register
class DroppedTaskRule(Rule):
    """RPL013 — ``asyncio.create_task`` results dropped without retention."""

    code = "RPL013"
    summary = (
        "asyncio.create_task/ensure_future result discarded; the event loop "
        "holds only a weak reference, so the task can be garbage-collected "
        "mid-flight — retain the handle"
    )

    def visit(self, node: ast.AST, context: FileContext) -> Iterator[Finding]:
        call: ast.Call | None = None
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
        elif (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_"
        ):
            call = node.value
        if call is None:
            return
        name = _call_name(call)
        if name is None:
            return
        parts = name.split(".")
        spawns = (parts == ["asyncio", "create_task"]) or (
            parts[-1] == "ensure_future"
        ) or (len(parts) == 1 and parts[0] == "create_task")
        if spawns:
            yield self.finding(
                context,
                node,
                f"result of {name}() is dropped; asyncio keeps only a weak "
                "reference to scheduled tasks, so this one can be "
                "garbage-collected before it runs — keep the handle and "
                "await or cancel it during shutdown",
            )


@register
class SharedAsyncStateRule(Rule):
    """RPL014 — one attribute written from two or more coroutine methods."""

    code = "RPL014"
    summary = (
        "instance attribute written from multiple async methods; interleaved "
        "coroutines race on it — route the hand-off through BoundedWorkQueue "
        "or confine writes to one task"
    )
    severity = "warning"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, context)

    def _check_class(
        self, cls: ast.ClassDef, context: FileContext
    ) -> Iterator[Finding]:
        # attr name -> [(method name, write node), ...] over async methods.
        # Writes inside ``async with self.<lock/condition>`` blocks are
        # already serialized and do not count.
        writes: dict[str, list[tuple[str, ast.AST]]] = {}
        for stmt in cls.body:
            if not isinstance(stmt, ast.AsyncFunctionDef):
                continue
            for sub in self._unguarded_nodes(stmt):
                attr = self._written_self_attr(sub)
                if attr is not None:
                    writes.setdefault(attr, []).append((stmt.name, sub))
        for attr, sites in sorted(writes.items()):
            methods = sorted({name for name, _ in sites})
            if len(methods) < 2:
                continue
            _, node = sites[0]
            yield self.finding(
                context,
                node,
                f"self.{attr} is written from multiple coroutines "
                f"({', '.join(methods)}) of {cls.name}; interleaved tasks "
                "race on it — pass the value through BoundedWorkQueue or "
                "give one task sole ownership",
            )

    @classmethod
    def _unguarded_nodes(cls, root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root`` skipping subtrees serialized by an instance lock."""
        for child in ast.iter_child_nodes(root):
            if isinstance(child, ast.AsyncWith) and any(
                isinstance(item.context_expr, ast.Attribute)
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                for item in child.items
            ):
                continue
            yield child
            yield from cls._unguarded_nodes(child)

    @staticmethod
    def _written_self_attr(node: ast.AST) -> str | None:
        """The first-level ``self.X`` attribute this statement writes."""

        def self_attr(target: ast.expr) -> str | None:
            # Walk to the attribute directly on ``self`` so that
            # ``self.stats.events -= 1`` reports "stats", the shared object.
            while isinstance(target, (ast.Attribute, ast.Subscript)):
                inner = target.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(inner, ast.Name)
                    and inner.id == "self"
                ):
                    return target.attr
                target = inner
            return None

        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self_attr(target)
                if attr is not None:
                    return attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return self_attr(node.target)
        return None


#: ``numpy.random`` constructors that mint a fresh bit-generator stream.
_RAW_RNG_FACTORIES = frozenset(
    {"default_rng", "Generator", "RandomState", "PCG64", "MT19937", "Philox",
     "SFC64"}
)


def _is_raw_rng(canon: str) -> bool:
    """Whether a canonical dotted name is a raw numpy stream constructor."""
    parts = canon.split(".")
    if parts[-1] not in _RAW_RNG_FACTORIES:
        return False
    return "random" in parts or parts[0] in {"np", "numpy"}


@register
class RawGeneratorRule(ProjectRule):
    """RPL015 — raw generator creation outside the named-stream helpers."""

    code = "RPL015"
    summary = (
        "np.random.default_rng/Generator created outside repro.utils.rng; "
        "ad-hoc streams break the named-stream discipline that keeps runs "
        "seed-exact — use RngFactory.get or spawn_generator"
    )

    @staticmethod
    def _sanctioned(context: FileContext) -> bool:
        # repro/utils/rng.py is the named-stream helper module itself.
        return context.stem == "rng" and context.in_directory("utils")

    def check(
        self, context: FileContext, project: ProjectContext | None = None
    ) -> Iterator[Finding]:
        if self._sanctioned(context):
            return
        module = _module_for(context, project)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            canon = _canonical_call(name, module)
            resolved = _follow_reexports(canon, project)
            if not _is_raw_rng(resolved):
                continue
            via = "" if resolved == name else f" (resolves to {resolved})"
            yield self.finding(
                context,
                node,
                f"{name}(){via} creates a raw numpy generator outside the "
                "named-stream helpers; use RngFactory.get(name) or "
                "spawn_generator(seed, name) so the stream is keyed, not "
                "ordered",
            )


#: ``numpy.random.Generator`` sampling methods — calling one *realizes*
#: randomness (advances the stream).
_DRAW_METHODS = frozenset(
    {
        "random", "normal", "uniform", "integers", "choice", "shuffle",
        "permutation", "standard_normal", "exponential", "poisson",
        "binomial", "geometric", "gamma", "beta", "lognormal", "dirichlet",
        "multivariate_normal",
    }
)


def _rng_draw_base(call: ast.Call) -> str | None:
    """The receiver name if this call draws from a generator-like object."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr not in _DRAW_METHODS:
        return None
    base = dotted_name(call.func.value)
    if base is None:
        return None
    leaf = base.split(".")[-1].lower()
    if "rng" in leaf or "random" in leaf or leaf in {"gen", "generator"}:
        return base
    return None


@register
class LateRealizedRandomnessRule(Rule):
    """RPL016 — fault-spec randomness realized after construction."""

    code = "RPL016"
    summary = (
        "fault/scenario class draws randomness in a method not reachable "
        "from __init__; realize every draw at construction so injection "
        "order cannot perturb other streams"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.in_directory("faults"):
            return
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, context)

    def _check_class(
        self, cls: ast.ClassDef, context: FileContext
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        roots = [name for name in ("__init__", "__post_init__") if name in methods]
        if not roots:
            return
        # Methods (and module-level helper calls) reachable from __init__
        # count as construction time.
        reachable: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            for call in _executed_calls(methods[current].body):
                name = _call_name(call)
                if name is None:
                    continue
                if name.startswith("self."):
                    target = name[len("self.") :]
                    if target in methods and target not in reachable:
                        stack.append(target)
                elif name in methods and name not in reachable:
                    # staticmethod-style direct reference
                    stack.append(name)
        for name, method in sorted(methods.items()):
            if name in reachable:
                continue
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                base = _rng_draw_base(call)
                if base is not None:
                    yield self.finding(
                        context,
                        call,
                        f"{cls.name}.{name} draws from {base} after "
                        "construction; realize all fault randomness in "
                        "__init__ from named streams so replay order cannot "
                        "shift other consumers' draws",
                    )


@register
class ShapeClaimRule(ProjectRule):
    """RPL017 — documented array-shape claims contradicted by the code."""

    code = "RPL017"
    summary = (
        "docstring/comment shape claim like (I, N) contradicted by actual "
        "indexing, axis=, or .shape[...] use; fix the claim or the code"
    )

    def check(
        self, context: FileContext, project: ProjectContext | None = None
    ) -> Iterator[Finding]:
        module = _module_for(context, project)
        attr_claims = project.attribute_claims if project is not None else {}
        # Merge in this module's own class-attribute claims so single-file
        # runs still check self.<attr> uses.
        local_attr_claims = dict(attr_claims)
        for scope_name, scope in module.claims.items():
            if scope_name in module.classes:
                for claim_name, claim in scope.items():
                    local_attr_claims.setdefault(claim_name, claim)

        for qualname, fn in [
            *module.functions.items(),
            *module.methods.items(),
        ]:
            claims = module.claims.get(qualname, {})
            yield from self._check_scope(
                fn, claims, local_attr_claims, context, module, project
            )
        module_claims = module.claims.get("<module>", {})
        if module_claims:
            top_level = [
                stmt
                for stmt in context.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            for stmt in top_level:
                yield from self._check_scope(
                    stmt, module_claims, local_attr_claims, context, module,
                    project,
                )

    def _check_scope(
        self,
        root: ast.AST,
        claims: dict,
        attr_claims: dict,
        context: FileContext,
        module: ModuleInfo,
        project: ProjectContext | None,
    ) -> Iterator[Finding]:
        def claim_for(expr: ast.expr):
            if isinstance(expr, ast.Name):
                return claims.get(expr.id)
            if isinstance(expr, ast.Attribute):
                return attr_claims.get(expr.attr)
            return None

        for node in ast.walk(root):
            if isinstance(node, ast.Subscript):
                base = node.value
                if isinstance(base, ast.Attribute) and base.attr == "shape":
                    claim = claim_for(base.value)
                    if (
                        claim is not None
                        and isinstance(node.slice, ast.Constant)
                        and isinstance(node.slice.value, int)
                    ):
                        k = node.slice.value
                        if not (-claim.ndim <= k < claim.ndim):
                            yield self.finding(
                                context,
                                node,
                                f".shape[{k}] on an array documented as "
                                f"{claim.text} ({claim.ndim} axes, claimed "
                                f"at line {claim.line}); the claim and the "
                                "code disagree",
                            )
                    continue
                claim = claim_for(base)
                if claim is None:
                    continue
                arity = self._index_arity(node.slice)
                if arity is not None and arity > claim.ndim:
                    label = (
                        base.id
                        if isinstance(base, ast.Name)
                        else f".{base.attr}"
                    )
                    yield self.finding(
                        context,
                        node,
                        f"{label} is indexed with {arity} subscripts but "
                        f"documented as {claim.text} ({claim.ndim} axes, "
                        f"claimed at line {claim.line}); the claim and the "
                        "code disagree",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    node, claims, attr_claims, claim_for, context, module,
                    project,
                )

    @staticmethod
    def _index_arity(index: ast.expr) -> int | None:
        """How many axes a subscript consumes, or None if indeterminate.

        Only explicit tuple subscripts count; ``...``, ``None`` (newaxis)
        and starred elements make the arity indeterminate.
        """
        if not isinstance(index, ast.Tuple):
            return None
        for elt in index.elts:
            if isinstance(elt, ast.Starred):
                return None
            if isinstance(elt, ast.Constant) and (
                elt.value is Ellipsis or elt.value is None
            ):
                return None
        return len(index.elts)

    def _check_call(
        self,
        node: ast.Call,
        claims: dict,
        attr_claims: dict,
        claim_for,
        context: FileContext,
        module: ModuleInfo,
        project: ProjectContext | None,
    ) -> Iterator[Finding]:
        claim = None
        if isinstance(node.func, ast.Attribute):
            claim = claim_for(node.func.value)
        if claim is None and node.args:
            fname = dotted_name(node.func) or ""
            if fname.split(".")[0] in {"np", "numpy"}:
                claim = claim_for(node.args[0])
        if claim is not None:
            for kw in node.keywords:
                if (
                    kw.arg == "axis"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, int)
                ):
                    axis = kw.value.value
                    if not (-claim.ndim <= axis < claim.ndim):
                        yield self.finding(
                            context,
                            kw.value,
                            f"axis={axis} on an array documented as "
                            f"{claim.text} ({claim.ndim} axes, claimed at "
                            f"line {claim.line}); the claim and the code "
                            "disagree",
                        )
        # Cross-module forwarding: a locally-claimed array passed where the
        # callee's docstring claims a different rank.
        if project is None:
            return
        name = _call_name(node)
        if name is None or name.startswith("self."):
            return
        resolved = project.resolve_function(module, name)
        if resolved is None or "." in resolved.qualname:
            return
        callee_claims = resolved.module.claims.get(resolved.qualname, {})
        if not callee_claims:
            return
        args = resolved.node.args
        params = [
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        for pos, arg in enumerate(node.args):
            if not isinstance(arg, ast.Name) or pos >= len(params):
                continue
            local = claims.get(arg.id)
            remote = callee_claims.get(params[pos])
            if local is None or remote is None:
                continue
            if local.ndim != remote.ndim:
                yield self.finding(
                    context,
                    arg,
                    f"{arg.id} is documented as {local.text} here but "
                    f"{resolved.qualname}() documents parameter "
                    f"{params[pos]!r} as {remote.text} "
                    f"({resolved.module.path}:{remote.line}); the claims "
                    "disagree",
                )
