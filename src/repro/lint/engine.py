"""The reprolint engine: file discovery, parsing, noqa handling, rule runs.

A *finding* is one rule violation at one source location.  The engine owns
everything that is not rule logic: walking directories, parsing files into
ASTs, collecting ``# noqa`` suppression comments token-by-token, and
filtering each rule's raw findings through the suppressions.

Suppression syntax (checked per physical line, like flake8):

* ``# noqa`` — suppress every rule on that line;
* ``# noqa: RPL003`` — suppress one rule (comma-separate for several);
* ``# reprolint: skip-file`` anywhere in the file — skip the whole file.

Both forms may carry a trailing free-text reason after ``--``, e.g.
``# noqa: RPL003 -- exact sentinel comparison``.

Beyond line-level ``noqa``, whole path classes can waive specific rules via
*per-path rules*: a mapping of path component (a directory name or module
stem) to the rule codes waived there, e.g. ``{"examples": {"RPL010"}}`` —
examples are user-facing scripts, so their prints are by design.  The
default configuration lives in :data:`repro.lint.rules.DEFAULT_PATH_RULES`.

Since the project-level pass, :func:`lint_paths` builds one shared
:class:`~repro.lint.project.ProjectContext` over every discovered file and
hands it to rules that declare ``requires_project = True`` alongside their
``FileContext``.  Single-blob entry points (:func:`lint_source`,
:func:`lint_file`) accept an optional ``project`` argument; without one,
project-aware rules fall back to per-file precision.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "SEVERITIES",
    "collect_noqa",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file", re.IGNORECASE)

# Sentinel stored in the noqa map for a blanket (codeless) ``# noqa``.
_ALL_CODES = frozenset({"*"})


#: Finding severities, ordered: only ``error`` findings gate exit codes.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``severity`` is ``"error"`` (gates the CLI's exit code) or
    ``"warning"`` (reported, never fatal).  Rules stamp their class-level
    default; per-path severity overrides can downgrade specific codes for
    whole path classes (e.g. prints under ``examples/``).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: CODE message``.

        Warnings carry an explicit ``[warning]`` marker; errors keep the
        historical unmarked form.
        """
        marker = "" if self.severity == "error" else f"[{self.severity}] "
        return f"{self.path}:{self.line}:{self.col}: {self.code} {marker}{self.message}"

    @property
    def is_error(self) -> bool:
        """Whether this finding should gate an exit code."""
        return self.severity == "error"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping with stable keys."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: Path components of the file (directories plus stem), used by rules
    #: that apply only to parts of the tree (``core/``, hot paths, ...).
    parts: tuple[str, ...] = field(default_factory=tuple)

    @property
    def stem(self) -> str:
        """Module name without extension (``tsallis`` for ``.../tsallis.py``)."""
        return self.parts[-1] if self.parts else ""

    def in_directory(self, *names: str) -> bool:
        """Whether any *directory* component of the path matches ``names``."""
        return any(part in names for part in self.parts[:-1])


def _context_parts(path: str) -> tuple[str, ...]:
    """Path components relative to the enclosing package, stem last.

    For files inside a ``repro`` package the components after the *last*
    ``repro`` directory are used, so installed and in-tree layouts agree.
    """
    pure = Path(path)
    parts = list(pure.parts)
    parts[-1] = pure.stem
    if "repro" in parts[:-1]:
        last = (len(parts) - 2) - parts[:-1][::-1].index("repro")
        parts = parts[last + 1 :] or [pure.stem]
    return tuple(parts)


def collect_noqa(source: str) -> tuple[dict[int, frozenset[str]], bool]:
    """Map line number -> suppressed codes; also report skip-file directives.

    A blanket ``# noqa`` stores the ``{"*"}`` sentinel for its line.
    Unreadable token streams yield no suppressions rather than crashing.
    """
    suppressions: dict[int, frozenset[str]] = {}
    skip_file = False
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, skip_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if _SKIP_FILE_RE.search(token.string):
            skip_file = True
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[token.start[0]] = _ALL_CODES
        else:
            parsed = frozenset(c.strip().upper() for c in codes.split(","))
            suppressions[token.start[0]] = suppressions.get(token.start[0], frozenset()) | parsed
    return suppressions, skip_file


def _is_suppressed(finding: Finding, suppressions: dict[int, frozenset[str]]) -> bool:
    codes = suppressions.get(finding.line)
    if codes is None:
        return False
    return codes == _ALL_CODES or finding.code in codes


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is).

    Directories are walked recursively in sorted order so runs are
    deterministic; missing paths raise ``FileNotFoundError``.
    """
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            yield from sorted(p for p in target.rglob("*.py") if p.is_file())
        elif target.is_file():
            yield target
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")


def _select_rules(select: Iterable[str] | None):
    from repro.lint.rules import all_rules

    rules = all_rules()
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule codes: {sorted(unknown)}")
    return [rule for rule in rules if rule.code in wanted]


def _path_waivers(
    context: FileContext, path_rules: Mapping[str, Iterable[str]] | None
) -> frozenset[str]:
    """Rule codes waived for this file by the per-path configuration."""
    if not path_rules:
        return frozenset()
    waived: set[str] = set()
    for part, codes in path_rules.items():
        if context.stem == part or context.in_directory(part):
            waived.update(code.strip().upper() for code in codes)
    return frozenset(waived)


def _path_severity_overrides(
    context: FileContext,
    path_severity: Mapping[str, Mapping[str, str]] | None,
) -> dict[str, str]:
    """Per-rule severity overrides applying to this file's path."""
    if not path_severity:
        return {}
    overrides: dict[str, str] = {}
    for part, levels in path_severity.items():
        if context.stem == part or context.in_directory(part):
            for code, level in levels.items():
                if level not in SEVERITIES:
                    raise ValueError(
                        f"unknown severity {level!r} for {code} under "
                        f"{part!r}; expected one of {SEVERITIES}"
                    )
                overrides[code.strip().upper()] = level
    return overrides


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
    path_rules: Mapping[str, Iterable[str]] | None = None,
    path_severity: Mapping[str, Mapping[str, str]] | None = None,
    project=None,
) -> list[Finding]:
    """Lint one in-memory source blob; ``path`` steers path-scoped rules.

    ``path_rules`` maps a path component (directory name or module stem) to
    rule codes waived for files under it — configuration-level suppression,
    as opposed to line-level ``noqa``.  ``path_severity`` maps a path
    component to per-code severity overrides, downgrading (or upgrading)
    findings without hiding them, e.g. ``{"examples": {"RPL010":
    "warning"}}`` keeps example prints visible but non-fatal.

    Syntax errors are reported as a single pseudo-finding with code
    ``RPL000`` rather than raised, so a broken file cannot crash a run
    covering hundreds of good ones.
    """
    rules = _select_rules(select)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RPL000",
                message=f"syntax error prevents analysis: {exc.msg}",
            )
        ]
    suppressions, skip_file = collect_noqa(source)
    if skip_file:
        return []
    context = FileContext(
        path=path, source=source, tree=tree, parts=_context_parts(path)
    )
    waived = _path_waivers(context, path_rules)
    overrides = _path_severity_overrides(context, path_severity)
    findings: list[Finding] = []
    for rule in rules:
        if rule.code in waived:
            continue
        if getattr(rule, "requires_project", False):
            findings.extend(rule.check(context, project=project))
        else:
            findings.extend(rule.check(context))
    findings = [f for f in findings if not _is_suppressed(f, suppressions)]
    if overrides:
        findings = [
            replace(f, severity=overrides[f.code]) if f.code in overrides else f
            for f in findings
        ]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(
    path: str | Path,
    *,
    select: Iterable[str] | None = None,
    path_rules: Mapping[str, Iterable[str]] | None = None,
    path_severity: Mapping[str, Mapping[str, str]] | None = None,
    project=None,
) -> list[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    source = target.read_text(encoding="utf-8")
    return lint_source(
        source,
        path=str(target),
        select=select,
        path_rules=path_rules,
        path_severity=path_severity,
        project=project,
    )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    path_rules: Mapping[str, Iterable[str]] | None = None,
    path_severity: Mapping[str, Mapping[str, str]] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location.

    Builds one :class:`~repro.lint.project.ProjectContext` over the whole
    file set first, so project-aware rules see imports and symbols across
    all linted files — not just the one being checked.
    """
    from repro.lint.project import build_project

    files = list(iter_python_files(paths))
    project = build_project(files)
    findings: list[Finding] = []
    for target in files:
        findings.extend(
            lint_file(
                target,
                select=select,
                path_rules=path_rules,
                path_severity=path_severity,
                project=project,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
