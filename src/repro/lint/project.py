"""Project-level analysis context for cross-module lint rules.

The original reprolint engine hands each rule one :class:`FileContext` at a
time, which is enough for local properties (float equality, global RNG
calls) but blind to the properties that actually protect the golden-digest
guarantee: an ``async def`` in :mod:`repro.serve` calling through two sync
helpers into a blocking ``open()``, a module creating a raw
``np.random.Generator`` behind a factory wrapper imported from elsewhere,
or a ``(I, N)`` shape claim in one module contradicted by the indexing in
another.

:class:`ProjectContext` closes that gap.  Built once per ``lint_paths``
run, it holds a parsed :class:`ModuleInfo` per file — import aliases, the
module's top-level functions and classes (with methods), and every shape
claim harvested from docstrings and trailing comments — plus a dotted-name
index that resolves imports *between the linted files*.  Rules that
subclass :class:`~repro.lint.rules.Rule` keep working untouched;
project-aware rules subclass ``ProjectRule`` and receive the context (or
``None`` under single-file :func:`~repro.lint.engine.lint_source`, where
they degrade to per-file precision).

Resolution is deliberately static and conservative: only names reachable
through explicit ``import``/``from ... import`` statements of files inside
the linted path set resolve; everything else (stdlib, third-party,
attribute chains on local variables) returns ``None`` and rules stay
silent rather than guess.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FunctionDefNode",
    "ModuleInfo",
    "ProjectContext",
    "ResolvedFunction",
    "ShapeClaim",
    "build_module",
    "build_project",
    "harvest_claims",
    "module_name_candidates",
]

#: Union alias for the two function-definition node flavours.
FunctionDefNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Re-export chains (``from a import f`` where ``a`` itself imported ``f``)
#: are followed at most this many hops.
_RESOLVE_DEPTH = 5


@dataclass(frozen=True)
class ShapeClaim:
    """One documented array-shape claim, e.g. ``(I, N)`` -> ndim 2.

    ``dims`` keeps the symbolic axis names as written (``("I", "N")``);
    rules only consume ``ndim`` but reporters quote the original text.
    """

    name: str
    dims: tuple[str, ...]
    line: int
    source: str  # "docstring" or "comment"

    @property
    def ndim(self) -> int:
        """Number of claimed axes."""
        return len(self.dims)

    @property
    def text(self) -> str:
        """The claim as written, ``(I, N)`` style."""
        if len(self.dims) == 1:
            return f"({self.dims[0]},)"
        return "(" + ", ".join(self.dims) + ")"


@dataclass(frozen=True)
class ResolvedFunction:
    """A function definition located through the project index."""

    module: "ModuleInfo"
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ModuleInfo:
    """Everything the project pass records about one parsed module."""

    name: str
    path: str
    tree: ast.Module
    #: Local alias -> dotted target: ``np -> numpy``,
    #: ``save_snapshot -> repro.serve.snapshot.save_snapshot``.
    imports: dict[str, str] = field(default_factory=dict)
    #: Dotted module targets this module imports (resolved or not).
    imported_targets: set[str] = field(default_factory=set)
    #: Top-level function name -> def node.
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: Top-level class name -> class node.
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: ``Class.method`` -> def node for every method of every class.
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: Scope qualname ("<module>", "func", "Class.method", "Class") ->
    #: {claimed name -> ShapeClaim} harvested from docstrings/comments.
    claims: dict[str, dict[str, ShapeClaim]] = field(default_factory=dict)

    def class_method(
        self, cls: str, method: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The def node of ``cls.method``, if that class defines it here."""
        return self.methods.get(f"{cls}.{method}")


# A shape tuple: two or more identifiers/ints, or one with a trailing comma
# (``(N,)``) so prose parentheses like "(seconds)" never match.
_DIM = r"[A-Za-z_]\w*|\d+"
_SHAPE_TUPLE_RE = re.compile(
    rf"\(\s*(?P<one>{_DIM})\s*,\s*\)|\(\s*(?P<many>({_DIM})(\s*,\s*({_DIM}))+)\s*\)"
)
# A claim inside running text must be introduced by the word "shape".
_SHAPE_KEYWORD_RE = re.compile(
    rf"shape\s*(?:of\s+)?[:`\s]*\(\s*({_DIM})(\s*,\s*({_DIM}))*\s*,?\s*\)",
    re.IGNORECASE,
)
# numpydoc parameter header: ``name :`` or ``name:`` alone on its line.
_PARAM_HEADER_RE = re.compile(r"^\s*(?P<name>[A-Za-z_]\w*)\s*:?\s*$|^\s*(?P<named>[A-Za-z_]\w*)\s*:\s+\S")
# Trailing comment claims: ``# (I, N) ...`` or ``# shape: (I, N) ...``.
_COMMENT_CLAIM_RE = re.compile(
    rf"^#\s*(?:shape\s*:?\s*)?(?P<tuple>\(\s*({_DIM})\s*,\s*\)|\(\s*({_DIM})(\s*,\s*({_DIM}))+\s*\))"
)


def _parse_tuple(text: str) -> tuple[str, ...]:
    """Split the dims out of a matched shape-tuple string."""
    inner = text.strip()[1:-1]
    return tuple(d.strip() for d in inner.split(",") if d.strip())


def _leading_tuple(line: str) -> tuple[str, ...] | None:
    """A shape tuple at the start of a description line, if any.

    numpydoc descriptions open with the shape — ``(I, N) computation cost``
    — optionally wrapped in backticks.
    """
    stripped = line.strip().lstrip("`")
    match = _SHAPE_TUPLE_RE.match(stripped)
    if match is None:
        return None
    return _parse_tuple(match.group(0))


def _keyword_tuple(line: str) -> tuple[str, ...] | None:
    """A shape tuple introduced by the word "shape" anywhere in the line."""
    match = _SHAPE_KEYWORD_RE.search(line)
    if match is None:
        return None
    tuple_match = _SHAPE_TUPLE_RE.search(match.group(0))
    if tuple_match is None:
        return None
    return _parse_tuple(tuple_match.group(0))


def _claims_from_docstring(
    docstring: str, names: Iterable[str], doc_line: int
) -> dict[str, ShapeClaim]:
    """Harvest per-name shape claims from one docstring.

    Two forms bind a claim to ``name`` (which must be a parameter or
    attribute of the documented scope):

    * a numpydoc entry — a ``name :``/``name:`` header line whose following
      description (or same line) opens with or states a shape tuple;
    * an inline mention — a line containing both ``name`` and
      ``shape (X, Y)``.
    """
    wanted = set(names)
    claims: dict[str, ShapeClaim] = {}
    lines = docstring.splitlines()
    current: str | None = None
    for offset, line in enumerate(lines):
        header = _PARAM_HEADER_RE.match(line)
        header_name = None
        if header is not None:
            header_name = header.group("name") or header.group("named")
        if header_name in wanted:
            current = header_name
            dims = _leading_tuple(line.split(":", 1)[1]) if ":" in line else None
            dims = dims or _keyword_tuple(line)
            if dims and current not in claims:
                claims[current] = ShapeClaim(
                    name=current, dims=dims, line=doc_line + offset,
                    source="docstring",
                )
            continue
        if current is not None and line.strip():
            dims = _leading_tuple(line) or _keyword_tuple(line)
            if dims and current not in claims:
                claims[current] = ShapeClaim(
                    name=current, dims=dims, line=doc_line + offset,
                    source="docstring",
                )
            # A non-indented line ends the entry's description block.
            if not line.startswith((" ", "\t")):
                current = None
            continue
        # Inline form: "``x`` ... shape ``(I, N)``" on one line.  The name
        # must appear *outside* the tuple — dims mentioning a scalar
        # parameter (``shape (num_edges, horizon)``) are not claims about
        # that parameter.
        keyword_match = _SHAPE_KEYWORD_RE.search(line)
        if keyword_match is None:
            continue
        for name in wanted:
            if name in claims:
                continue
            for name_match in re.finditer(
                rf"(?<![\w.]){re.escape(name)}(?![\w(])", line
            ):
                if (
                    name_match.start() < keyword_match.start()
                    or name_match.start() >= keyword_match.end()
                ):
                    dims = _keyword_tuple(line)
                    if dims:
                        claims[name] = ShapeClaim(
                            name=name, dims=dims, line=doc_line + offset,
                            source="docstring",
                        )
                    break
    return claims


def _comment_claims(source: str) -> dict[int, tuple[str, ...]]:
    """Line -> claimed dims for every trailing shape comment in ``source``."""
    claims: dict[int, tuple[str, ...]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _COMMENT_CLAIM_RE.match(token.string.strip())
            if match is not None:
                claims[token.start[0]] = _parse_tuple(match.group("tuple"))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return claims


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _attribute_names(node: ast.ClassDef) -> list[str]:
    names: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.append(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
    return names


def _bind_comment_claims(
    scope_claims: dict[str, ShapeClaim],
    body: Sequence[ast.stmt],
    comments: dict[int, tuple[str, ...]],
) -> None:
    """Attach same-line trailing comment claims to assignment targets."""
    for stmt in body:
        target: ast.expr | None = None
        if isinstance(stmt, ast.AnnAssign):
            target = stmt.target
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        if target is None or not isinstance(target, ast.Name):
            continue
        dims = comments.get(stmt.lineno)
        if dims is None:
            continue
        scope_claims.setdefault(
            target.id,
            ShapeClaim(
                name=target.id, dims=dims, line=stmt.lineno, source="comment"
            ),
        )


def harvest_claims(tree: ast.Module, source: str) -> dict[str, dict[str, ShapeClaim]]:
    """All shape claims of one module, keyed by scope qualname.

    Scopes: ``"<module>"`` for module-level assignments, a function's name
    (or ``Class.method``) for its parameters and locals, and a class name
    for its attributes (dataclass fields with trailing shape comments, or a
    numpydoc ``Attributes`` docstring section).
    """
    comments = _comment_claims(source)
    claims: dict[str, dict[str, ShapeClaim]] = {}

    module_scope: dict[str, ShapeClaim] = {}
    _bind_comment_claims(module_scope, tree.body, comments)
    if module_scope:
        claims["<module>"] = module_scope

    def record_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> None:
        scope: dict[str, ShapeClaim] = {}
        doc = ast.get_docstring(node, clean=True)
        if doc:
            doc_line = node.body[0].lineno if node.body else node.lineno
            scope.update(_claims_from_docstring(doc, _param_names(node), doc_line))
        _bind_comment_claims(scope, list(ast.walk(node)) and node.body, comments)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.While, ast.If, ast.With, ast.Try)):
                _bind_comment_claims(scope, sub.body, comments)
        if scope:
            claims[qualname] = scope

    for stmt in tree.body:
        if isinstance(stmt, FunctionDefNode):
            record_function(stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            cls_scope: dict[str, ShapeClaim] = {}
            doc = ast.get_docstring(stmt, clean=True)
            if doc:
                doc_line = stmt.body[0].lineno if stmt.body else stmt.lineno
                cls_scope.update(
                    _claims_from_docstring(doc, _attribute_names(stmt), doc_line)
                )
            _bind_comment_claims(cls_scope, stmt.body, comments)
            if cls_scope:
                claims[stmt.name] = cls_scope
            for sub in stmt.body:
                if isinstance(sub, FunctionDefNode):
                    record_function(sub, f"{stmt.name}.{sub.name}")
    return claims


def module_name_candidates(path: str) -> list[str]:
    """Dotted-name suffixes identifying the module at ``path``.

    ``src/repro/serve/runtime.py`` yields ``runtime``, ``serve.runtime``,
    ``repro.serve.runtime``, ... so imports can be matched by their longest
    available suffix without knowing the package root.  ``__init__`` files
    identify their package directory.
    """
    pure = Path(path)
    parts = list(pure.parts)
    parts[-1] = pure.stem
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    parts = [p for p in parts if p not in ("/", "\\", "..", ".")]
    candidates = []
    for start in range(len(parts) - 1, max(len(parts) - 6, -1), -1):
        candidates.append(".".join(parts[start:]))
    return [c for c in candidates if c]


def _collect_imports(tree: ast.Module, module_name: str) -> tuple[dict[str, str], set[str]]:
    """Alias map and imported-module targets for one module."""
    imports: dict[str, str] = {}
    targets: set[str] = set()
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
                targets.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from this module's package.
                anchor = module_name.split(".")
                anchor = anchor[: len(anchor) - node.level] if len(anchor) >= node.level else []
                base = ".".join(anchor + ([node.module] if node.module else []))
                if not base:
                    base = node.module or package
            targets.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return imports, targets


class ProjectContext:
    """The cross-module index shared by project-aware rules.

    Holds one :class:`ModuleInfo` per linted file, a suffix index for
    resolving dotted imports to those modules, the project-wide attribute
    shape-claim table, and the module import graph.
    """

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.by_path: dict[str, ModuleInfo] = {m.path: m for m in modules}
        # Suffix index: dotted suffix -> modules it identifies.  Ambiguous
        # suffixes (two files named utils.py in sibling packages) resolve
        # only through a longer suffix.
        self._suffixes: dict[str, list[ModuleInfo]] = {}
        for module in modules:
            for candidate in module_name_candidates(module.path):
                self._suffixes.setdefault(candidate, []).append(module)
        # Project-wide attribute claims (class attribute name -> claim),
        # dropped entirely when two classes disagree about the same name.
        self.attribute_claims: dict[str, ShapeClaim] = {}
        conflicting: set[str] = set()
        for module in modules:
            for scope, scope_claims in module.claims.items():
                if scope == "<module>" or scope not in module.classes:
                    continue
                for name, claim in scope_claims.items():
                    seen = self.attribute_claims.get(name)
                    if seen is None:
                        self.attribute_claims[name] = claim
                    elif seen.ndim != claim.ndim:
                        conflicting.add(name)
        for name in conflicting:
            del self.attribute_claims[name]

    # -- module/import resolution -------------------------------------

    def module_for_path(self, path: str) -> ModuleInfo | None:
        """The ModuleInfo parsed from ``path`` (exact string match)."""
        return self.by_path.get(path)

    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The unique project module identified by ``dotted``, if any."""
        hits = self._suffixes.get(dotted)
        if hits and len(hits) == 1:
            return hits[0]
        return None

    def import_graph(self) -> dict[str, set[str]]:
        """Module name -> imported *project* module names (resolved only)."""
        graph: dict[str, set[str]] = {}
        for module in self.modules.values():
            edges = set()
            for target in module.imported_targets:
                resolved = self.resolve_module(target)
                if resolved is not None and resolved.name != module.name:
                    edges.add(resolved.name)
            graph[module.name] = edges
        return graph

    def resolve_function(
        self, module: ModuleInfo, name: str, *, _depth: int = 0
    ) -> ResolvedFunction | None:
        """Resolve a (possibly dotted) call name to a project function def.

        Follows ``from m import f`` aliases and ``import m`` attribute
        access (``m.f``), plus re-export chains up to a small depth.  Names
        that leave the linted file set resolve to ``None``.
        """
        if _depth > _RESOLVE_DEPTH:
            return None
        if "." not in name:
            node = module.functions.get(name)
            if node is not None:
                return ResolvedFunction(module=module, qualname=name, node=node)
            target = module.imports.get(name)
            if target is None:
                return None
            return self._resolve_dotted(target, _depth + 1)
        head, rest = name.split(".", 1)
        target = module.imports.get(head)
        if target is None:
            return None
        return self._resolve_dotted(f"{target}.{rest}", _depth + 1)

    def _resolve_dotted(self, dotted: str, depth: int) -> ResolvedFunction | None:
        """Resolve a fully-dotted ``package.module.symbol`` path."""
        if depth > _RESOLVE_DEPTH:
            return None
        if "." not in dotted:
            return None
        mod_part, symbol = dotted.rsplit(".", 1)
        target = self.resolve_module(mod_part)
        if target is None:
            # The tail may itself be nested (``pkg.mod.Class.method``) or
            # the symbol re-exported; try one level shorter.
            if "." in mod_part:
                shorter, cls = mod_part.rsplit(".", 1)
                owner = self.resolve_module(shorter)
                if owner is not None:
                    node = owner.class_method(cls, symbol)
                    if node is not None:
                        return ResolvedFunction(
                            module=owner, qualname=f"{cls}.{symbol}", node=node
                        )
            return None
        node = target.functions.get(symbol)
        if node is not None:
            return ResolvedFunction(module=target, qualname=symbol, node=node)
        # Re-export: the target module imported the symbol itself.
        onward = target.imports.get(symbol)
        if onward is not None and onward != dotted:
            return self._resolve_dotted(onward, depth + 1)
        return None


def _canonical_name(path: str) -> str:
    """The preferred display name for the module at ``path``."""
    candidates = module_name_candidates(path)
    for candidate in candidates:
        head = candidate.split(".", 1)[0]
        if head in ("repro", "tests", "examples", "benchmarks"):
            return candidate
    # Fall back to the two-component suffix (or the stem alone).
    return candidates[min(1, len(candidates) - 1)]


def build_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    """Index one parsed module for the project context."""
    name = _canonical_name(path)
    imports, targets = _collect_imports(tree, name)
    info = ModuleInfo(
        name=name,
        path=path,
        tree=tree,
        imports=imports,
        imported_targets=targets,
        claims=harvest_claims(tree, source),
    )
    for stmt in tree.body:
        if isinstance(stmt, FunctionDefNode):
            info.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            for sub in stmt.body:
                if isinstance(sub, FunctionDefNode):
                    info.methods[f"{stmt.name}.{sub.name}"] = sub
    return info


def build_project(files: Iterable[Path | str]) -> ProjectContext:
    """Parse every file and assemble the shared :class:`ProjectContext`.

    Unreadable or syntactically broken files are skipped here — the
    per-file engine reports them as ``RPL000`` findings; the project pass
    simply proceeds without their symbols.
    """
    modules: list[ModuleInfo] = []
    for entry in files:
        path = Path(entry)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError, ValueError):
            continue
        modules.append(build_module(str(path), source, tree))
    return ProjectContext(modules)
