"""``python -m repro.lint`` — run reprolint with the CLI exit-code contract."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
