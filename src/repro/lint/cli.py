"""The ``repro-lint`` command-line interface.

Exit-code contract (relied on by CI and :mod:`tests.test_cli`):

* ``0`` — no error-severity findings (warnings alone never gate);
* ``1`` — at least one error-severity finding;
* ``2`` — usage or I/O error (unknown rule code, missing path, ...).

Examples::

    repro-lint src/repro
    repro-lint --format json src/repro/core
    repro-lint --select RPL003,RPL007 src
    python -m repro.lint src/repro
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import (
    filter_new_findings,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import iter_python_files, lint_file
from repro.lint.project import build_project
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.rules import DEFAULT_PATH_RULES, DEFAULT_PATH_SEVERITY, all_rules

__all__ = ["build_parser", "main", "run"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint — AST-based reproducibility & numerical-safety "
            "linter for the carbon-neutral edge inference reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "gate only on findings absent from this baseline file; all "
            "findings are still reported"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule codes and exit",
    )
    parser.add_argument(
        "--no-path-rules",
        action="store_true",
        help=(
            "ignore the default per-path waivers and severity downgrades "
            "(e.g. benchmarks/ may print, examples/ prints are warnings)"
        ),
    )
    return parser


def _default_paths() -> list[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def run(
    paths: list[str],
    *,
    output_format: str = "text",
    select: list[str] | None = None,
    path_rules: dict[str, frozenset[str]] | None = None,
    path_severity: dict[str, dict[str, str]] | None = None,
    baseline: str | None = None,
    write_baseline_to: str | None = None,
) -> tuple[str, int]:
    """Lint ``paths``; return ``(report, exit_code)`` per the CLI contract.

    ``path_rules`` defaults to :data:`repro.lint.rules.DEFAULT_PATH_RULES`
    and ``path_severity`` to
    :data:`repro.lint.rules.DEFAULT_PATH_SEVERITY` (pass ``{}`` to disable
    either).  Only error-severity findings set exit code 1 — warnings are
    reported but never fatal.

    With ``baseline``, findings whose fingerprints the baseline file covers
    are still reported but no longer gate the exit code; with
    ``write_baseline_to``, the current findings are recorded to that file
    and the run exits 0.
    """
    if path_rules is None:
        path_rules = DEFAULT_PATH_RULES
    if path_severity is None:
        path_severity = DEFAULT_PATH_SEVERITY
    try:
        known = load_baseline(baseline) if baseline is not None else None
    except (OSError, ValueError) as exc:
        return f"repro-lint: error: {exc}", 2
    try:
        files = list(iter_python_files(paths))
        project = build_project(files)
        findings = []
        for target in files:
            findings.extend(
                lint_file(
                    target,
                    select=select,
                    path_rules=path_rules,
                    path_severity=path_severity,
                    project=project,
                )
            )
    except (FileNotFoundError, ValueError, OSError) as exc:
        return f"repro-lint: error: {exc}", 2
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    if write_baseline_to is not None:
        try:
            write_baseline(write_baseline_to, findings)
        except OSError as exc:
            return f"repro-lint: error: {exc}", 2
        return (
            f"reprolint: baseline with {len(findings)} finding(s) written "
            f"to {write_baseline_to}",
            0,
        )
    gating = findings
    baseline_note = ""
    if known is not None:
        gating = filter_new_findings(findings, known)
        absorbed = len(findings) - len(gating)
        baseline_note = (
            f"\nreprolint: {absorbed} finding(s) matched the baseline; "
            f"gating on {len(gating)} new"
        )
    if output_format == "json":
        report = render_json(findings, checked_files=len(files))
    elif output_format == "sarif":
        report = render_sarif(findings, checked_files=len(files))
    else:
        report = render_text(findings, checked_files=len(files)) + baseline_note
    errors = sum(1 for f in gating if f.is_error)
    return report, 1 if errors else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-lint`` and ``python -m repro.lint``."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    paths = args.paths or _default_paths()
    select = args.select.split(",") if args.select else None
    report, code = run(
        paths,
        output_format=args.format,
        select=select,
        path_rules={} if args.no_path_rules else None,
        path_severity={} if args.no_path_rules else None,
        baseline=args.baseline,
        write_baseline_to=args.write_baseline,
    )
    stream = sys.stderr if code == 2 else sys.stdout
    print(report, file=stream)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
