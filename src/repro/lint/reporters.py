"""Finding reporters: human-readable text, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.engine import Finding
from repro.lint.rules import all_rules

__all__ = ["render_json", "render_sarif", "render_text"]

#: JSON schema version; bump when the payload shape changes.
JSON_SCHEMA_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding], *, checked_files: int = 0) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary.

    When warnings are present the summary breaks the total down by
    severity, since only the errors gate the exit code.
    """
    lines = [finding.render() for finding in findings]
    if findings:
        by_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        warnings = sum(1 for f in findings if not f.is_error)
        severity = (
            f" ({len(findings) - warnings} error(s), {warnings} warning(s))"
            if warnings
            else ""
        )
        lines.append(
            f"reprolint: {len(findings)} finding(s) in {checked_files} "
            f"file(s) [{breakdown}]{severity}"
        )
    else:
        lines.append(f"reprolint: 0 findings in {checked_files} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, checked_files: int = 0) -> str:
    """A stable JSON document: schema version, rule set, findings, summary."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "rules": [
            {"code": rule.code, "summary": rule.summary, "severity": rule.severity}
            for rule in all_rules()
        ],
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "checked_files": checked_files,
            "total_findings": len(findings),
            "errors": sum(1 for f in findings if f.is_error),
            "warnings": sum(1 for f in findings if not f.is_error),
            "findings_by_code": dict(
                sorted(Counter(f.code for f in findings).items())
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(findings: Sequence[Finding], *, checked_files: int = 0) -> str:
    """A SARIF 2.1.0 document (the format CI code-scanning UIs ingest).

    One run, one driver (``reprolint``), one ``rules`` entry per registered
    rule, one ``result`` per finding.  Severity maps ``error`` -> SARIF
    ``error`` and ``warning`` -> SARIF ``warning``; columns are converted
    from the engine's 0-based offsets to SARIF's 1-based convention.
    """
    rules = all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": rule_index.get(f.code, -1),
            "level": "error" if f.is_error else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": [
                            {
                                "id": rule.code,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {
                                    "level": (
                                        "error"
                                        if rule.severity == "error"
                                        else "warning"
                                    )
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {"checked_files": checked_files},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
