"""The benchmark case registry and measurement loop.

Each :class:`BenchCase` pairs a setup callable (builds the workload once,
outside the timed region) with the measured thunk it returns.  Timing goes
through :meth:`repro.obs.tracer.Tracer.timer` for wall time (monotonic
clock) and ``time.process_time`` for CPU time; the reported figure is the
best of ``rounds`` rounds after one warmup, the standard estimator that is
robust to scheduler noise.

Three suites cover the perf trajectory the vectorized engine is gated on:

* ``simulator`` — end-to-end runs at I=10 and I=64, scalar reference loop
  vs the vectorized fast path (same :class:`~repro.spec.RunSpec`, same
  digests), plus scenario construction;
* ``core`` — the algorithmic kernels: scalar-vs-batch Tsallis-OMD solves,
  block-schedule construction, a full Algorithm-1 horizon;
* ``nn`` — batched vs sample-at-a-time forward passes through the numpy
  model zoo.

Suites derive machine-relative speedup ratios (``derive_ratios``) that the
``repro bench --check`` gate enforces even across machines.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bench.report import BenchReport, BenchResult, machine_fingerprint
from repro.obs.tracer import Tracer
from repro.utils.rng import spawn_generator

__all__ = [
    "BenchCase",
    "SUITE_NAMES",
    "derive_ratios",
    "run_case",
    "run_suite",
    "suite_cases",
]

#: End-to-end fleet sizes; 64 is the acceptance scale for the speedup gate.
_SMALL_EDGES = 10
_LARGE_EDGES = 64
_HORIZON = 160


@dataclass(frozen=True)
class BenchCase:
    """One measurable workload.

    ``build`` runs un-timed and returns the thunk that is timed; the thunk
    must be safe to call repeatedly (fresh policy state per call where
    state matters).  ``work`` is the work one thunk call performs, in
    ``unit`` terms, for throughput reporting.
    """

    suite: str
    name: str
    build: Callable[[], Callable[[], object]]
    work: float
    unit: str
    rounds: int = 3
    meta: dict[str, object] = field(default_factory=dict)


def run_case(case: BenchCase, *, smoke: bool = False) -> BenchResult:
    """Measure one case: warmup, then best-of-rounds wall/CPU seconds.

    Smoke mode (CI) caps at two timed rounds — still after the warmup, so
    first-call caches and allocator effects never pollute the numbers, and
    best-of-two so a single scheduler hiccup cannot double a fast case and
    flake a derived-ratio gate.  Still noisier than full best-of-N, which
    is why smoke reports gate on derived ratios and coverage, never on
    absolute wall times.
    """
    thunk = case.build()
    rounds = min(2, case.rounds) if smoke else case.rounds
    tracer = Tracer()
    timer = tracer.timer(f"bench/{case.suite}/{case.name}")
    thunk()  # warmup: first-call caches and allocator effects
    best_wall = float("inf")
    best_cpu = float("inf")
    for _ in range(rounds):
        before = timer.total_seconds
        cpu_before = time.process_time()
        with timer:
            thunk()
        cpu = time.process_time() - cpu_before
        wall = timer.total_seconds - before
        best_wall = min(best_wall, wall)
        best_cpu = min(best_cpu, cpu)
    return BenchResult(
        name=case.name,
        wall_seconds=best_wall,
        cpu_seconds=best_cpu,
        rounds=rounds,
        work=case.work,
        unit=case.unit,
        meta=dict(case.meta),
    )


# ---------------------------------------------------------------------------
# simulator suite: end-to-end engine throughput, scalar vs vectorized.


def _simulate_build(
    num_edges: int,
    vectorized: bool,
    spec_overrides: dict[str, object] | None = None,
) -> Callable[[], object]:
    from repro.sim.config import ScenarioConfig
    from repro.sim.simulator import Simulator
    from repro.spec import RunSpec

    spec = RunSpec(
        scenario=ScenarioConfig(
            dataset="synthetic", num_edges=num_edges, horizon=_HORIZON
        ),
        selection="Ours",
        trading="Ours",
        seed=0,
    )
    if spec_overrides:
        spec = spec.with_overrides(**spec_overrides)
    scenario = spec.build_scenario()

    def thunk() -> object:
        # A fresh simulator per call: policies are stateful across a run.
        sim = Simulator.from_spec(scenario, spec)
        result = sim.run(vectorized=vectorized)
        sim.tracer.close()
        return result

    return thunk


def _scenario_build() -> Callable[[], object]:
    from repro.sim.config import ScenarioConfig
    from repro.sim.scenario import build_scenario

    config = ScenarioConfig(
        dataset="synthetic", num_edges=_SMALL_EDGES, horizon=_HORIZON
    )
    return lambda: build_scenario(config)


def _simulator_cases(
    spec_overrides: dict[str, object] | None = None,
) -> list[BenchCase]:
    cases = [
        BenchCase(
            suite="simulator",
            name="scenario_build_i10",
            build=_scenario_build,
            work=1.0,
            unit="scenarios",
        )
    ]
    for edges in (_SMALL_EDGES, _LARGE_EDGES):
        for label, vectorized in (("scalar", False), ("vectorized", True)):
            if vectorized and spec_overrides:
                # Fault plans and tracing force the scalar reference loop;
                # the vectorized twin has nothing comparable to measure.
                continue
            meta: dict[str, object] = {
                "edges": edges,
                "horizon": _HORIZON,
                "engine": label,
                "spec": "Ours-Ours seed 0 synthetic",
            }
            if spec_overrides:
                meta["overrides"] = sorted(spec_overrides)
            def build(
                edges: int = edges, vectorized: bool = vectorized
            ) -> Callable[[], object]:
                return _simulate_build(edges, vectorized, spec_overrides)

            cases.append(
                BenchCase(
                    suite="simulator",
                    name=f"simulate_{label}_i{edges}",
                    build=build,
                    work=float(edges * _HORIZON),
                    unit="slot-edges",
                    meta=meta,
                )
            )
    return cases


# ---------------------------------------------------------------------------
# core suite: the paper's algorithmic kernels.

_TSALLIS_ROWS = 64
_TSALLIS_ARMS = 6
_TSALLIS_REPEAT = 20


def _tsallis_build(batch: bool) -> Callable[[], object]:
    from repro.core.tsallis import (
        tsallis_inf_probabilities,
        tsallis_inf_probabilities_batch,
    )

    rng = spawn_generator(0, "bench-tsallis")
    losses = rng.uniform(0.0, 100.0, size=(_TSALLIS_ROWS, _TSALLIS_ARMS))
    etas = rng.uniform(0.1, 2.5, size=_TSALLIS_ROWS)

    if batch:

        def thunk() -> object:
            out = None
            for _ in range(_TSALLIS_REPEAT):
                out = tsallis_inf_probabilities_batch(losses, etas)
            return out

    else:

        def thunk() -> object:
            out = None
            for _ in range(_TSALLIS_REPEAT):
                for row in range(_TSALLIS_ROWS):
                    out = tsallis_inf_probabilities(losses[row], float(etas[row]))
            return out

    return thunk


def _schedule_build() -> Callable[[], object]:
    from repro.core.blocks import build_schedule

    return lambda: build_schedule(10000, 3.0, 6)


def _alg1_build() -> Callable[[], object]:
    from repro.core.model_selection import OnlineModelSelection

    def thunk() -> object:
        policy = OnlineModelSelection(6, _HORIZON, 2.5, spawn_generator(2, "bench-alg1"))
        for t in range(_HORIZON):
            model = policy.select(t)
            policy.observe(t, model, 0.5)
        return policy

    return thunk


def _core_cases() -> list[BenchCase]:
    solves = float(_TSALLIS_ROWS * _TSALLIS_REPEAT)
    return [
        BenchCase(
            suite="core",
            name="tsallis_scalar_64x6",
            build=lambda: _tsallis_build(batch=False),
            work=solves,
            unit="solves",
            rounds=5,
        ),
        BenchCase(
            suite="core",
            name="tsallis_batch_64x6",
            build=lambda: _tsallis_build(batch=True),
            work=solves,
            unit="solves",
            rounds=5,
        ),
        BenchCase(
            suite="core",
            name="block_schedule_10000",
            build=_schedule_build,
            work=10000.0,
            unit="slots",
            rounds=5,
        ),
        BenchCase(
            suite="core",
            name="alg1_full_horizon",
            build=_alg1_build,
            work=float(_HORIZON),
            unit="slots",
            rounds=5,
        ),
    ]


# ---------------------------------------------------------------------------
# nn suite: batched vs per-sample forward passes.

_NN_SAMPLES = 64


def _nn_build(model: str, batched: bool) -> Callable[[], object]:
    from repro.nn.models import build_cnn, build_mlp

    rng = spawn_generator(0, "bench-nn-inputs")
    inputs = rng.random((_NN_SAMPLES, 1, 8, 8))
    if model == "mlp":
        net = build_mlp(spawn_generator(1, "bench-mlp"), hidden=128)
    else:
        net = build_cnn(spawn_generator(2, "bench-cnn"), channels=(32, 64))

    if batched:
        return lambda: net.predict_proba(inputs)

    def thunk() -> object:
        out = None
        for row in range(_NN_SAMPLES):
            out = net.predict_proba(inputs[row : row + 1])
        return out

    return thunk


def _nn_cases() -> list[BenchCase]:
    cases = []
    for model in ("mlp", "cnn"):
        for label, batched in (("per_sample", False), ("batch64", True)):
            cases.append(
                BenchCase(
                    suite="nn",
                    name=f"{model}_{label}",
                    build=(
                        lambda model=model, batched=batched: _nn_build(model, batched)
                    ),
                    work=float(_NN_SAMPLES),
                    unit="samples",
                    rounds=5,
                    meta={"model": model, "samples": _NN_SAMPLES},
                )
            )
    return cases


_SUITE_BUILDERS: dict[str, Callable[[], list[BenchCase]]] = {
    "simulator": _simulator_cases,
    "core": _core_cases,
    "nn": _nn_cases,
}

#: Registered suite names, in canonical run order.
SUITE_NAMES: tuple[str, ...] = tuple(_SUITE_BUILDERS)

#: Ratio name -> (numerator case, denominator case); the gate enforces
#: these machine-relative speedups even when fingerprints differ.
_RATIO_DEFS: dict[str, dict[str, tuple[str, str]]] = {
    "simulator": {
        "vectorized_speedup_i10": ("simulate_scalar_i10", "simulate_vectorized_i10"),
        "vectorized_speedup_i64": ("simulate_scalar_i64", "simulate_vectorized_i64"),
    },
    "core": {
        "tsallis_batch_speedup": ("tsallis_scalar_64x6", "tsallis_batch_64x6"),
    },
    "nn": {
        "mlp_batch_speedup": ("mlp_per_sample", "mlp_batch64"),
        "cnn_batch_speedup": ("cnn_per_sample", "cnn_batch64"),
    },
}


def suite_cases(
    suite: str, *, spec_overrides: dict[str, object] | None = None
) -> list[BenchCase]:
    """The registered cases of one suite (fresh instances).

    ``spec_overrides`` are :meth:`~repro.spec.RunSpec.with_overrides`
    fields applied to the end-to-end simulator cases (e.g. a fault plan or
    trace output to measure their overhead); other suites ignore them.
    """
    try:
        builder = _SUITE_BUILDERS[suite]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {suite!r}; registered: {', '.join(SUITE_NAMES)}"
        ) from None
    if suite == "simulator":
        return _simulator_cases(spec_overrides)
    return builder()


def derive_ratios(suite: str, results: list[BenchResult]) -> dict[str, float]:
    """Suite-defined speedup ratios from measured results."""
    by_name = {result.name: result for result in results}
    ratios = {}
    for name, (slow, fast) in _RATIO_DEFS.get(suite, {}).items():
        if slow in by_name and fast in by_name:
            ratios[name] = by_name[slow].wall_seconds / by_name[fast].wall_seconds
    return ratios


def run_suite(
    suite: str,
    *,
    smoke: bool = False,
    progress: Callable[[str], None] | None = None,
    spec_overrides: dict[str, object] | None = None,
) -> BenchReport:
    """Measure every case of ``suite`` and assemble its report."""
    results = []
    for case in suite_cases(suite, spec_overrides=spec_overrides):
        if progress is not None:
            progress(f"{suite}/{case.name}")
        results.append(run_case(case, smoke=smoke))
    return BenchReport(
        suite=suite,
        machine=machine_fingerprint(),
        results=tuple(results),
        ratios=derive_ratios(suite, results),
        mode="smoke" if smoke else "full",
    )
