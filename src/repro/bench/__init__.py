"""Measured performance suites and the ``BENCH_*.json`` regression gate.

The package has three layers:

* :mod:`repro.bench.report` — the schema-versioned report format
  (:class:`BenchResult` / :class:`BenchReport`), machine fingerprinting,
  and the wall-time / speedup-ratio comparison logic;
* :mod:`repro.bench.cases` — the registered suites (``simulator``,
  ``core``, ``nn``) and the warmup + best-of-rounds measurement loop;
* :mod:`repro.bench.cli` — the ``repro bench`` command: run, write,
  ``--check`` against the committed baselines in ``benchmarks/baselines/``
  (exit 1 beyond the 15% wall / 50% ratio gate).

Typical use::

    from repro.bench import run_suite

    report = run_suite("simulator")
    print(report.ratios["vectorized_speedup_i64"])
"""

from repro.bench.cases import (
    SUITE_NAMES,
    BenchCase,
    derive_ratios,
    run_case,
    run_suite,
    suite_cases,
)
from repro.bench.report import (
    BENCH_FORMAT_VERSION,
    BenchReport,
    BenchResult,
    CaseComparison,
    RatioComparison,
    compare_ratios,
    compare_reports,
    load_report,
    machine_fingerprint,
    report_filename,
)

__all__ = [
    "BENCH_FORMAT_VERSION",
    "BenchCase",
    "BenchReport",
    "BenchResult",
    "CaseComparison",
    "RatioComparison",
    "SUITE_NAMES",
    "compare_ratios",
    "compare_reports",
    "derive_ratios",
    "load_report",
    "machine_fingerprint",
    "report_filename",
    "run_case",
    "run_suite",
    "suite_cases",
]
