"""The ``repro bench`` command body: run suites, write reports, gate.

Kept inside :mod:`repro.bench` (rather than the top-level CLI module) so
the gate is scriptable: ``python -m repro.bench.cli --check`` behaves
exactly like ``repro bench --check``.  Printing is this module's job — the
measurement loop (:mod:`repro.bench.cases`) and the report/compare layer
(:mod:`repro.bench.report`) stay silent.

Exit codes: 0 clean, 1 regression found by ``--check``, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.cases import SUITE_NAMES, run_suite, suite_cases
from repro.bench.report import (
    DEFAULT_RATIO_SLACK,
    DEFAULT_THRESHOLD,
    BenchReport,
    compare_ratios,
    compare_reports,
    load_report,
    machine_fingerprint,
    report_filename,
)

__all__ = ["add_arguments", "main", "run"]

#: Default location of the committed baseline reports.
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench-specific arguments (shared flags are the caller's)."""
    parser.add_argument("suites", nargs="*", metavar="SUITE",
                        help=f"suites to run (default: all of "
                             f"{', '.join(SUITE_NAMES)})")
    parser.add_argument("--list", action="store_true",
                        help="list suites and cases, run nothing")
    parser.add_argument("--smoke", action="store_true",
                        help="best of two timed rounds after warmup (fast, "
                             "noisier; what CI runs)")
    parser.add_argument("--output-dir", metavar="DIR", default=".",
                        help="write BENCH_<suite>.json here (default: .)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baselines and "
                             "exit 1 on regression")
    parser.add_argument("--baseline-dir", metavar="DIR",
                        default=DEFAULT_BASELINE_DIR,
                        help=f"baseline reports (default: "
                             f"{DEFAULT_BASELINE_DIR})")
    parser.add_argument("--replay", metavar="DIR", default=None,
                        help="re-check existing BENCH_*.json from DIR "
                             "instead of measuring anything")
    parser.add_argument("--threshold", type=float, metavar="PCT",
                        default=DEFAULT_THRESHOLD * 100.0,
                        help="wall-time regression threshold in percent "
                             f"(default: {DEFAULT_THRESHOLD * 100:.0f})")
    parser.add_argument("--ratio-slack", type=float, metavar="PCT",
                        default=DEFAULT_RATIO_SLACK * 100.0,
                        help="allowed drop of derived speedup ratios in "
                             f"percent (default: {DEFAULT_RATIO_SLACK * 100:.0f})")


def _list_cases(suites: list[str]) -> int:
    for suite in suites:
        print(f"{suite}:")
        for case in suite_cases(suite):
            print(f"  {case.name:<28} {case.work:>10.0f} {case.unit} "
                  f"x{case.rounds}")
    return 0


def _print_report(report: BenchReport) -> None:
    print(f"suite {report.suite}:")
    for result in report.results:
        print(f"  {result.name:<28} {result.wall_seconds * 1e3:>10.2f} ms wall  "
              f"{result.cpu_seconds * 1e3:>10.2f} ms cpu  "
              f"{result.throughput:>12.1f} {result.unit}/s")
    for name, value in sorted(report.ratios.items()):
        print(f"  {name:<28} {value:>10.2f}x")


def _check_suite(
    baseline: BenchReport,
    current: BenchReport,
    *,
    threshold: float,
    ratio_slack: float,
) -> int:
    """Print the comparison; return the number of gating regressions."""
    regressions = 0
    gate_walls = (
        baseline.machine == current.machine and current.mode == "full"
    )
    if not gate_walls:
        why = (
            "machine fingerprint differs from the baseline"
            if baseline.machine != current.machine
            else "smoke-mode numbers are low-round"
        )
        print(f"  [{baseline.suite}] {why}; wall-time deltas are "
              "informational, ratios still gate")
    for comp in compare_reports(baseline, current, threshold=threshold):
        if comp.current_wall is None:
            print(f"  MISSING {comp.name}: case in baseline but not measured")
            regressions += 1
            continue
        if comp.baseline_wall is None:
            print(f"  new     {comp.name}: {comp.current_wall * 1e3:.2f} ms "
                  "(no baseline)")
            continue
        delta = (comp.ratio - 1.0) * 100.0
        marker = "ok  "
        if comp.regressed:
            marker = "SLOW" if gate_walls else "slow"
            regressions += 1 if gate_walls else 0
        print(f"  {marker}    {comp.name}: {comp.current_wall * 1e3:.2f} ms "
              f"vs {comp.baseline_wall * 1e3:.2f} ms ({delta:+.1f}%)")
    for comp in compare_ratios(baseline, current, slack=ratio_slack):
        if comp.current_ratio is None:
            print(f"  MISSING ratio {comp.name}: in baseline but not derived")
            regressions += 1
            continue
        if comp.baseline_ratio is None:
            print(f"  new     ratio {comp.name}: {comp.current_ratio:.2f}x")
            continue
        marker = "RATIO" if comp.regressed else "ok  "
        if comp.regressed:
            regressions += 1
        print(f"  {marker}   {comp.name}: {comp.current_ratio:.2f}x "
              f"vs baseline {comp.baseline_ratio:.2f}x")
    return regressions


def run(args: argparse.Namespace) -> int:
    """Execute ``repro bench`` from parsed arguments."""
    suites = list(args.suites) if args.suites else list(SUITE_NAMES)
    for suite in suites:
        if suite not in SUITE_NAMES:
            print(f"unknown suite {suite!r}; registered: "
                  f"{', '.join(SUITE_NAMES)}", file=sys.stderr)
            return 2
    if args.list:
        return _list_cases(suites)

    spec_overrides: dict[str, object] = {}
    if getattr(args, "faults", None):
        from repro.faults import load_plan

        spec_overrides["faults"] = load_plan(args.faults)
    if getattr(args, "trace_output", None):
        spec_overrides["trace_output"] = args.trace_output
    if spec_overrides and args.check:
        print("bench --check compares the baseline workload; drop "
              "--faults/--trace-output to gate", file=sys.stderr)
        return 2

    current: dict[str, BenchReport] = {}
    if args.replay is not None:
        for suite in suites:
            path = os.path.join(args.replay, report_filename(suite))
            if not os.path.exists(path):
                print(f"replay report missing: {path}", file=sys.stderr)
                return 2
            current[suite] = load_report(path)
            _print_report(current[suite])
    else:
        fingerprint = machine_fingerprint()
        print("machine: " + ", ".join(
            f"{key}={value}" for key, value in fingerprint.items()))
        for suite in suites:
            report = run_suite(
                suite,
                smoke=args.smoke,
                progress=lambda name: print(f"  running {name} ..."),
                spec_overrides=spec_overrides or None,
            )
            current[suite] = report
            _print_report(report)
            os.makedirs(args.output_dir, exist_ok=True)
            path = report.write(
                os.path.join(args.output_dir, report_filename(suite))
            )
            print(f"wrote {path}")

    if not args.check:
        return 0

    threshold = args.threshold / 100.0
    ratio_slack = args.ratio_slack / 100.0
    total = 0
    for suite in suites:
        baseline_path = os.path.join(args.baseline_dir, report_filename(suite))
        if not os.path.exists(baseline_path):
            print(f"no baseline for suite {suite} ({baseline_path}); "
                  "skipping gate")
            continue
        baseline = load_report(baseline_path)
        print(f"checking {suite} against {baseline_path}:")
        total += _check_suite(
            baseline, current[suite],
            threshold=threshold, ratio_slack=ratio_slack,
        )
    if total:
        print(f"FAIL: {total} regression(s) beyond the "
              f"{args.threshold:.0f}% / ratio-{args.ratio_slack:.0f}% gate")
        return 1
    print("bench check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.bench.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="measured performance suites with a regression gate",
    )
    add_arguments(parser)
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="fault plan applied to the end-to-end "
                             "simulator cases (measures faulted overhead)")
    parser.add_argument("--trace-output", metavar="LOG.jsonl", default=None,
                        help="trace the end-to-end simulator cases to this "
                             "JSONL file (measures tracing overhead)")
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
