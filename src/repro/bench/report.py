"""Schema-versioned benchmark reports (``BENCH_*.json``).

A :class:`BenchReport` is the unit the perf-regression gate trades in: one
suite's measured :class:`BenchResult` rows plus the machine fingerprint they
were taken on and any suite-derived speedup ratios.  Reports serialize to
``BENCH_<suite>.json`` files; committed baselines live under
``benchmarks/baselines/`` and ``repro bench --check`` compares fresh (or
replayed) reports against them.

Two kinds of comparison feed the gate:

* **wall-time** — per-case wall seconds against the baseline, gated only
  for full-mode reports taken on a matching machine fingerprint (absolute
  timings from a different machine, or from a single smoke round, are
  informational, not actionable);
* **ratio** — suite-derived speedups (e.g. scalar/vectorized simulator
  time), which are machine-relative and therefore always gated.  A
  vectorization regression shows up here no matter where the check runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
from dataclasses import dataclass, field

__all__ = [
    "BENCH_FORMAT_VERSION",
    "BenchReport",
    "BenchResult",
    "CaseComparison",
    "RatioComparison",
    "compare_reports",
    "compare_ratios",
    "load_report",
    "machine_fingerprint",
    "report_filename",
]

#: Format tag written into serialized reports; bump on incompatible changes.
BENCH_FORMAT_VERSION = 1

#: Default wall-time regression threshold (fraction over baseline).
DEFAULT_THRESHOLD = 0.15

#: Default slack on derived ratios: a current ratio may fall to
#: ``baseline * (1 - slack)`` before the gate fails.  Ratios are noisy in
#: one-round smoke mode, so the slack is generous — the gate exists to
#: catch "the vectorized path stopped being faster", not 10% jitter.
DEFAULT_RATIO_SLACK = 0.5


def machine_fingerprint() -> dict[str, object]:
    """An identifying (not secret-bearing) summary of the measuring host.

    Wall-time comparisons are only gating when two reports carry an equal
    fingerprint; everything here is stable across runs on one machine.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
    }


def report_filename(suite: str) -> str:
    """The canonical on-disk name for a suite's report."""
    return f"BENCH_{suite}.json"


@dataclass(frozen=True)
class BenchResult:
    """One measured benchmark case.

    ``wall_seconds`` / ``cpu_seconds`` are the best (minimum) round — the
    standard estimator for "how fast can this go", robust to scheduler
    noise.  ``work`` and ``unit`` describe how much work one round performs
    (e.g. 10240 ``slot-edges``), from which :attr:`throughput` derives.
    """

    name: str
    wall_seconds: float
    cpu_seconds: float
    rounds: int
    work: float
    unit: str
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wall_seconds <= 0.0:
            raise ValueError(
                f"wall_seconds must be positive, got {self.wall_seconds}"
            )
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")

    @property
    def throughput(self) -> float:
        """Work units per wall second."""
        return self.work / self.wall_seconds

    def to_dict(self) -> dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["throughput"] = self.throughput
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchResult":
        fields = dict(payload)
        fields.pop("throughput", None)  # derived; recomputed on access
        return cls(**fields)


@dataclass(frozen=True)
class BenchReport:
    """All of one suite's results, plus fingerprint and derived ratios.

    ``mode`` records how the numbers were taken: ``"full"`` (warmup +
    best-of-rounds, the only mode whose wall times are gate-worthy) or
    ``"smoke"`` (warmup + best of two rounds — fast CI numbers that gate
    on derived ratios and case coverage only).
    """

    suite: str
    machine: dict[str, object]
    results: tuple[BenchResult, ...]
    ratios: dict[str, float] = field(default_factory=dict)
    mode: str = "full"

    def get(self, name: str) -> BenchResult | None:
        """The named case's result, or ``None``."""
        for result in self.results:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": BENCH_FORMAT_VERSION,
            "suite": self.suite,
            "mode": self.mode,
            "machine": dict(self.machine),
            "results": [result.to_dict() for result in self.results],
            "ratios": dict(self.ratios),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> str:
        """Write the report as JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchReport":
        if not isinstance(payload, dict):
            raise ValueError(f"bench report must be an object, got {payload!r}")
        version = payload.get("format_version")
        if version != BENCH_FORMAT_VERSION:
            raise ValueError(
                f"unsupported bench format_version {version!r} "
                f"(this build reads {BENCH_FORMAT_VERSION})"
            )
        return cls(
            suite=payload["suite"],
            machine=dict(payload.get("machine", {})),
            results=tuple(
                BenchResult.from_dict(row) for row in payload.get("results", ())
            ),
            ratios={k: float(v) for k, v in payload.get("ratios", {}).items()},
            mode=payload.get("mode", "full"),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        return cls.from_dict(json.loads(text))


def load_report(path: str) -> BenchReport:
    """Read a ``BENCH_*.json`` file."""
    with open(path, encoding="utf-8") as handle:
        return BenchReport.from_json(handle.read())


@dataclass(frozen=True)
class CaseComparison:
    """One case's wall time against the baseline."""

    name: str
    baseline_wall: float | None
    current_wall: float | None
    threshold: float

    @property
    def ratio(self) -> float | None:
        """current/baseline wall time (>1 means slower), if both exist."""
        if self.baseline_wall is None or self.current_wall is None:
            return None
        return self.current_wall / self.baseline_wall

    @property
    def regressed(self) -> bool:
        """Slower than baseline by more than ``threshold``, or missing."""
        if self.baseline_wall is None:
            return False  # new case: nothing to regress against
        if self.current_wall is None:
            return True  # baseline coverage lost
        return self.current_wall > self.baseline_wall * (1.0 + self.threshold)


@dataclass(frozen=True)
class RatioComparison:
    """One derived speedup ratio against the baseline (machine-relative)."""

    name: str
    baseline_ratio: float | None
    current_ratio: float | None
    slack: float

    @property
    def regressed(self) -> bool:
        """Fell below ``baseline * (1 - slack)``, or coverage lost."""
        if self.baseline_ratio is None:
            return False
        if self.current_ratio is None:
            return True
        return self.current_ratio < self.baseline_ratio * (1.0 - self.slack)


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[CaseComparison]:
    """Per-case wall-time comparisons, baseline order first, new cases last."""
    if baseline.suite != current.suite:
        raise ValueError(
            f"cannot compare suites {baseline.suite!r} and {current.suite!r}"
        )
    comparisons = []
    seen = set()
    for base in baseline.results:
        seen.add(base.name)
        cur = current.get(base.name)
        comparisons.append(
            CaseComparison(
                name=base.name,
                baseline_wall=base.wall_seconds,
                current_wall=None if cur is None else cur.wall_seconds,
                threshold=threshold,
            )
        )
    for cur in current.results:
        if cur.name not in seen:
            comparisons.append(
                CaseComparison(
                    name=cur.name,
                    baseline_wall=None,
                    current_wall=cur.wall_seconds,
                    threshold=threshold,
                )
            )
    return comparisons


def compare_ratios(
    baseline: BenchReport,
    current: BenchReport,
    *,
    slack: float = DEFAULT_RATIO_SLACK,
) -> list[RatioComparison]:
    """Derived-ratio comparisons (always gating; machine-independent)."""
    comparisons = []
    seen = set()
    for name, base_value in baseline.ratios.items():
        seen.add(name)
        comparisons.append(
            RatioComparison(
                name=name,
                baseline_ratio=base_value,
                current_ratio=current.ratios.get(name),
                slack=slack,
            )
        )
    for name, value in current.ratios.items():
        if name not in seen:
            comparisons.append(
                RatioComparison(
                    name=name, baseline_ratio=None, current_ratio=value, slack=slack
                )
            )
    return comparisons
