"""The 1/2-Tsallis-entropy online-mirror-descent step.

Algorithm 1, line 3 computes

    p = argmin_{p in simplex}  <p, C_hat>  -  sum_n (4 sqrt(p_n) - 2 p_n) / eta.

First-order stationarity gives the closed form

    p_n(x) = 4 / (eta^2 (C_hat_n - x)^2),

where ``x`` (a shifted Lagrange multiplier) must satisfy
``x <= min_n C_hat_n - 2/eta`` so that every ``p_n <= 1``.  The map
``x -> sum_n p_n(x)`` is strictly increasing on that interval, equals at most
``N * small`` at the left end of our bracket and at least 1 at the right end,
so the normalization ``sum_n p_n(x) = 1`` has a unique root which we find by
a safeguarded Newton iteration (Newton steps with a bisection fallback —
the same derivative-based root polishing as Brent's method the paper cites).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_finite, check_positive, check_simplex

__all__ = ["tsallis_inf_probabilities", "tsallis_inf_probabilities_batch"]

_MAX_ITER = 200
_TOL = 1e-12
_SIMPLEX_ATOL = 1e-9  # check_simplex's default tolerance


def _check_simplex_rows(matrix: np.ndarray, name: str) -> np.ndarray:
    """Whole-matrix form of :func:`check_simplex`'s postcondition.

    Same invariants and tolerances, checked with three array reductions
    instead of one Python-level call per row (the per-row loop was a
    profiled hotspot of the batched solver).  Like ``check_simplex``, this
    never alters values — it only raises when a row is off the simplex.
    """
    if not np.all(np.isfinite(matrix)):
        raise ArithmeticError(f"{name} contains non-finite probabilities")
    low = float(matrix.min())
    if low < -_SIMPLEX_ATOL:
        raise ArithmeticError(f"{name} has negative probability mass: min={low!r}")
    totals = matrix.sum(axis=1)
    tolerance = max(_SIMPLEX_ATOL * matrix.shape[1], _SIMPLEX_ATOL)
    off = np.abs(totals - 1.0) > tolerance
    if np.any(off):
        row = int(np.argmax(off))
        raise ArithmeticError(
            f"{name} row {row} must sum to 1, got {float(totals[row])!r}"
        )
    return matrix


def tsallis_inf_probabilities(cumulative_losses: np.ndarray, eta: float) -> np.ndarray:
    """Solve the Tsallis-entropy OMD step.

    Parameters
    ----------
    cumulative_losses:
        ``C_hat`` — cumulative importance-weighted loss estimates, one per arm.
    eta:
        Learning rate ``eta > 0``.

    Returns
    -------
    Probability vector over the arms; lower cumulative loss gets higher mass.
    """
    losses = check_finite(cumulative_losses, "cumulative_losses")
    if losses.ndim != 1 or losses.size == 0:
        raise ValueError(f"cumulative_losses must be a non-empty vector, got {losses.shape}")
    check_positive(eta, "eta")
    n = losses.size
    if n == 1:
        return np.ones(1)

    lo = float(losses.min()) - 2.0 * np.sqrt(n) / eta  # sum(p) <= 1 here
    hi = float(losses.min()) - 2.0 / eta  # sum(p) >= 1 here

    def mass_and_derivative(x: float) -> tuple[float, float]:
        gaps = losses - x  # >= 2/eta > 0 on [lo, hi]
        p = 4.0 / (eta * gaps) ** 2
        return float(p.sum()), float((8.0 / eta**2) * np.sum(gaps**-3))

    x = 0.5 * (lo + hi)
    for _ in range(_MAX_ITER):
        mass, derivative = mass_and_derivative(x)
        if mass > 1.0:
            hi = x
        else:
            lo = x
        if abs(mass - 1.0) <= _TOL:
            break
        step = (mass - 1.0) / derivative
        candidate = x - step
        # Newton step, safeguarded: fall back to bisection when the step
        # leaves the current bracket.
        x = candidate if lo < candidate < hi else 0.5 * (lo + hi)
        if hi - lo <= _TOL * max(1.0, abs(hi)):
            break

    gaps = losses - x
    p = 4.0 / (eta * gaps) ** 2
    total = p.sum()
    if not np.isfinite(total) or total <= 0:
        raise ArithmeticError("Tsallis OMD normalization failed")
    return check_simplex(p / total, "tsallis_inf_probabilities")


def tsallis_inf_probabilities_batch(
    cumulative_losses: np.ndarray, etas: np.ndarray
) -> np.ndarray:
    """Solve ``B`` independent Tsallis-OMD steps at once.

    Row ``b`` of the result is **bitwise identical** to
    ``tsallis_inf_probabilities(cumulative_losses[b], etas[b])``: every row
    follows the exact safeguarded-Newton trajectory of the scalar solver
    (per-row bracket state, per-row convergence freezing), and NumPy's
    pairwise reduction over the last axis of a C-contiguous matrix performs
    the same addition sequence as the scalar solver's 1-D sums.  This is
    what lets the vectorized simulator batch block openings across edges
    without moving the golden digests.

    Parameters
    ----------
    cumulative_losses:
        ``(B, N)`` matrix of cumulative importance-weighted loss estimates,
        one row per independent problem.
    etas:
        ``(B,)`` positive learning rates, one per row.

    Returns
    -------
    ``(B, N)`` row-stochastic matrix of sampling distributions.
    """
    losses = check_finite(cumulative_losses, "cumulative_losses")
    if losses.ndim != 2 or losses.shape[0] == 0 or losses.shape[1] == 0:
        raise ValueError(
            f"cumulative_losses must be a non-empty (B, N) matrix, got {losses.shape}"
        )
    etas = np.asarray(etas, dtype=float)
    if etas.shape != (losses.shape[0],):
        raise ValueError(
            f"etas must have shape ({losses.shape[0]},), got {etas.shape}"
        )
    if not np.all(np.isfinite(etas)) or np.any(etas <= 0):
        bad = int(np.argmax(~(np.isfinite(etas) & (etas > 0))))
        check_positive(float(etas[bad]), "eta")  # raises the scalar message
    losses = np.ascontiguousarray(losses, dtype=float)
    num_rows, n = losses.shape
    if n == 1:
        return np.ones((num_rows, 1))

    row_min = losses.min(axis=1)
    lo = row_min - 2.0 * np.sqrt(n) / etas
    hi = row_min - 2.0 / etas
    x = 0.5 * (lo + hi)
    active = np.ones(num_rows, dtype=bool)

    for _ in range(_MAX_ITER):
        rows = np.nonzero(active)[0]
        if rows.size == 0:
            break
        sub = losses[rows]
        sub_eta = etas[rows]
        gaps = sub - x[rows, None]  # >= 2/eta > 0 on [lo, hi]
        p = 4.0 / (sub_eta[:, None] * gaps) ** 2
        mass = p.sum(axis=1)
        derivative = (8.0 / sub_eta**2) * (gaps**-3).sum(axis=1)
        above = mass > 1.0
        hi[rows[above]] = x[rows[above]]
        lo[rows[~above]] = x[rows[~above]]
        converged = np.abs(mass - 1.0) <= _TOL
        stepping = ~converged
        step = (mass - 1.0) / derivative
        candidate = x[rows] - step
        inside = (lo[rows] < candidate) & (candidate < hi[rows])
        advanced = np.where(inside, candidate, 0.5 * (lo[rows] + hi[rows]))
        x[rows[stepping]] = advanced[stepping]
        collapsed = (hi[rows] - lo[rows]) <= _TOL * np.maximum(
            1.0, np.abs(hi[rows])
        )
        active[rows[converged | (stepping & collapsed)]] = False

    gaps = losses - x[:, None]
    p = 4.0 / (etas[:, None] * gaps) ** 2
    totals = p.sum(axis=1)
    if not np.all(np.isfinite(totals)) or np.any(totals <= 0):
        raise ArithmeticError("Tsallis OMD normalization failed")
    probabilities = p / totals[:, None]
    return _check_simplex_rows(probabilities, "tsallis_inf_probabilities_batch")
