"""The 1/2-Tsallis-entropy online-mirror-descent step.

Algorithm 1, line 3 computes

    p = argmin_{p in simplex}  <p, C_hat>  -  sum_n (4 sqrt(p_n) - 2 p_n) / eta.

First-order stationarity gives the closed form

    p_n(x) = 4 / (eta^2 (C_hat_n - x)^2),

where ``x`` (a shifted Lagrange multiplier) must satisfy
``x <= min_n C_hat_n - 2/eta`` so that every ``p_n <= 1``.  The map
``x -> sum_n p_n(x)`` is strictly increasing on that interval, equals at most
``N * small`` at the left end of our bracket and at least 1 at the right end,
so the normalization ``sum_n p_n(x) = 1`` has a unique root which we find by
a safeguarded Newton iteration (Newton steps with a bisection fallback —
the same derivative-based root polishing as Brent's method the paper cites).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_finite, check_positive, check_simplex

__all__ = ["tsallis_inf_probabilities"]

_MAX_ITER = 200
_TOL = 1e-12


def tsallis_inf_probabilities(cumulative_losses: np.ndarray, eta: float) -> np.ndarray:
    """Solve the Tsallis-entropy OMD step.

    Parameters
    ----------
    cumulative_losses:
        ``C_hat`` — cumulative importance-weighted loss estimates, one per arm.
    eta:
        Learning rate ``eta > 0``.

    Returns
    -------
    Probability vector over the arms; lower cumulative loss gets higher mass.
    """
    losses = check_finite(cumulative_losses, "cumulative_losses")
    if losses.ndim != 1 or losses.size == 0:
        raise ValueError(f"cumulative_losses must be a non-empty vector, got {losses.shape}")
    check_positive(eta, "eta")
    n = losses.size
    if n == 1:
        return np.ones(1)

    lo = float(losses.min()) - 2.0 * np.sqrt(n) / eta  # sum(p) <= 1 here
    hi = float(losses.min()) - 2.0 / eta  # sum(p) >= 1 here

    def mass_and_derivative(x: float) -> tuple[float, float]:
        gaps = losses - x  # >= 2/eta > 0 on [lo, hi]
        p = 4.0 / (eta * gaps) ** 2
        return float(p.sum()), float((8.0 / eta**2) * np.sum(gaps**-3))

    x = 0.5 * (lo + hi)
    for _ in range(_MAX_ITER):
        mass, derivative = mass_and_derivative(x)
        if mass > 1.0:
            hi = x
        else:
            lo = x
        if abs(mass - 1.0) <= _TOL:
            break
        step = (mass - 1.0) / derivative
        candidate = x - step
        # Newton step, safeguarded: fall back to bisection when the step
        # leaves the current bracket.
        x = candidate if lo < candidate < hi else 0.5 * (lo + hi)
        if hi - lo <= _TOL * max(1.0, abs(hi)):
            break

    gaps = losses - x
    p = 4.0 / (eta * gaps) ** 2
    total = p.sum()
    if not np.isfinite(total) or total <= 0:
        raise ArithmeticError("Tsallis OMD normalization failed")
    return check_simplex(p / total, "tsallis_inf_probabilities")
