"""Algorithm 2 — Online Carbon Trading via long-term-aware online learning.

The long-term neutrality constraint (3a) is absorbed into the objective via
Lagrange relaxation.  At each slot the primal decision solves the one-shot
problem (4),

    min_{Z >= 0}  grad f^{t-1}(Z^{t-1}) . (Z - Z^{t-1})
                  + lambda^t * g^{t-1}(Z)
                  + ||Z - Z^{t-1}||^2 / (2 gamma_2),

which, because ``f`` and ``g`` are affine in ``Z = (z, w)``, separates into
two scalar proximal steps with closed-form solutions:

    z^t = clip( z^{t-1} - gamma_2 (c^{t-1} - lambda^t), [0, bound] )
    w^t = clip( w^{t-1} - gamma_2 (lambda^t - r^{t-1}), [0, bound] )

followed by the dual ascent (5):

    lambda^{t+1} = [lambda^t + gamma_1 * g^t(Z^t)]^+ .

Only information up to (and excluding) the current slot is used — no future
prices or emissions — and Theorem 2 gives ``O(T^{2/3})`` regret and fit.

The "rectified" aspect of the primal step — penalizing the *actual*
constraint function ``g^{t-1}`` rather than its linearization — is preserved:
since ``g`` is affine in ``Z`` the two coincide in value, but the rectified
form keeps the constant term ``e^{t-1} - R/T`` in the Lagrangian that the
dual update sees, which is what couples the trade volume to realized
emissions.  An ablation with a "vanilla" update is provided for comparison
(``rectified=False`` drops the proximal coupling and resets the anchor to
zero each slot, the textbook online-gradient variant).
"""

from __future__ import annotations

import numpy as np

from repro.obs.events import DualUpdateEvent
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["OnlineCarbonTrading"]


class OnlineCarbonTrading(TradingPolicy):
    """The paper's Algorithm 2.

    Parameters
    ----------
    gamma1:
        Dual step size (lambda ascent).
    gamma2:
        Primal step size (proximal descent).
    rectified:
        Keep the paper's proximal anchoring around the previous decision.
        ``False`` switches to a memoryless online-gradient variant used only
        for the ablation benchmark.
    """

    name = "Ours"

    def __init__(
        self,
        gamma1: float = 0.2,
        gamma2: float = 4.0,
        rectified: bool = True,
    ) -> None:
        check_positive(gamma1, "gamma1")
        check_positive(gamma2, "gamma2")
        self.gamma1 = gamma1
        self.gamma2 = gamma2
        self.rectified = rectified
        self._lambda = 0.0
        self._prev_buy = 0.0
        self._prev_sell = 0.0
        self._lambda_history: list[float] = []

    @property
    def dual_variable(self) -> float:
        """Current Lagrange multiplier ``lambda^t``."""
        return self._lambda

    @property
    def lambda_history(self) -> list[float]:
        """Dual variable after each completed slot."""
        return list(self._lambda_history)

    def decide(self, context: TradingContext) -> TradeDecision:
        """Primal step (4): proximal descent on the relaxed one-shot problem."""
        bound = context.trade_bound
        if context.t == 0:
            # No slot (t-1) information exists yet; the initial decision is
            # the paper's Z^0 = 0.
            return TradeDecision(buy=0.0, sell=0.0)
        anchor_buy = self._prev_buy if self.rectified else 0.0
        anchor_sell = self._prev_sell if self.rectified else 0.0
        buy = self._clip(
            anchor_buy - self.gamma2 * (context.prev_buy_price - self._lambda), bound
        )
        sell = self._clip(
            anchor_sell - self.gamma2 * (self._lambda - context.prev_sell_price), bound
        )
        return TradeDecision(buy=buy, sell=sell)

    def observe(
        self, context: TradingContext, decision: TradeDecision, emissions: float
    ) -> None:
        """Dual step (5): ascend lambda along the realized constraint ``g^t``."""
        check_nonnegative(emissions, "emissions")
        g = emissions - context.cap_per_slot - decision.buy + decision.sell
        self._lambda = max(self._lambda + self.gamma1 * g, 0.0)
        self._prev_buy = decision.buy
        self._prev_sell = decision.sell
        self._lambda_history.append(self._lambda)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                DualUpdateEvent(t=context.t, dual=self._lambda, constraint=float(g))
            )

    def rescale_fleet(self, factor: float) -> None:
        """Scale the dual state for a fleet-size change at a reconfig barrier.

        The dual variable prices the per-slot constraint ``g^t``, whose
        emissions and cap terms both scale with the active fleet, as do
        the rectified trade anchors — so multiplying all three by the
        active-count ratio keeps the controller at the same *per-edge*
        operating point.  ``factor == 1.0`` never reaches here (the kernel
        short-circuits), so no-op plans stay bit-exact.
        """
        self._lambda *= factor
        self._prev_buy *= factor
        self._prev_sell *= factor

    @staticmethod
    def step_sizes_for_horizon(
        horizon: int, scale: float = 1.0
    ) -> tuple[float, float]:
        """Theorem-2 schedule ``gamma = O(T^{-1/3})``, anchored at T=160.

        Returns ``(gamma1, gamma2)`` scaled so the default horizon of 160
        slots reproduces the default constructor values.
        """
        check_positive(horizon, "horizon")
        check_positive(scale, "scale")
        anchor = (160.0 / horizon) ** (1.0 / 3.0)
        return 0.2 * scale * anchor, 4.0 * scale * anchor
