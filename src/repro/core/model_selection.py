"""Algorithm 1 — Online Model Selection via switching-aware bandit learning.

One instance controls one edge.  The time horizon is partitioned into blocks
of increasing length (:mod:`repro.core.blocks`); the model is sampled once
per block from the Tsallis-entropy OMD distribution over cumulative
importance-weighted loss estimates, and held fixed within the block.  This
bounds the number of model switches by the number of blocks ``K_i`` while
still balancing exploration and exploitation, giving the Theorem-1 regret
``O((u_i N)^{2/3} T^{1/3} + u_i^2 + ln T)`` *including* switching cost.

Bookkeeping is per block, so the policy also supports *delayed feedback*
(ground-truth labels arriving several slots after inference, paper Step
2.3): ``select`` may run ahead into newer blocks while earlier blocks'
losses are still outstanding; each block folds into the estimator the
moment its last slot loss arrives.  With zero delay this reduces exactly to
the paper's Algorithm 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import BlockSchedule, build_schedule
from repro.core.estimators import ImportanceWeightedEstimator
from repro.core.tsallis import tsallis_inf_probabilities
from repro.obs.events import BlockBoundaryEvent
from repro.policies.selection import SelectionPolicy
from repro.utils.validation import check_simplex

__all__ = ["OnlineModelSelection"]


@dataclass
class _BlockRecord:
    """State of one opened block awaiting (possibly delayed) observations."""

    model: int
    probabilities: np.ndarray
    length: int
    loss_sum: float = 0.0
    observed: int = 0
    lost: int = 0
    closed: bool = field(default=False)


class OnlineModelSelection(SelectionPolicy):
    """The paper's Algorithm 1 for a single edge.

    Parameters
    ----------
    num_models:
        Number of candidate models ``N``.
    horizon:
        Number of time slots ``T``.
    switch_cost:
        The edge's effective switching cost (``u_i`` scaled by the
        experiment's switching-cost weight); larger values yield longer
        blocks and therefore fewer switches.
    rng:
        Random stream used for the per-block model sampling.
    """

    name = "Ours"

    def __init__(
        self,
        num_models: int,
        horizon: int,
        switch_cost: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(num_models)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if switch_cost < 0:
            raise ValueError(f"switch_cost must be non-negative, got {switch_cost}")
        self.horizon = horizon
        self.switch_cost = switch_cost
        self._rng = rng
        self._schedule = build_schedule(horizon, switch_cost, num_models)
        self._estimator = ImportanceWeightedEstimator(num_models)
        self._blocks: dict[int, _BlockRecord] = {}
        self._latest_block = -1
        self._selection_counts = np.zeros(num_models, dtype=int)

    @property
    def schedule(self) -> BlockSchedule:
        """The Theorem-1 block schedule in force."""
        return self._schedule

    @property
    def selection_counts(self) -> np.ndarray:
        """Number of slots each model has been hosted so far (copy)."""
        return self._selection_counts.copy()

    @property
    def probability_history(self) -> list[np.ndarray]:
        """Sampling distribution used at the start of each opened block."""
        return [
            self._blocks[b].probabilities.copy() for b in sorted(self._blocks)
        ]

    @property
    def pending_blocks(self) -> int:
        """Opened blocks still waiting for (delayed) observations."""
        return sum(1 for record in self._blocks.values() if not record.closed)

    def select(self, t: int) -> int:
        """Return the model for slot ``t``, resampling only at block starts."""
        if not 0 <= t < self.horizon:
            raise ValueError(f"slot {t} outside horizon [0, {self.horizon})")
        block = self._schedule.block_of_slot(t)
        if block not in self._blocks:
            self._open_block(block, t)
        model = self._blocks[block].model
        self._selection_counts[model] += 1
        return model

    def pending_block(self, t: int) -> int | None:
        """The block ``select(t)`` would have to open, or ``None``.

        Batch drivers (the vectorized simulator) use this to collect the
        edges whose block boundaries coincide at slot ``t`` so a single
        :func:`~repro.core.tsallis.tsallis_inf_probabilities_batch` call can
        solve all of their OMD steps at once.
        """
        if not 0 <= t < self.horizon:
            raise ValueError(f"slot {t} outside horizon [0, {self.horizon})")
        block = self._schedule.block_of_slot(t)
        return None if block in self._blocks else block

    def cumulative_estimates(self) -> np.ndarray:
        """Read-only view of the current ``C_hat`` vector (no copy).

        This is the exact array the next :meth:`select` would feed to the
        Tsallis solve; batch drivers stack one row per edge from it.
        """
        return self._estimator.cumulative_view()

    def block_eta(self, block: int) -> float:
        """The learning rate the schedule assigns to ``block``."""
        return float(self._schedule.etas[block])

    def open_block_with(
        self, block: int, t: int, probabilities: np.ndarray, *, validated: bool = False
    ) -> int:
        """Lines 4-5 given a precomputed OMD distribution (batch opens).

        The distribution must be exactly what the scalar solve would have
        produced (the batched solver guarantees this bitwise); sampling the
        block model still happens here, on this edge's own RNG stream, so
        per-stream draw order is untouched.  Pass ``validated=True`` when
        the caller already ran the simplex postcondition on ``probabilities``
        (both Tsallis solvers do) — the check never alters values, so
        skipping the re-check is behavior-neutral.  Returns the sampled
        block model.
        """
        if block != self._latest_block + 1:
            raise RuntimeError(
                f"slots must be visited in order: at block {block}, "
                f"expected {self._latest_block + 1}"
            )
        if not validated:
            probabilities = check_simplex(
                probabilities, f"block {block} sampling distribution"
            )
        model = int(self._rng.choice(self.num_models, p=probabilities))
        length = int(self._schedule.lengths[block])
        self._blocks[block] = _BlockRecord(
            model=model,
            probabilities=probabilities,
            length=length,
        )
        self._latest_block = block
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                BlockBoundaryEvent(
                    t=t,
                    edge=self.trace_edge,
                    block=block,
                    length=length,
                    eta=self.block_eta(block),
                    model=model,
                )
            )
        return model

    def observe_block(self, block: int, slot_losses: list[float]) -> None:
        """Fold one whole block's slot losses in a single call (line 7, bulk).

        Bitwise-identical to calling :meth:`observe` once per slot in slot
        order on a freshly opened block: the loss sum accumulates left to
        right as Python floats, and the block closes (folding into the
        estimator) exactly when the last slot's loss lands.  Because this
        replaces the per-slot ``select`` calls too, it also accounts the
        block's slots in :attr:`selection_counts`.  Batch drivers pair it
        with :meth:`open_block_with`; a block that already received partial
        per-slot feedback must finish through :meth:`observe`.
        """
        record = self._blocks.get(block)
        if record is None:
            raise RuntimeError(f"observed block {block} before it was opened")
        if record.closed or record.observed or record.lost:
            raise RuntimeError(
                f"block {block} already has slot feedback; finish it through "
                "observe()"
            )
        if len(slot_losses) != record.length:
            raise ValueError(
                f"block {block} spans {record.length} slots, got "
                f"{len(slot_losses)} losses"
            )
        total = record.loss_sum
        for loss in slot_losses:
            if not math.isfinite(loss):
                raise ValueError(f"loss must be finite, got {loss!r}")
            total += float(loss)
        record.loss_sum = total
        record.observed = record.length
        self._selection_counts[record.model] += record.length
        self._close_block(record)

    def observe(self, t: int, model: int, loss: float) -> None:
        """Accumulate a (possibly delayed) slot loss into its block (line 7)."""
        self._check_model(model)
        if not math.isfinite(loss):
            raise ValueError(f"loss must be finite, got {loss!r}")
        block = self._schedule.block_of_slot(t)
        record = self._blocks.get(block)
        if record is None:
            raise RuntimeError(f"observed slot {t} before its block was opened")
        if model != record.model:
            raise ValueError(
                f"observed loss for model {model}, but block {block} hosts "
                f"model {record.model}"
            )
        if record.closed:
            raise RuntimeError(f"block {block} already received all its losses")
        record.loss_sum += float(loss)
        record.observed += 1
        if record.observed + record.lost == record.length:
            self._close_block(record)

    def observe_lost(self, t: int, model: int) -> None:
        """Account a slot whose feedback was dropped (fault injection).

        The block's schedule position is consumed (the slot happened), but
        its loss never folds into the estimator — the block closes once
        every slot is either observed or lost, and an entirely-lost block
        leaves the cumulative estimates untouched, keeping the
        importance-weighted estimator unbiased over observed slots.
        """
        super().observe_lost(t, model)
        block = self._schedule.block_of_slot(t)
        record = self._blocks.get(block)
        if record is None:
            raise RuntimeError(f"lost slot {t} before its block was opened")
        if model != record.model:
            raise ValueError(
                f"lost feedback for model {model}, but block {block} hosts "
                f"model {record.model}"
            )
        if record.closed:
            raise RuntimeError(f"block {block} already received all its losses")
        record.lost += 1
        if record.observed + record.lost == record.length:
            self._close_block(record)

    def _open_block(self, block: int, t: int) -> None:
        """Lines 3-5: compute the OMD distribution and sample the block model.

        Under delayed feedback the cumulative estimates may still miss
        outstanding blocks — the distribution is simply computed from what
        has arrived, the standard delayed-bandit semantics.
        """
        probabilities = tsallis_inf_probabilities(
            self._estimator.cumulative, self.block_eta(block)
        )
        self.open_block_with(block, t, probabilities)

    def _close_block(self, record: _BlockRecord) -> None:
        """Lines 8-9: fold the complete block loss into the estimator.

        A block whose every slot lost its feedback folds nothing — the OMD
        distribution for later blocks is computed from observed blocks only.
        """
        if record.observed > 0:
            # The block's distribution is our own Tsallis solve, already past
            # its simplex postcondition — skip the defensive re-validation.
            self._estimator.update(
                record.model, record.loss_sum, record.probabilities, trusted=True
            )
        record.closed = True
