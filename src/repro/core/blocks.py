"""Block schedules and learning rates for Algorithm 1 (Theorem 1).

Theorem 1 prescribes, for edge ``i`` with download delay ``u_i`` and ``N``
models:

* block parameter   ``d_{i,k} = (3 u_i / 2) * sqrt(k / N)``,
* block length      ``|B_{i,k}| = max(ceil(d_{i,k}), 1)``,
* learning rate     ``eta_{i,k} = (2 / (d_{i,k} + 1)) * sqrt(2 / k)``.

``K_i`` is the smallest block count whose lengths sum to at least ``T``; the
last block is truncated so the lengths sum to ``T`` exactly.  Because block
lengths grow like ``sqrt(k)``, the number of model switches is bounded by
``K_i = O(N^{1/3} (T / u_i)^{2/3})``, which is what keeps the switching cost
inside the sub-linear regret bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["block_parameter", "learning_rate", "BlockSchedule", "build_schedule"]


def block_parameter(k: int, switch_cost: float, num_models: int) -> float:
    """The paper's ``d_{i,k} = (3 u_i / 2) sqrt(k / N)`` for block ``k >= 1``."""
    if k < 1:
        raise ValueError(f"block index must be >= 1, got {k}")
    check_positive(num_models, "num_models")
    if switch_cost < 0:
        raise ValueError(f"switch_cost must be non-negative, got {switch_cost}")
    return 1.5 * switch_cost * math.sqrt(k / num_models)


def learning_rate(k: int, switch_cost: float, num_models: int) -> float:
    """The paper's ``eta_{i,k} = 2/(d_{i,k}+1) * sqrt(2/k)``."""
    d = block_parameter(k, switch_cost, num_models)
    return (2.0 / (d + 1.0)) * math.sqrt(2.0 / k)


@dataclass(frozen=True)
class BlockSchedule:
    """A concrete partition of ``{0, ..., T-1}`` into blocks.

    ``lengths[k]`` is the number of slots in block ``k`` (0-indexed here,
    1-indexed in the paper); ``etas[k]`` is its learning rate; ``starts[k]``
    its first slot.
    """

    horizon: int
    lengths: np.ndarray
    etas: np.ndarray

    def __post_init__(self) -> None:
        if self.lengths.ndim != 1 or self.etas.shape != self.lengths.shape:
            raise ValueError("lengths and etas must be aligned 1-D arrays")
        if self.lengths.size == 0:
            raise ValueError("schedule must contain at least one block")
        if int(self.lengths.sum()) != self.horizon:
            raise ValueError(
                f"block lengths sum to {int(self.lengths.sum())}, expected {self.horizon}"
            )
        if np.any(self.lengths < 1):
            raise ValueError("every block must contain at least one slot")
        if np.any(self.etas <= 0):
            raise ValueError("learning rates must be positive")

    @property
    def num_blocks(self) -> int:
        """``K_i`` — the number of blocks covering the horizon."""
        return int(self.lengths.size)

    @property
    def starts(self) -> np.ndarray:
        """First slot of each block."""
        return np.concatenate(([0], np.cumsum(self.lengths)[:-1])).astype(int)

    def _slot_table(self) -> np.ndarray:
        """Memoized slot -> block lookup table.

        Computed lazily (not in ``__post_init__``) so schedules restored
        from older pickles — serve snapshots carry policies, which carry
        schedules — rebuild it transparently on first use.
        """
        table = self.__dict__.get("_slot_to_block")
        if table is None:
            table = np.repeat(np.arange(self.lengths.size), self.lengths)
            object.__setattr__(self, "_slot_to_block", table)
        return table

    def block_of_slot(self, t: int) -> int:
        """Index of the block containing slot ``t``."""
        if not 0 <= t < self.horizon:
            raise ValueError(f"slot {t} outside [0, {self.horizon})")
        return int(self._slot_table()[t])

    def is_block_start(self, t: int) -> bool:
        """Whether slot ``t`` opens a new block (a model may switch here)."""
        block = self.block_of_slot(t)
        return int(self.starts[block]) == t


def build_schedule(
    horizon: int, switch_cost: float, num_models: int
) -> BlockSchedule:
    """Construct the Theorem-1 schedule for one edge.

    The learning rates are non-increasing in ``k`` (required by Algorithm 1's
    input condition) because ``d_{i,k}`` grows with ``k``.
    """
    check_positive(horizon, "horizon")
    lengths: list[int] = []
    etas: list[float] = []
    covered = 0
    k = 1
    while covered < horizon:
        d = block_parameter(k, switch_cost, num_models)
        length = max(math.ceil(d), 1)
        length = min(length, horizon - covered)  # truncate the final block
        lengths.append(length)
        etas.append(learning_rate(k, switch_cost, num_models))
        covered += length
        k += 1
    return BlockSchedule(
        horizon=horizon,
        lengths=np.asarray(lengths, dtype=int),
        etas=np.asarray(etas, dtype=float),
    )
