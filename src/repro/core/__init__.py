"""The paper's primary contribution.

* :mod:`repro.core.tsallis` — the 1/2-Tsallis-entropy online-mirror-descent
  step (Algorithm 1, line 3) solved by a safeguarded Newton method.
* :mod:`repro.core.blocks` — block schedules and learning rates of Theorem 1.
* :mod:`repro.core.estimators` — importance-weighted loss estimation.
* :mod:`repro.core.model_selection` — Algorithm 1, the switching-aware
  bandit-learning model-selection policy.
* :mod:`repro.core.carbon_trading` — Algorithm 2, the long-term-aware online
  primal-dual carbon trading policy.
"""

from repro.core.tsallis import tsallis_inf_probabilities
from repro.core.blocks import BlockSchedule, block_parameter, build_schedule, learning_rate
from repro.core.estimators import ImportanceWeightedEstimator
from repro.core.model_selection import OnlineModelSelection
from repro.core.carbon_trading import OnlineCarbonTrading

__all__ = [
    "tsallis_inf_probabilities",
    "BlockSchedule",
    "block_parameter",
    "build_schedule",
    "learning_rate",
    "ImportanceWeightedEstimator",
    "OnlineModelSelection",
    "OnlineCarbonTrading",
]
