"""Importance-weighted loss estimation (Algorithm 1, lines 7-9).

In the bandit setting only the chosen arm's loss is observed.  The estimator

    c_hat_{k,n} = 1{J_k = n} * c_{k,n} / p_{k,n}

is unbiased for the full loss vector under the sampling distribution ``p_k``
(shown inline in the paper), and its cumulative sums drive the next
Tsallis-OMD step.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability_vector

__all__ = ["ImportanceWeightedEstimator"]


class ImportanceWeightedEstimator:
    """Accumulates unbiased cumulative loss estimates ``C_hat`` per arm."""

    def __init__(self, num_arms: int) -> None:
        if num_arms <= 0:
            raise ValueError(f"num_arms must be positive, got {num_arms}")
        self.num_arms = num_arms
        self._cumulative = np.zeros(num_arms)
        self._observations = 0

    @property
    def cumulative(self) -> np.ndarray:
        """Current ``C_hat`` vector (copy)."""
        return self._cumulative.copy()

    def cumulative_view(self) -> np.ndarray:
        """Current ``C_hat`` vector as a read-only view (no copy).

        Batch drivers stack one row per arm-set into the ``(B, N)`` input of
        :func:`~repro.core.tsallis.tsallis_inf_probabilities_batch`; the
        write lock keeps the zero-copy hand-off safe.
        """
        view = self._cumulative.view()
        view.flags.writeable = False
        return view

    @property
    def observations(self) -> int:
        """Number of block observations folded in so far."""
        return self._observations

    def update(
        self,
        chosen_arm: int,
        observed_loss: float,
        probabilities: np.ndarray,
        *,
        trusted: bool = False,
    ) -> np.ndarray:
        """Fold in one block's observation; return that block's ``c_hat``.

        Parameters
        ----------
        chosen_arm:
            The arm ``J_k`` sampled for the block.
        observed_loss:
            The realized cumulative block loss ``c_{k, J_k}``.
        probabilities:
            The sampling distribution ``p_k`` used to draw ``J_k``.
        trusted:
            Skip the defensive validation of ``probabilities`` while keeping
            its sanitizing arithmetic bit-for-bit (clip at zero, renormalize
            by the sum).  For distributions we computed ourselves — Tsallis
            solver outputs already past their simplex postcondition — the
            checks can never fire, and this path drops them from the block
            -close hot loop without moving a digest.
        """
        if not 0 <= chosen_arm < self.num_arms:
            raise ValueError(f"arm {chosen_arm} outside [0, {self.num_arms})")
        if not np.isfinite(observed_loss):
            raise ValueError(f"observed loss must be finite, got {observed_loss!r}")
        if trusted:
            arr = np.asarray(probabilities, dtype=float)
            # Exactly check_probability_vector's output arithmetic.
            p = np.maximum(arr, 0.0) / max(float(arr.sum()), 1e-300)
        else:
            p = check_probability_vector(probabilities, "probabilities")
        if p.size != self.num_arms:
            raise ValueError("probability vector length must equal num_arms")
        if p[chosen_arm] <= 0:
            raise ValueError(
                f"chosen arm {chosen_arm} has zero sampling probability; "
                "importance weighting undefined"
            )
        estimate = np.zeros(self.num_arms)
        estimate[chosen_arm] = observed_loss / p[chosen_arm]
        self._cumulative += estimate
        self._observations += 1
        return estimate
