"""Random model selection: a fresh uniform draw every slot."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy

__all__ = ["RandomSelection"]


class RandomSelection(SelectionPolicy):
    """Uniformly random model each slot (paper baseline "Random").

    Ignores all feedback; switches models ``(N-1)/N`` of the time in
    expectation, making it a worst case for switching cost.
    """

    name = "Ran"

    def __init__(self, num_models: int, rng: np.random.Generator) -> None:
        super().__init__(num_models)
        self._rng = rng

    def select(self, t: int) -> int:
        return int(self._rng.integers(0, self.num_models))

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
