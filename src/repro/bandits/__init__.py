"""Baseline model-selection policies (paper Section V-A plus extras).

The paper compares against Random, Greedy (lowest energy), Tsallis-INF
(no switching-cost awareness) and UCB2 (switching-bounded).  We additionally
ship epsilon-greedy, UCB1 and EXP3 for ablation studies.
"""

from repro.bandits.random_policy import RandomSelection
from repro.bandits.greedy import GreedySelection
from repro.bandits.epsilon_greedy import EpsilonGreedySelection
from repro.bandits.ucb1 import UCB1Selection
from repro.bandits.ucb2 import UCB2Selection
from repro.bandits.exp3 import Exp3Selection
from repro.bandits.tsallis_inf import TsallisInfSelection

__all__ = [
    "RandomSelection",
    "GreedySelection",
    "EpsilonGreedySelection",
    "UCB1Selection",
    "UCB2Selection",
    "Exp3Selection",
    "TsallisInfSelection",
]
