"""EXP3 adversarial bandit baseline (extra, for ablations)."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.utils.mathutils import normalize
from repro.utils.validation import check_positive

__all__ = ["Exp3Selection"]


class Exp3Selection(SelectionPolicy):
    """EXP3 with importance-weighted loss updates.

    Uses the anytime learning rate ``eta_t = sqrt(ln N / (N t))`` and
    rescales losses by ``loss_range`` into [0, 1].
    """

    name = "EXP3"

    def __init__(
        self, num_models: int, rng: np.random.Generator, loss_range: float = 2.5
    ) -> None:
        super().__init__(num_models)
        self._rng = rng
        self.loss_range = check_positive(loss_range, "loss_range")
        self._cumulative = np.zeros(num_models)
        self._t = 0
        self._last_probabilities = np.full(num_models, 1.0 / num_models)

    def _probabilities(self) -> np.ndarray:
        eta = np.sqrt(np.log(self.num_models) / (self.num_models * max(self._t, 1)))
        logits = -eta * (self._cumulative - self._cumulative.min())
        # logits <= 0 by the min-shift; the clip floor only rounds weights
        # below ~1e-304 to exp(-700) and keeps the exponent overflow-safe.
        return normalize(np.exp(np.clip(logits, -700.0, 0.0)))

    def select(self, t: int) -> int:
        self._t += 1
        self._last_probabilities = self._probabilities()
        return int(self._rng.choice(self.num_models, p=self._last_probabilities))

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
        scaled = loss / self.loss_range
        p = self._last_probabilities[model]
        if p <= 0:
            raise RuntimeError("observed an arm with zero sampling probability")
        self._cumulative[model] += scaled / p
