"""Greedy model selection: always the lowest-energy model."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.utils.validation import check_finite

__all__ = ["GreedySelection"]


class GreedySelection(SelectionPolicy):
    """Always hosts the model with minimum inference energy (paper "Greedy").

    Never explores, so it incurs at most one switch (the initial download)
    but is blind to inference quality — its accuracy is whatever the most
    frugal model delivers.
    """

    name = "Greedy"

    def __init__(self, num_models: int, energies: np.ndarray) -> None:
        super().__init__(num_models)
        energy = check_finite(energies, "energies")
        if energy.size != num_models:
            raise ValueError("energies length must equal num_models")
        self._choice = int(np.argmin(energy))

    @property
    def choice(self) -> int:
        """The fixed lowest-energy model index."""
        return self._choice

    def select(self, t: int) -> int:
        return self._choice

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
