"""UCB1 bandit baseline (Auer, Cesa-Bianchi & Fischer, 2002)."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.utils.validation import check_positive

__all__ = ["UCB1Selection"]


class UCB1Selection(SelectionPolicy):
    """Classic UCB1 adapted to losses (lower confidence bound on loss).

    ``loss_range`` rescales observed losses into [0, 1] so the confidence
    radius is correctly calibrated (our slot losses live in roughly
    [0, 2 + v_max]).
    """

    name = "UCB1"

    def __init__(self, num_models: int, loss_range: float = 2.5) -> None:
        super().__init__(num_models)
        self.loss_range = check_positive(loss_range, "loss_range")
        self._sums = np.zeros(num_models)
        self._counts = np.zeros(num_models, dtype=int)
        self._total = 0

    def select(self, t: int) -> int:
        untried = np.nonzero(self._counts == 0)[0]
        if untried.size > 0:
            return int(untried[0])
        means = self._sums / (self._counts * self.loss_range)
        radius = np.sqrt(2.0 * np.log(max(self._total, 2)) / self._counts)
        return int(np.argmin(means - radius))

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
        self._sums[model] += loss
        self._counts[model] += 1
        self._total += 1
