"""UCB2 bandit baseline (Auer, Cesa-Bianchi & Fischer, 2002).

UCB2 plays arms in geometrically growing *epochs*: once an arm is chosen it
is played ``tau(r+1) - tau(r)`` consecutive slots, where
``tau(r) = ceil((1 + alpha)^r)`` and ``r`` counts the epochs of that arm.
This bounds the number of arm switches by ``O(log T)`` per arm, which is why
the paper uses it as the switching-aware state-of-the-art baseline ("UCB").
"""

from __future__ import annotations

import math

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.utils.validation import check_in_range, check_positive

__all__ = ["UCB2Selection"]


class UCB2Selection(SelectionPolicy):
    """UCB2 adapted to losses.

    Parameters
    ----------
    alpha:
        Epoch-growth parameter in (0, 1); smaller means longer epochs later.
    loss_range:
        Rescales losses into [0, 1] for the confidence radius.
    """

    name = "UCB"

    def __init__(
        self, num_models: int, alpha: float = 0.5, loss_range: float = 2.5
    ) -> None:
        super().__init__(num_models)
        check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self.alpha = alpha
        self.loss_range = check_positive(loss_range, "loss_range")
        self._sums = np.zeros(num_models)
        self._counts = np.zeros(num_models, dtype=int)
        self._epochs = np.zeros(num_models, dtype=int)  # r_j
        self._total = 0
        self._current_arm = -1
        self._remaining_plays = 0

    def _tau(self, r: int) -> int:
        return int(math.ceil((1.0 + self.alpha) ** r))

    def _bonus(self, arm: int) -> float:
        tau_r = self._tau(self._epochs[arm])
        n = max(self._total, 1)
        inner = max(math.e * n / tau_r, math.e)
        return math.sqrt((1.0 + self.alpha) * math.log(inner) / (2.0 * tau_r))

    def select(self, t: int) -> int:
        if self._remaining_plays > 0:
            self._remaining_plays -= 1
            return self._current_arm
        untried = np.nonzero(self._counts == 0)[0]
        if untried.size > 0:
            arm = int(untried[0])
        else:
            means = self._sums / (self._counts * self.loss_range)
            indices = np.array(
                [means[a] - self._bonus(a) for a in range(self.num_models)]
            )
            arm = int(np.argmin(indices))
        # Open an epoch for the chosen arm: play tau(r+1) - tau(r) slots.
        r = self._epochs[arm]
        plays = max(self._tau(r + 1) - self._tau(r), 1)
        self._epochs[arm] = r + 1
        self._current_arm = arm
        self._remaining_plays = plays - 1
        return arm

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
        self._sums[model] += loss
        self._counts[model] += 1
        self._total += 1
