"""Epsilon-greedy bandit baseline (extra, for ablations)."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.utils.validation import check_in_range

__all__ = ["EpsilonGreedySelection"]


class EpsilonGreedySelection(SelectionPolicy):
    """Explores uniformly with probability ``epsilon``, else exploits.

    With ``decay=True`` the exploration rate anneals as ``epsilon / sqrt(t)``,
    the standard schedule that makes epsilon-greedy no-regret in stochastic
    environments.
    """

    name = "EG"

    def __init__(
        self,
        num_models: int,
        rng: np.random.Generator,
        epsilon: float = 0.1,
        decay: bool = True,
    ) -> None:
        super().__init__(num_models)
        check_in_range(epsilon, "epsilon", 0.0, 1.0)
        self._rng = rng
        self.epsilon = epsilon
        self.decay = decay
        self._sums = np.zeros(num_models)
        self._counts = np.zeros(num_models, dtype=int)

    def _exploration_rate(self, t: int) -> float:
        if not self.decay:
            return self.epsilon
        return min(1.0, self.epsilon * np.sqrt(1.0 / max(t, 1)) * np.sqrt(self.num_models))

    def select(self, t: int) -> int:
        untried = np.nonzero(self._counts == 0)[0]
        if untried.size > 0:
            return int(untried[0])
        if self._rng.random() < self._exploration_rate(t):
            return int(self._rng.integers(0, self.num_models))
        means = self._sums / self._counts
        return int(np.argmin(means))

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)
        self._sums[model] += loss
        self._counts[model] += 1
