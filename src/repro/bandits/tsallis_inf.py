"""Slot-level Tsallis-INF baseline (Zimmert & Seldin, 2021).

The paper's "TINF" baseline: the optimal stochastic-and-adversarial bandit
algorithm, *without* switching-cost awareness — it may resample the model
every slot.  Implemented as Algorithm 1 with switching cost zero, which
degenerates every block to a single slot (``d_{i,k} = 0`` so
``|B_{i,k}| = 1`` and ``eta_k = 2 sqrt(2/k)``), exactly the per-round
Tsallis-INF update.
"""

from __future__ import annotations

import numpy as np

from repro.core.model_selection import OnlineModelSelection

__all__ = ["TsallisInfSelection"]


class TsallisInfSelection(OnlineModelSelection):
    """Per-slot Tsallis-INF (no blocks, unbounded switching)."""

    name = "TINF"

    def __init__(self, num_models: int, horizon: int, rng: np.random.Generator) -> None:
        super().__init__(
            num_models=num_models, horizon=horizon, switch_cost=0.0, rng=rng
        )
