"""CLI for the soak harness (mounted as ``repro soak``).

Thin argparse surface over :func:`repro.serve.soak.run_soak`; also
runnable standalone as ``python -m repro.serve.cli``.  All printing of
the serve package lives here — the library modules stay silent.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.config import WORKER_DEATH_POLICIES
from repro.serve.load import SHAPE_NAMES
from repro.serve.soak import SOAK_FORMAT_VERSION, run_soak

__all__ = ["add_arguments", "main", "run"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the soak options to ``parser`` (shared with ``repro soak``)."""
    parser.add_argument(
        "--shape",
        choices=SHAPE_NAMES + ("all",),
        default="all",
        help="load shape to soak (default: all four)",
    )
    parser.add_argument(
        "--edges", type=int, default=64, help="fleet size (default: 64)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker processes (default: 4)"
    )
    parser.add_argument(
        "--horizon", type=int, default=96, help="slots to serve (default: 96)"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=20000,
        help="total events across the grid (default: 20000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--slot-duration",
        type=float,
        default=0.0,
        help="wall seconds per slot; 0 free-runs (default: 0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 4 edges x 2 workers x 48 slots x 2000 events",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN.json",
        help=(
            "inject a deterministic chaos plan (worker kills, stalls, "
            "transport drops); flips the death policy to 'restart'"
        ),
    )
    parser.add_argument(
        "--reconfig",
        default=None,
        metavar="PLAN.json",
        help="apply a live reconfiguration plan at its slot barriers",
    )
    parser.add_argument(
        "--on-worker-death",
        choices=WORKER_DEATH_POLICIES,
        default=None,
        help=(
            "override the worker-death policy (default: 'restart' under "
            "--chaos, else 'fail')"
        ),
    )
    parser.add_argument(
        "--recovery-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "gate: fail the soak when the p99 death-to-serving recovery "
            "latency exceeds this bound"
        ),
    )
    parser.add_argument(
        "--ingress",
        nargs="?",
        const="default",
        default=None,
        metavar="CONFIG.json",
        help=(
            "mount the request-level ingress tier; with no argument uses "
            "the default SLA classes and deferral policy, else loads an "
            "IngressConfig JSON file"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the soak report JSON here (default: stdout)",
    )
    parser.add_argument(
        "--bench-output",
        default=None,
        metavar="DIR",
        help="also write BENCH_soak_<shape>.json files for repro bench --check",
    )


def run(args: argparse.Namespace) -> int:
    """Execute the soak; returns a process exit code (1 = a gate failed)."""
    from repro.serve.chaos import load_chaos_plan
    from repro.serve.reconfig import load_reconfig_plan

    edges, workers = args.edges, args.workers
    horizon, events = args.horizon, args.events
    if args.smoke:
        edges, workers, horizon, events = 4, 2, 48, 2000
    chaos = load_chaos_plan(args.chaos) if args.chaos else None
    reconfig = load_reconfig_plan(args.reconfig) if args.reconfig else None
    ingress = None
    if args.ingress is not None:
        from repro.ingress.config import IngressConfig

        ingress = (
            IngressConfig()
            if args.ingress == "default"
            else IngressConfig.from_file(args.ingress)
        )
    shapes = SHAPE_NAMES if args.shape == "all" else (args.shape,)
    reports = []
    for shape in shapes:
        report = run_soak(
            shape,
            num_edges=edges,
            num_workers=workers,
            horizon=horizon,
            total_events=events,
            seed=args.seed,
            slot_duration=args.slot_duration,
            chaos=chaos,
            reconfig=reconfig,
            on_worker_death=args.on_worker_death,
            ingress=ingress,
        )
        reports.append(report)
        slot = report.stages["slot"]
        print(
            f"soak {shape:>9}: {report.events_in} in = "
            f"{report.events_served} served + {report.events_shed} shed + "
            f"{report.events_dropped_offline} offline "
            f"[{'OK' if report.accounting_ok else 'BROKEN'}] "
            f"{report.throughput_eps:,.0f} ev/s "
            f"slot p50/p95/p99 = {slot['p50_s'] * 1e3:.1f}/"
            f"{slot['p95_s'] * 1e3:.1f}/{slot['p99_s'] * 1e3:.1f} ms",
            file=sys.stderr,
        )
        if report.ingress is not None:
            ing = report.ingress
            classes = " ".join(
                f"{name}={row['hit_rate']:.3f}"
                if row["hit_rate"] is not None
                else f"{name}=n/a"
                for name, row in ing["per_class"].items()
            )
            deferral = report.stages.get("deferral")
            wait = (
                f"defer p99 = {deferral['p99_s']:.1f} slots"
                if deferral and deferral["count"]
                else "no deferrals"
            )
            print(
                f"soak {shape:>9}: {ing['requests_in']} requests, "
                f"{ing['requests_dropped']} dropped, "
                f"{ing['requests_deferred']} deferred; "
                f"deadline hit {classes} {wait}",
                file=sys.stderr,
            )
        if report.worker_deaths or report.restarts or report.reconfigs:
            recovery = report.stages.get("recovery")
            healed = (
                f"recovery p99 = {recovery['p99_s'] * 1e3:.1f} ms"
                if recovery and recovery["count"]
                else "no recovery samples"
            )
            print(
                f"soak {shape:>9}: {report.worker_deaths} deaths, "
                f"{report.restarts} restarts, {report.reconfigs} reconfigs, "
                f"{report.degraded_workers} degraded "
                f"[{'HEALED' if report.recovery_ok else 'DEGRADED'}] "
                f"{healed}",
                file=sys.stderr,
            )
    payload = {
        "format_version": SOAK_FORMAT_VERSION,
        "reports": [report.to_dict() for report in reports],
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    if args.bench_output:
        for report in reports:
            bench = report.to_bench_report()
            path = f"{args.bench_output.rstrip('/')}/BENCH_{bench.suite}.json"
            bench.write(path)
            print(f"wrote {path}", file=sys.stderr)
    if not all(report.accounting_ok for report in reports):
        print("soak FAILED: accounting equation violated", file=sys.stderr)
        return 1
    if args.chaos and not all(report.recovery_ok for report in reports):
        print(
            "soak FAILED: a chaos-killed worker was not healed",
            file=sys.stderr,
        )
        return 1
    if args.recovery_p99 is not None:
        for report in reports:
            recovery = report.stages.get("recovery")
            if not recovery or not recovery["count"]:
                continue
            if recovery["p99_s"] > args.recovery_p99:
                print(
                    f"soak FAILED: {report.shape} recovery p99 "
                    f"{recovery['p99_s']:.3f}s exceeds the "
                    f"{args.recovery_p99:.3f}s bound",
                    file=sys.stderr,
                )
                return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point mirroring ``repro soak``."""
    parser = argparse.ArgumentParser(
        prog="repro-soak", description="Soak the sharded edge tier."
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())