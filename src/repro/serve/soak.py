"""Wall-clock soak harness for the sharded edge tier.

``repro soak`` drives :class:`~repro.serve.shard.ShardRuntime` under the
deterministic load shapes of :mod:`repro.serve.load` and reports, per
shape:

* per-stage latency quantiles (p50/p95/p99) from a streaming P² sketch —
  ``queue`` (enqueue to dequeue inside a worker), ``serve`` (kernel step),
  ``trade`` (parent fold + allowance-trading step), and ``slot``
  (release to fold, end-to-end);
* throughput (served events per wall second);
* the accounting equation ``in == served + shed + offline``, checked
  *exactly* — a soak that leaks or double-counts events fails its run;
* under ``--chaos`` (a :class:`~repro.serve.chaos.ChaosPlan`), the
  self-healing gate: injected worker kills must be healed by supervised
  restarts (``on_worker_death`` defaults to ``"restart"`` when chaos is
  given), every arrival must still be accounted for, and the
  death-to-serving recovery latency is tracked as its own ``recovery``
  stage (p50/p95/p99 in the report);
* under ``--ingress`` (an :class:`~repro.ingress.IngressConfig`), the
  request-level accounting gate ``requests_in == served + shed + offline
  + dropped``, per-class deadline-hit rates, and deferral-latency
  quantiles as the ``deferral`` stage.  Unlike every other stage, the
  ``deferral`` sketch observes waits in units of *slots* (its ``_s`` keys
  read as slots): deferral is a scheduling decision on the slot grid, not
  a wall-clock measurement.

Reports are schema-versioned JSON (``SOAK_FORMAT_VERSION``) and project
onto :class:`~repro.bench.report.BenchReport` via
:meth:`SoakReport.to_bench_report`, so soak baselines ride the same
``repro bench --check`` comparison gate as the microbenchmarks.

The latency sketch is the P² algorithm (Jain & Chlamtac 1985): five
markers per tracked quantile, O(1) memory and update time, no sample
buffer — suitable for soaks of unbounded length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bench.report import BenchReport, BenchResult, machine_fingerprint
from repro.obs.tracer import Tracer
from repro.serve.chaos import ChaosPlan
from repro.serve.config import ServeConfig
from repro.serve.load import SHAPE_NAMES
from repro.serve.reconfig import ReconfigPlan
from repro.serve.shard import ShardRuntime
from repro.sim.config import ScenarioConfig

if TYPE_CHECKING:  # import cycle: repro.ingress imports repro.serve
    from repro.ingress.config import IngressConfig

__all__ = [
    "DEFERRAL_STAGE",
    "SOAK_FORMAT_VERSION",
    "P2Quantile",
    "SoakReport",
    "StageStats",
    "run_soak",
    "run_soak_suite",
]

#: Format tag written into serialized soak reports; bump on breaking changes.
#: v2 added the self-healing fields (worker_deaths/restarts/reconfigs/
#: degraded_workers/recovery_ok) and the ``recovery`` latency stage.
#: v3 added the ``ingress`` request-accounting summary and the ``deferral``
#: wait stage (units: slots, not seconds).
SOAK_FORMAT_VERSION = 3

#: Latency stages a soak run always tracks, in pipeline order.
STAGES = ("queue", "serve", "trade", "slot")

#: Extra stage tracked under a restart policy: worker death to its first
#: live outcome after a supervised respawn.
RECOVERY_STAGE = "recovery"

#: Extra stage tracked under ingress: slots a released request waited past
#: its arrival slot.  The only stage whose unit is slots, not seconds.
DEFERRAL_STAGE = "deferral"

#: Quantiles every stage sketch tracks.
QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Five markers track the running minimum, maximum, the target quantile,
    and its two flanking mid-quantiles; marker heights move by parabolic
    (falling back to linear) interpolation as observations arrive.  Exact
    while fewer than five observations have been seen.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def add(self, x: float) -> None:
        """Fold one observation into the sketch."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(float(x))
            if self.count == 5:
                q = self.q
                self._heights = sorted(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        heights, positions = self._heights, self._positions
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while x >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            room_up = positions[i + 1] - positions[i]
            room_down = positions[i - 1] - positions[i]
            if (drift >= 1.0 and room_up > 1.0) or (
                drift <= -1.0 and room_down < -1.0
            ):
                step = 1.0 if drift > 0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (``nan`` before any observation)."""
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1, round(self.q * (len(ordered) - 1)))
            return ordered[int(index)]
        return self._heights[2]


class StageStats:
    """Count/mean/max plus P² quantile sketches for one pipeline stage."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        self._sketches = {q: P2Quantile(q) for q in QUANTILES}

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.peak:
            self.peak = seconds
        for sketch in self._sketches.values():
            sketch.add(seconds)

    def summary(self) -> dict[str, float]:
        mean = self.total / self.count if self.count else float("nan")
        payload = {"count": self.count, "mean_s": mean, "max_s": self.peak}
        for q, sketch in self._sketches.items():
            payload[f"p{int(q * 100)}_s"] = sketch.value()
        return payload


@dataclass(frozen=True)
class SoakReport:
    """One load shape's soak outcome: accounting, throughput, latency."""

    shape: str
    seed: int
    num_edges: int
    num_workers: int
    horizon: int
    total_events: int
    wall_seconds: float
    events_in: int
    events_served: int
    events_shed: int
    events_dropped_offline: int
    accounting_ok: bool
    throughput_eps: float
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    worker_deaths: int = 0
    restarts: int = 0
    reconfigs: int = 0
    degraded_workers: int = 0
    recovery_ok: bool = True
    #: Request-level accounting summary (:meth:`IngressStats.summary`)
    #: when the soak ran with an ingress tier; ``None`` otherwise.
    ingress: dict | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": SOAK_FORMAT_VERSION,
            "shape": self.shape,
            "seed": self.seed,
            "num_edges": self.num_edges,
            "num_workers": self.num_workers,
            "horizon": self.horizon,
            "total_events": self.total_events,
            "wall_seconds": self.wall_seconds,
            "events_in": self.events_in,
            "events_served": self.events_served,
            "events_shed": self.events_shed,
            "events_dropped_offline": self.events_dropped_offline,
            "accounting_ok": self.accounting_ok,
            "throughput_eps": self.throughput_eps,
            "stages": {name: dict(stats) for name, stats in self.stages.items()},
            "worker_deaths": self.worker_deaths,
            "restarts": self.restarts,
            "reconfigs": self.reconfigs,
            "degraded_workers": self.degraded_workers,
            "recovery_ok": self.recovery_ok,
            "ingress": dict(self.ingress) if self.ingress is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakReport":
        version = payload.get("format_version")
        if version != SOAK_FORMAT_VERSION:
            raise ValueError(
                f"unsupported soak format_version {version!r} "
                f"(this build reads {SOAK_FORMAT_VERSION})"
            )
        fields = dict(payload)
        fields.pop("format_version")
        return cls(**fields)

    def to_bench_report(self, *, mode: str = "smoke") -> BenchReport:
        """Project onto the bench schema so soaks ride the compare gate.

        Each stage quantile becomes a wall-time case (``<stage>/p95`` etc.),
        throughput and the served fraction become derived ratios — ratios
        always gate, machine-independently, so a soak baseline catches
        "the shard pipeline got slower relative to itself" anywhere.
        """
        results = []
        meta = {"shape": self.shape, "seed": self.seed}
        for stage, stats in self.stages.items():
            if stage == DEFERRAL_STAGE:
                continue  # measured in slots, not seconds — wrong unit here
            for key in ("p50_s", "p95_s", "p99_s"):
                value = stats.get(key)
                if value is None or value != value:  # missing or NaN
                    continue
                results.append(
                    BenchResult(
                        name=f"{stage}/{key.removesuffix('_s')}",
                        wall_seconds=max(float(value), 1e-9),
                        cpu_seconds=0.0,
                        rounds=1,
                        work=1.0,
                        unit="slot",
                        meta=meta,
                    )
                )
        results.append(
            BenchResult(
                name="soak/run",
                wall_seconds=max(self.wall_seconds, 1e-9),
                cpu_seconds=0.0,
                rounds=1,
                work=float(self.horizon * self.num_edges),
                unit="slot-edges",
                meta=meta,
            )
        )
        served_fraction = (
            self.events_served / self.events_in if self.events_in else 0.0
        )
        return BenchReport(
            suite=f"soak_{self.shape}",
            machine=machine_fingerprint(),
            results=tuple(results),
            ratios={
                "throughput_eps": self.throughput_eps,
                "served_fraction": served_fraction,
            },
            mode=mode,
        )


def run_soak(
    shape: str,
    *,
    num_edges: int,
    num_workers: int,
    horizon: int,
    total_events: int,
    seed: int = 0,
    slot_duration: float = 0.0,
    num_models: int = 4,
    n_test: int = 200,
    queue_capacity: int = 4096,
    chaos: ChaosPlan | None = None,
    reconfig: ReconfigPlan | None = None,
    on_worker_death: str | None = None,
    ingress: "IngressConfig | None" = None,
) -> SoakReport:
    """Soak one load shape through a sharded wall-clock run.

    Wall clock with shedding backpressure — the production-shaped
    configuration — and ``slot_duration=0`` free-running by default so CI
    smokes are bounded by compute, not by sleeping.

    A ``chaos`` plan flips the death policy to ``"restart"`` (unless
    ``on_worker_death`` overrides it) so the soak exercises the
    self-healing path, and the report gains recovery-latency quantiles
    plus the healing tallies.  ``accounting_ok`` stays the exact equation;
    the ``events_in == total_events`` leg is only waived when a shard
    genuinely degraded (its unserved slots legitimately never arrived).

    An ``ingress`` config mounts the request-level tier above the shape
    adapter: the report gains the ``ingress`` accounting summary, the
    ``deferral`` wait stage (units: slots), and ``accounting_ok`` also
    requires the request identity ``requests_in == served + shed +
    offline + dropped`` (waived, like the volume leg, only when a shard
    degraded — a dead worker's queued requests legitimately never
    resolved).
    """
    injecting = chaos is not None and not chaos.is_empty
    policy = on_worker_death or ("restart" if injecting else "fail")
    scenario = ScenarioConfig(
        dataset="synthetic",
        num_edges=num_edges,
        horizon=horizon,
        num_models=num_models,
        n_test=n_test,
        seed=seed,
    )
    config = ServeConfig(
        scenario=scenario,
        seed=seed,
        label=f"soak-{shape}",
        adapter="shape",
        shape=shape,
        shape_total_events=total_events,
        shape_seed=seed,
        virtual_clock=False,
        backpressure="shed",
        slot_duration=slot_duration,
        queue_capacity=queue_capacity,
        num_workers=num_workers,
        on_worker_death=policy,
        ingress=ingress.to_dict() if ingress is not None else None,
    )
    tracked = STAGES + ((RECOVERY_STAGE,) if policy == "restart" else ())
    if ingress is not None:
        tracked = tracked + (DEFERRAL_STAGE,)
    stats = {stage: StageStats() for stage in tracked}

    def observe(stage: str, seconds: float) -> None:
        stats.setdefault(stage, StageStats()).observe(seconds)

    tracer = Tracer()  # fresh counters per run; no event sinks
    runtime = ShardRuntime(
        config,
        tracer=tracer,
        on_stage_sample=observe,
        chaos=chaos,
        reconfig=reconfig,
    )
    started = time.monotonic()
    runtime.run()
    wall_seconds = time.monotonic() - started
    events_in = tracer.counter("serve/events_in").value
    events_served = tracer.counter("serve/events_served").value
    events_shed = tracer.counter("serve/events_shed").value
    events_dropped = tracer.counter("serve/events_dropped_offline").value
    worker_deaths = tracer.counter("serve/shard_deaths").value
    restarts = tracer.counter("serve/restarts").value
    reconfigs = tracer.counter("serve/reconfigs").value
    degraded = sum(1 for s in runtime.health()["shards"] if s["failed"])
    ingress_summary = None
    ingress_ok = True
    volume_in = events_in
    if runtime.ingress is not None:
        ingress_summary = runtime.ingress.summary()
        ingress_ok = (
            runtime.ingress.accounting_ok(
                events_served, events_shed, events_dropped
            )
            or degraded > 0
        )
        # Thinning conserves counts, so the volume leg moves up one level:
        # every shaped event must appear as a request.
        volume_in = runtime.ingress.requests_in
    return SoakReport(
        shape=shape,
        seed=seed,
        num_edges=num_edges,
        num_workers=num_workers,
        horizon=horizon,
        total_events=total_events,
        wall_seconds=wall_seconds,
        events_in=events_in,
        events_served=events_served,
        events_shed=events_shed,
        events_dropped_offline=events_dropped,
        accounting_ok=(
            events_in == events_served + events_shed + events_dropped
            and (volume_in == total_events or degraded > 0)
            and ingress_ok
        ),
        throughput_eps=(
            events_served / wall_seconds if wall_seconds > 0 else 0.0
        ),
        stages={stage: stat.summary() for stage, stat in stats.items()},
        worker_deaths=worker_deaths,
        restarts=restarts,
        reconfigs=reconfigs,
        degraded_workers=degraded,
        recovery_ok=(worker_deaths == 0 or degraded == 0),
        ingress=ingress_summary,
    )


def run_soak_suite(shapes: tuple[str, ...] = SHAPE_NAMES, **kwargs) -> list[SoakReport]:
    """Run :func:`run_soak` for each shape with shared sizing kwargs."""
    return [run_soak(shape, **kwargs) for shape in shapes]
