"""Snapshot persistence: atomic pickle of full controller state.

A snapshot is one pickle of the runtime's explicit state dict — bandit
weights and block counters (inside the selection policies), download-retry
state, pending delayed feedback, the trading policy's dual state, the
ledger, the market's trade log, adapter positions, and the partial result
arrays.  Everything is pickled in a *single* payload so objects shared
between components (e.g. the data generator an adapter shares with its
kernel) keep their shared identity on restore.

Writes are atomic (temp file + ``os.replace``) so a crash mid-snapshot
leaves the previous snapshot intact.  Tracers are never pickled — the
stateful classes strip them via ``__getstate__`` and the restoring runtime
rebinds its own.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

__all__ = ["SNAPSHOT_VERSION", "load_snapshot", "save_snapshot"]

#: Bumped on incompatible layout changes; loaders reject mismatches.
SNAPSHOT_VERSION = 1


def save_snapshot(path: str | Path, state: dict[str, object]) -> None:
    """Atomically persist a runtime state dict to ``path``."""
    target = Path(path)
    payload = dict(state)
    payload["version"] = SNAPSHOT_VERSION
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, target)


def load_snapshot(path: str | Path) -> dict[str, object]:
    """Load a state dict persisted by :func:`save_snapshot`."""
    with Path(path).open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"snapshot {path} does not hold a state dict")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {path} has version {version!r}, "
            f"this runtime reads version {SNAPSHOT_VERSION}"
        )
    return payload
