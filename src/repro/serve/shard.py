"""Multi-process sharded edge tier behind the coordinator protocol.

Topology (one run): the fleet's edges are partitioned contiguously across
``num_workers`` worker *processes*; each worker runs the same feeder/actor
event loop as :class:`~repro.serve.runtime.ServeRuntime` over its shard of
:class:`~repro.sim.kernel.EdgeSlotKernel`\\ s, while the parent process owns
the :class:`~repro.sim.kernel.TradingSlotKernel`, the result arrays, the
release schedule, and snapshot persistence.  The two sides exchange
length-prefixed pickle frames (:mod:`repro.serve.frames`) over one duplex
pipe per worker: the parent broadcasts slot releases, workers report
per-slot outcome batches, heartbeats prove liveness during long slots, and
a drain handshake ends the run with the ledger intact.

Determinism: every worker rebuilds the *full* kernel set from the shared
:class:`~repro.serve.config.ServeConfig` — bit-identical by the name-keyed
RNG stream contract (:func:`~repro.serve.runtime.build_serve_kernels`) —
and steps only its own edges, whose streams are independent of everyone
else's.  The parent folds outcome batches in global edge order through the
same :class:`~repro.serve.runtime.SlotAggregator` the in-process runtime
uses, so a sharded virtual-clock run is bit-identical to ``Simulator.run``
and is locked against the same golden digests.

Worker death: the parent multiplexes pipe reads and process sentinels in
one ``multiprocessing.connection.wait`` call, so a crashed worker surfaces
immediately.  Policy ``"fail"`` raises (attaching the worker-side traceback
when one made it over the wire); ``"degrade"`` marks the dead shard's edges
offline for every remaining slot (synthesized zero-cost outcomes, so
``in == served + shed + offline`` still holds exactly), keeps trading every
slot on the surviving emissions, and completes the horizon — surviving
edges' trajectories are untouched because edges only couple through the
trading loop, which does not feed back into selection.

Supervised restart (``on_worker_death="restart"``): workers checkpoint
their shard state every ``restart_state_every`` slots at quiescent
boundaries (release capping makes the boundary a barrier).  When a worker
dies, the parent schedules a respawn after a capped exponential backoff;
the new incarnation restores the last checkpoint, silently re-steps the
already-folded slots to recover the exact kernel state, reports the
*missed* slots as offline outcomes with their real arrival counts (so the
accounting equation — and ``events_in == total_events`` — survive a full
recovery), and goes live at the release frontier.  Surviving shards are
bit-identical to an unfaulted run.  ``max_restarts`` exhaustion falls back
to ``degrade`` for that worker.

Live reconfiguration: a :class:`~repro.serve.reconfig.ReconfigPlan` applies
``add_edge``/``remove_edge``/``rebalance`` ops at slot barriers — the
parent caps releases at the barrier, drains the fleet (every worker
checkpoints and exits), applies the ops, rescales the trading kernel by
the active-count ratio, repartitions, and respawns.  Inactive edges are
folded as parent-synthesized offline outcomes; a no-op plan is
bit-identical to an unreconfigured run.

Deterministic chaos: a :class:`~repro.serve.chaos.ChaosPlan` realizes —
as a pure function of ``(plan, fleet, horizon, seed)`` — into per-worker
kill/stall/transport-drop schedules that fire inside the workers at exact
slot boundaries, which is what the soak harness gates recovery on.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.faults.plan import FaultPlan
from repro.obs.events import (
    ReconfigAppliedEvent,
    SlotStartEvent,
    SnapshotEvent,
    WorkerDeathEvent,
    WorkerRestartEvent,
    WorkerSpawnEvent,
)
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.chaos import ChaosPlan, WorkerChaos, realize
from repro.serve.clock import VirtualClock, WallClock, release_target
from repro.serve.config import ServeConfig
from repro.serve.frames import (
    BYE,
    DRAIN,
    ERROR,
    HEARTBEAT,
    READY,
    RECONFIG,
    RELEASE,
    RESTART_STATE,
    SLOT,
    SNAPSHOT_REQUEST,
    STATE,
    arm_transport_faults,
    drain_frames,
    recv_frame,
    send_frame,
)
from repro.serve.http import StatusServer
from repro.serve.queues import BoundedWorkQueue, WorkItem
from repro.serve.reconfig import ReconfigPlan, apply_op
from repro.serve.runtime import (
    ServeRuntime,
    SlotAggregator,
    build_serve_kernels,
    offline_outcome,
)
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.sim.kernel import EdgeSlotOutcome
from repro.sim.results import SimulationResult

__all__ = [
    "ShardRuntime",
    "make_runtime",
    "runtime_from_snapshot",
    "shard_edges",
]


def shard_edges(num_edges: int, num_workers: int) -> list[tuple[int, ...]]:
    """Partition ``range(num_edges)`` into contiguous near-even shards.

    At most ``num_workers`` shards; never an empty shard (extra workers are
    simply not spawned when there are fewer edges than workers).
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    shards = min(num_workers, num_edges)
    base, extra = divmod(num_edges, shards)
    out: list[tuple[int, ...]] = []
    next_edge = 0
    for w in range(shards):
        size = base + (1 if w < extra else 0)
        out.append(tuple(range(next_edge, next_edge + size)))
        next_edge += size
    return out


def _mp_context():
    """Fork where the platform has it (fast spawns), spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _worker_main(
    index: int,
    conn,
    config: ServeConfig,
    edges: list[int],
    start: int,
    stop: int,
    faults: FaultPlan | None,
    trace_path: str | None,
    resume: dict | None,
    heartbeat_interval: float,
    chaos: WorkerChaos | None,
    replay_from: int,
) -> None:
    """Worker process entry point: run the shard, report, exit cleanly."""
    tracer: Tracer | None = None
    try:
        if trace_path is not None:
            tracer = Tracer([JsonlSink(trace_path)])
        asyncio.run(
            _worker_async(
                index,
                conn,
                config,
                edges,
                start,
                stop,
                faults,
                tracer,
                resume,
                heartbeat_interval,
                chaos,
                replay_from,
            )
        )
        try:
            send_frame(conn, {"type": BYE, "worker": index})
        except (BrokenPipeError, OSError):
            pass
    except BaseException as exc:  # noqa: BLE001 - last-resort wire report
        try:
            send_frame(
                conn,
                {
                    "type": ERROR,
                    "worker": index,
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                },
            )
        except (BrokenPipeError, OSError):
            pass
    finally:
        if tracer is not None:
            tracer.close()
        try:
            conn.close()
        except OSError:
            pass


async def _worker_async(
    index: int,
    conn,
    config: ServeConfig,
    edges: list[int],
    start: int,
    stop: int,
    faults: FaultPlan | None,
    tracer: Tracer | None,
    resume: dict | None,
    heartbeat_interval: float,
    chaos: WorkerChaos | None,
    replay_from: int,
) -> None:
    """One shard's event loop: feeders + actors + the pipe-facing tasks.

    Concurrency layout keeps every shared resource single-writer: all pipe
    writes flow through one **sender** task fed by ``outbox``; all pipe
    reads enter through one ``add_reader`` callback feeding ``control``;
    per-slot outcomes funnel through one **reporter** task that batches a
    slot's shard outcomes into a single frame.

    A respawned incarnation runs three phases before going live at
    ``start``: a silent *catch-up* re-steps each edge from its restored
    checkpoint up to ``replay_from`` (outcomes discarded — the parent
    already folded them, and the deterministic kernels reproduce the exact
    same state); an *offline replay* reports ``[replay_from, start)`` as
    offline outcomes with the real arrival counts; then the normal live
    loops take over.
    """
    scenario, adapters, edge_kernels, _ = build_serve_kernels(
        config, tracer=tracer, faults=faults
    )
    horizon = scenario.horizon
    kernels = {e: edge_kernels[e] for e in edges}
    my_adapters = {e: adapters[e] for e in edges}
    has_ingress = config.ingress is not None
    delay = config.label_delay
    catchup: dict[int, tuple[int, str]] = {}
    if resume is not None:
        for e, state in resume["edges"].items():
            kernels[e].load_state(state)
            my_adapters[e].load_state(resume["adapters"][e])
        catchup = dict(resume.get("catchup", {}))
        if tracer is not None:
            for e in edges:
                kernels[e].policy.bind_tracer(tracer, edge=e)

    # Phase A — silent catch-up: advance each edge from its checkpoint to
    # the replay point.  ``live`` re-steps already-folded real slots (the
    # deterministic kernels reproduce the folded outcomes bit-exactly);
    # ``offline`` covers stretches the parent folded as inactive.
    for e in edges:
        as_of, mode = catchup.get(e, (replay_from, "live"))
        kernel = kernels[e]
        adapter = my_adapters[e]
        for t in range(as_of, replay_from):
            item = adapter.next_item(t)
            if mode == "live":
                kernel.step(
                    item.t, item.count, indices=item.indices, shed=item.shed
                )
            else:
                kernel.step_offline(t, item.count)
            if has_ingress:
                # The parent already merged these slots' request stats from
                # the dead incarnation's frames; the catch-up only has to
                # reproduce queue/stream state, never re-report.
                adapter.discard_slot(t)
            if delay:
                kernel.deliver_due(t - delay)

    clock = (
        VirtualClock() if config.virtual_clock else WallClock(config.slot_duration)
    )
    queues = {e: BoundedWorkQueue(config.queue_capacity) for e in edges}
    trace = tracer if tracer is not None else NULL_TRACER
    loop = asyncio.get_running_loop()
    outbox: asyncio.Queue = asyncio.Queue()
    reports: asyncio.Queue = asyncio.Queue()
    control: asyncio.Queue = asyncio.Queue()
    shutdown = asyncio.Event()
    enqueue_ts: dict[int, dict[int, float]] = {e: {} for e in edges}

    def _on_readable() -> None:
        try:
            while conn.poll():
                control.put_nowait(recv_frame(conn))
        except (EOFError, OSError):
            # Parent is gone; treat as a drain order.
            control.put_nowait({"type": DRAIN})
            loop.remove_reader(conn.fileno())

    loop.add_reader(conn.fileno(), _on_readable)

    # Phase B — offline replay of the slots this worker's predecessor
    # missed: reported with the real arrival counts (the restored adapters
    # are deterministic), queued ahead of READY so the parent folds them
    # in order.
    for t in range(replay_from, start):
        outcomes = []
        for e in edges:
            item = my_adapters[e].next_item(t)
            outcomes.append(kernels[e].step_offline(t, item.count))
            if delay:
                kernels[e].deliver_due(t - delay)
        frame = {
            "type": SLOT,
            "worker": index,
            "t": t,
            "outcomes": outcomes,
            "queue_s": [],
            "serve_s": [],
        }
        if has_ingress:
            # Resolved against the offline outcomes: every release in a
            # replayed slot is dropped-offline, so it counts as a miss.
            frame["ingress"] = {
                outcome.edge: my_adapters[outcome.edge].resolve_slot(outcome)
                for outcome in outcomes
            }
        await outbox.put(frame)

    def _state_frame() -> dict:
        return {
            "type": STATE,
            "worker": index,
            "edges": {e: kernels[e].state_dict() for e in edges},
            "adapters": {e: my_adapters[e].state_dict() for e in edges},
        }

    async def _fail(exc: Exception) -> None:
        await outbox.put(
            {
                "type": ERROR,
                "worker": index,
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        shutdown.set()

    async def _control() -> None:
        while True:
            frame = await control.get()
            kind = frame["type"]
            if kind == RELEASE:
                await clock.release(int(frame["upto"]))
            elif kind == SNAPSHOT_REQUEST:
                # Only requested at quiescent boundaries (release capping),
                # so kernel/adapter state is settled for every shard edge.
                await outbox.put(_state_frame())
            elif kind == RECONFIG:
                # Reconfig barrier: checkpoint at the (quiescent) barrier
                # and exit; the parent respawns the reshaped fleet.
                await outbox.put(_state_frame())
                shutdown.set()
                return
            elif kind == DRAIN:
                shutdown.set()
                return

    async def _sender() -> None:
        while True:
            frame = await outbox.get()
            send_frame(conn, frame)  # noqa: RPL012 - bounded retry backoff
            outbox.task_done()

    async def _heartbeat() -> None:
        while True:
            await asyncio.sleep(heartbeat_interval)
            await outbox.put({"type": HEARTBEAT, "worker": index})

    async def _feeder(edge: int) -> None:
        from repro.obs.events import ArrivalEvent, QueueShedEvent

        adapter = my_adapters[edge]
        queue = queues[edge]
        shed_mode = config.backpressure == "shed"
        stamps = enqueue_ts[edge]
        try:
            for t in range(start, stop):
                await clock.wait_for_slot(t)
                await clock.pace(t)
                item = adapter.next_item(t)
                if trace.enabled:
                    trace.emit(ArrivalEvent(t=t, edge=edge, count=item.count))
                # Stamped before put: a blocked put is queue latency too.
                stamps[t] = loop.time()
                if shed_mode:
                    admitted = await queue.put(item, block=False)
                    if not admitted:
                        if trace.enabled:
                            trace.emit(
                                QueueShedEvent(t=t, edge=edge, count=item.count)
                            )
                        await queue.put(
                            WorkItem(t=t, count=item.count, shed=True),
                            block=False,
                        )
                else:
                    await queue.put(item)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await _fail(exc)

    async def _actor(edge: int) -> None:
        kernel = kernels[edge]
        queue = queues[edge]
        stamps = enqueue_ts[edge]
        try:
            for t in range(start, stop):
                item = await queue.get()
                dequeued = loop.time()
                queue_s = dequeued - stamps.pop(item.t)
                outcome = kernel.step(
                    item.t, item.count, indices=item.indices, shed=item.shed
                )
                serve_s = loop.time() - dequeued
                if delay:
                    kernel.deliver_due(t - delay)
                await reports.put((outcome, queue_s, serve_s))
            if delay and stop == horizon:
                kernel.deliver_due(horizon)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await _fail(exc)

    async def _reporter() -> None:
        remaining = (stop - start) * len(edges)
        pending: dict[int, list[tuple[EdgeSlotOutcome, float, float]]] = {}
        restart_every = (
            config.restart_state_every
            if config.on_worker_death == "restart"
            else 0
        )
        kill_slots = frozenset(chaos.kills) if chaos is not None else frozenset()
        stall_slots = dict(chaos.stalls) if chaos is not None else {}
        drop_slots = dict(chaos.drops) if chaos is not None else {}
        while remaining:
            outcome, queue_s, serve_s = await reports.get()
            remaining -= 1
            bucket = pending.setdefault(outcome.t, [])
            bucket.append((outcome, queue_s, serve_s))
            if len(bucket) != len(edges):
                continue
            t = outcome.t
            del pending[t]
            bucket.sort(key=lambda row: row[0].edge)
            # Resolved before the checkpoint capture below so restart
            # checkpoints never carry provisional slot stats.
            ingress_payloads = None
            if has_ingress:
                ingress_payloads = {
                    row[0].edge: my_adapters[row[0].edge].resolve_slot(row[0])
                    for row in bucket
                }
            # Captured before anything hits the wire: releases are capped
            # at the checkpoint boundary, so every shard kernel is
            # quiescent at state t+1, and a chaos kill below can never
            # orphan a checkpoint whose slot was not reported.
            state_frame = None
            if restart_every and (t + 1) % restart_every == 0 and t + 1 < stop:
                state_frame = {
                    "type": RESTART_STATE,
                    "worker": index,
                    "next_slot": t + 1,
                    "edges": {e: kernels[e].state_dict() for e in edges},
                    "adapters": {e: my_adapters[e].state_dict() for e in edges},
                }
            drop = drop_slots.get(t)
            if drop:
                arm_transport_faults(drop)
            stall = stall_slots.get(t)
            if stall:
                # Chaos: a deliberately hung worker — heartbeats stop too,
                # which is the point.
                time.sleep(stall)  # noqa: RPL012 - chaos stall by design
            if t in kill_slots:
                # Abrupt, SIGKILL-like death with this slot unreported —
                # the parent sees a raw EOF and the process sentinel.
                os._exit(1)
            slot_frame = {
                "type": SLOT,
                "worker": index,
                "t": t,
                "outcomes": [row[0] for row in bucket],
                "queue_s": [row[1] for row in bucket],
                "serve_s": [row[2] for row in bucket],
            }
            if ingress_payloads is not None:
                slot_frame["ingress"] = ingress_payloads
            await outbox.put(slot_frame)
            if state_frame is not None:
                await outbox.put(state_frame)

    tasks = [
        asyncio.create_task(_control(), name=f"shard{index}-control"),
        asyncio.create_task(_sender(), name=f"shard{index}-sender"),
        asyncio.create_task(_heartbeat(), name=f"shard{index}-heartbeat"),
    ]
    tasks += [
        asyncio.create_task(_feeder(e), name=f"shard{index}-feeder-{e}")
        for e in edges
    ]
    tasks += [
        asyncio.create_task(_actor(e), name=f"shard{index}-actor-{e}")
        for e in edges
    ]
    reporter_task = asyncio.create_task(_reporter(), name=f"shard{index}-reporter")
    shutdown_task = asyncio.create_task(
        shutdown.wait(), name=f"shard{index}-shutdown"
    )
    await outbox.put({"type": READY, "worker": index})
    try:
        await asyncio.wait(
            {reporter_task, shutdown_task},
            return_when=asyncio.FIRST_COMPLETED,
        )
        if reporter_task.done() and not reporter_task.cancelled():
            exc = reporter_task.exception()
            if exc is not None:
                raise exc
            if stop < horizon:
                # A partial run's stop slot may coincide with a snapshot
                # boundary: the parent still needs this worker's STATE
                # frame after the last SLOT, so hold the control channel
                # open until it says DRAIN.
                await shutdown_task
        # Flush everything queued for the wire before tearing down.
        await outbox.join()
    finally:
        for task in [reporter_task, shutdown_task, *tasks]:
            if not task.done():
                task.cancel()
        await asyncio.gather(
            reporter_task, shutdown_task, *tasks, return_exceptions=True
        )
        loop.remove_reader(conn.fileno())


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


@dataclass
class _Shard:
    """The parent's book-keeping for one worker process incarnation."""

    index: int
    edges: tuple[int, ...]
    process: object
    conn: object
    generation: int = 0
    live_from: int = 0
    ready: bool = False
    running: bool = True
    eof: bool = False
    byed: bool = False
    failed: bool = False
    errored: bool = False
    error: str = ""
    restarting: bool = False
    restarted: bool = False
    recovered: bool = False
    last_slot: int = -1
    last_frame: float = field(default_factory=time.monotonic)


class _StatusThread(threading.Thread):
    """Runs the stdlib StatusServer on its own loop beside the sync parent."""

    def __init__(self, routes: dict, port: int) -> None:
        super().__init__(daemon=True, name="shard-status")
        self._routes = routes
        self._request_port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self.port: int | None = None

    def run(self) -> None:  # pragma: no cover - exercised via HTTP tests
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        server = StatusServer(self._routes, port=self._request_port)
        await server.start()
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()

    def wait_started(self, timeout: float = 10.0) -> None:
        if not self._started.wait(timeout):
            raise RuntimeError("status server thread failed to start")

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self.join(timeout=5.0)


class ShardRuntime:
    """One serve run with the edge tier sharded across worker processes.

    API mirror of :class:`~repro.serve.runtime.ServeRuntime`: construct
    from a :class:`ServeConfig` (``num_workers`` decides the shard count)
    or :meth:`from_snapshot`, then :meth:`run`.  Virtual-clock runs are
    bit-identical to the in-process runtime and to ``Simulator.run``.

    ``on_stage_sample(stage, seconds)``, when given, receives every
    per-stage latency sample — ``queue`` (enqueue to dequeue, measured in
    the worker), ``serve`` (kernel step, worker), ``trade`` (parent fold +
    trading step), ``slot`` (release to fold, end-to-end), and
    ``recovery`` (worker death to its first live outcome after a
    supervised restart) — which is how the soak harness feeds its quantile
    sketches without this module depending on it.

    ``chaos`` takes a :class:`~repro.serve.chaos.ChaosPlan` realized
    deterministically against the fleet at construction; ``reconfig``
    takes a :class:`~repro.serve.reconfig.ReconfigPlan` applied at slot
    barriers (incompatible with periodic snapshots — a barrier changes the
    fleet shape mid-file).
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
        shard_trace_paths: Sequence[str | Path] | None = None,
        heartbeat_interval: float = 0.5,
        stall_timeout: float = 120.0,
        start_timeout: float = 120.0,
        on_stage_sample: Callable[[str, float], None] | None = None,
        chaos: ChaosPlan | None = None,
        reconfig: ReconfigPlan | None = None,
    ) -> None:
        self.config = config
        self.label = config.effective_label
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rebind_tracer = tracer is not None
        self._faults = faults
        # The parent builds the full kernel set too: it keeps the trading
        # kernel (Algorithm 2 + market + ledger); the edge kernels are never
        # stepped here and their streams stay untouched (draws are lazy).
        self.scenario, _, _, self.trading_kernel = build_serve_kernels(
            config, tracer=tracer, faults=faults
        )
        self.horizon = self.scenario.horizon
        self.num_edges = self.scenario.num_edges
        self._reconfig = (
            reconfig if reconfig is not None and not reconfig.is_empty else None
        )
        self._active: tuple[int, ...] = tuple(range(self.num_edges))
        self._num_workers = config.num_workers
        if self._reconfig is not None:
            if config.snapshot_every:
                raise ValueError(
                    "reconfiguration and periodic snapshots cannot be "
                    "combined: a reconfig barrier changes the fleet shape "
                    "mid-file"
                )
            for op in self._reconfig.ops:
                if op.at >= self.horizon:
                    raise ValueError(
                        f"reconfig op at slot {op.at} is outside the "
                        f"horizon of {self.horizon}"
                    )
            self._active, self._num_workers = self._reconfig.fleet_at(
                capacity=self.num_edges,
                num_workers=config.num_workers,
                upto_slot=0,
            )
        self.shards = self._partition(self._active, self._num_workers)
        if shard_trace_paths is not None and len(shard_trace_paths) != len(
            self.shards
        ):
            raise ValueError(
                f"{len(shard_trace_paths)} shard trace paths for "
                f"{len(self.shards)} shards"
            )
        self._shard_trace_paths = (
            [str(p) for p in shard_trace_paths] if shard_trace_paths else None
        )
        self._heartbeat_interval = heartbeat_interval
        self._stall_timeout = stall_timeout
        self._start_timeout = start_timeout
        self._on_stage_sample = on_stage_sample
        self._chaos = realize(
            chaos,
            num_workers=len(self.shards),
            horizon=self.horizon,
            seed=config.seed,
        )
        self.aggregator = SlotAggregator(self.scenario, self.trading_kernel)
        self.completed_slot = -1
        self._edge_state_slot = 0  # slot the (fresh/restored) edge state is at
        self._handles: list[_Shard] = []
        self._owner: dict[int, _Shard] = {}
        self._pending: dict[int, dict[int, EdgeSlotOutcome]] = {}
        self._last_models: dict[int, int] = {}
        self._release_ts: dict[int, float] = {}
        self._released = -1
        self._stop_slot = self.horizon
        self._state_frames: dict[int, dict] = {}
        self._barriers: list[int] = []
        # Last-good per-edge state: edge -> (kernel, adapter, as_of, mode).
        # ``mode`` records how the stretch since ``as_of`` was folded
        # ("live" = real outcomes, "offline" = parent-synthesized), which
        # tells a respawned worker how to catch its kernels up.
        self._edge_payloads: dict[int, tuple] = {}
        self._restart_due: dict[int, float] = {}
        self._restart_backoff: dict[int, float] = {}
        self._restarts_used: dict[int, int] = {}
        self._death_ts: dict[int, float] = {}
        self._spawn_counts: dict[int, int] = {}
        self._reconfiguring = False
        self.status_thread: _StatusThread | None = None
        tracer_obj = self.tracer
        self._events_in = tracer_obj.counter("serve/events_in")
        self._events_served = tracer_obj.counter("serve/events_served")
        self._events_shed = tracer_obj.counter("serve/events_shed")
        self._events_dropped_offline = tracer_obj.counter(
            "serve/events_dropped_offline"
        )
        self._slots_completed = tracer_obj.counter("serve/slots_completed")
        self._snapshots_taken = tracer_obj.counter("serve/snapshots")
        self._heartbeats = tracer_obj.counter("serve/heartbeats")
        self._shard_deaths = tracer_obj.counter("serve/shard_deaths")
        self._restarts = tracer_obj.counter("serve/restarts")
        self._reconfigs = tracer_obj.counter("serve/reconfigs")
        ingress_config = config.ingress_config()
        self.ingress = None
        #: Resolved per-slot ingress payloads awaiting their slot's fold:
        #: ``t -> {edge -> payload}``.  Overwrite semantics mirror the
        #: outcome buffer — a restarted worker's replay frames replace the
        #: dead incarnation's unfolded payloads, never double-count.
        self._pending_ingress: dict[int, dict[int, dict]] = {}
        if ingress_config is not None:
            from repro.ingress.stats import IngressStats

            self.ingress = IngressStats(ingress_config.class_names)
            self._requests_in = tracer_obj.counter("ingress/requests_in")
            self._requests_dropped = tracer_obj.counter(
                "ingress/requests_dropped"
            )
            self._requests_deferred = tracer_obj.counter(
                "ingress/requests_deferred"
            )
            self._deadline_hits = tracer_obj.counter("ingress/deadline_hits")
            self._deadline_misses = tracer_obj.counter("ingress/deadline_misses")

    @staticmethod
    def _partition(active: Sequence[int], num_workers: int) -> list[tuple[int, ...]]:
        """Contiguous near-even shards over the *active* edge ids."""
        return [
            tuple(active[i] for i in part)
            for part in shard_edges(len(active), num_workers)
        ]

    # -- construction / restore -------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        *,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
        **kwargs,
    ) -> "ShardRuntime":
        """Rebuild a sharded runtime mid-horizon from a persisted snapshot.

        Snapshots are runtime-agnostic: the same file restores into a
        :class:`ServeRuntime` or a :class:`ShardRuntime` regardless of
        which side wrote it.
        """
        state = load_snapshot(path)
        config = ServeConfig.from_dict(state["config"])
        runtime = cls(config, tracer=tracer, faults=faults, **kwargs)
        runtime._restore(state)
        return runtime

    def _restore(self, state: dict) -> None:
        if state["label"] != self.label:
            raise ValueError(
                f"snapshot is for run {state['label']!r}, "
                f"this runtime serves {self.label!r}"
            )
        next_slot = int(state["next_slot"])
        if not 0 <= next_slot <= self.horizon:
            raise ValueError(
                f"snapshot resumes at slot {next_slot}, "
                f"horizon is {self.horizon}"
            )
        self.trading_kernel.load_state(state["trading"])
        if self._rebind_tracer:
            self.trading_kernel.policy.bind_tracer(self.tracer)
            self.trading_kernel.market.bind_tracer(self.tracer)
            self.trading_kernel.ledger.bind_tracer(self.tracer)
        self.aggregator.load_arrays(state["arrays"])
        self.completed_slot = next_slot - 1
        self._edge_state_slot = next_slot
        # Per-edge kernel/adapter states are handed to the workers, which
        # rebuild and then restore their own shard (one pickle payload per
        # worker keeps kernel/adapter shared-object identity intact).
        for e in range(self.num_edges):
            self._edge_payloads[e] = (
                state["edges"][e],
                state["adapters"][e],
                next_slot,
                "live",
            )
        if next_slot > 0:
            selections = state["arrays"]["selections"]
            for e in range(self.num_edges):
                self._last_models[e] = int(selections[-1][e])

    # -- public surface ----------------------------------------------------

    def health(self) -> dict[str, object]:
        """Liveness payload for ``GET /healthz`` (adds shard status)."""
        done = self.completed_slot >= self.horizon - 1
        degraded = any(h.failed for h in self._handles)
        healing = bool(self._restart_due) or any(
            h.restarting for h in self._handles
        )
        status = "done" if done else (
            "degraded" if degraded else ("healing" if healing else "serving")
        )
        return {
            "status": status,
            "label": self.label,
            "completed_slot": self.completed_slot,
            "released_slot": self._released,
            "horizon": self.horizon,
            "num_edges": self.num_edges,
            "active_edges": len(self._active),
            "num_workers": len(self.shards),
            "shards": [
                {
                    "worker": h.index,
                    "edges": list(h.edges),
                    "alive": h.running,
                    "failed": h.failed,
                    "restarting": h.restarting,
                    "generation": h.generation,
                    "last_slot": h.last_slot,
                }
                for h in self._handles
            ],
        }

    def metrics(self) -> dict[str, object]:
        """Tracer counters/timers and event tallies for ``GET /metrics``."""
        payload: dict[str, object] = dict(self.tracer.metrics_snapshot())
        payload["events"] = self.tracer.event_counts()
        return payload

    def result(self) -> SimulationResult:
        """The completed run's records (requires the full horizon served)."""
        if self.completed_slot < self.horizon - 1:
            raise RuntimeError(
                f"run stopped after slot {self.completed_slot}; "
                f"horizon is {self.horizon} — resume it before asking for results"
            )
        return self.aggregator.result(self.label)

    def run(self, *, max_slots: int | None = None) -> SimulationResult | None:
        """Serve the horizon (or ``max_slots`` of it) across the shards.

        Returns the :class:`SimulationResult` when the horizon completed,
        ``None`` after a partial run (resume from the last snapshot via
        :meth:`from_snapshot` — unlike the in-process runtime, the edge
        state of a partial sharded run lives in its snapshot file, not in
        this object).
        """
        start = self.completed_slot + 1
        stop = self.horizon
        if max_slots is not None:
            if max_slots < 1:
                raise ValueError(f"max_slots must be >= 1, got {max_slots}")
            stop = min(stop, start + max_slots)
        if start >= stop:
            return self.result() if stop == self.horizon else None
        if start != self._edge_state_slot:
            raise RuntimeError(
                f"edge state is at slot {self._edge_state_slot} but the run "
                f"would start at {start}; sharded runs continue from their "
                "snapshot file (ShardRuntime.from_snapshot)"
            )
        if self._reconfig is not None:
            self._active, self._num_workers = self._reconfig.fleet_at(
                capacity=self.num_edges,
                num_workers=self.config.num_workers,
                upto_slot=start,
            )
            self.shards = self._partition(self._active, self._num_workers)
            self._barriers = [
                b for b in self._reconfig.barriers() if start < b < stop
            ]
            for e in range(self.num_edges):
                if e in self._active:
                    continue
                payload = self._edge_payloads.get(e)
                if payload is None:
                    self._edge_payloads[e] = (None, None, start, "offline")
                else:
                    self._edge_payloads[e] = (*payload[:3], "offline")
            if len(self._active) != self.num_edges:
                self.trading_kernel.rescale_fleet(
                    len(self._active) / self.num_edges
                )
        self._stop_slot = stop
        self._released = start - 1
        handles = [
            self._spawn_worker(
                w, edges, start=start, stop=stop, replay_from=start, generation=0
            )
            for w, edges in enumerate(self.shards)
        ]
        self._handles = handles
        self._owner = {e: h for h in handles for e in h.edges}
        if self.config.health_port is not None:
            self.status_thread = _StatusThread(
                {"/healthz": self.health, "/metrics": self.metrics},
                port=self.config.health_port,
            )
            self.status_thread.start()
            self.status_thread.wait_started()
        try:
            self._await_ready(handles)
            self._release_through(self._release_target_for(start - 1))
            while self.completed_slot < stop - 1:
                self._poll(self._handles, timeout=0.2)
                self._service_restarts()
                self._fold_ready()
                self._check_stalls(self._handles)
        finally:
            self._shutdown(self._handles)
            if self.status_thread is not None:
                self.status_thread.stop()
        # A partial run's edge state exited with the workers; only a
        # snapshot file can continue it.
        self._edge_state_slot = -1 if stop < self.horizon else stop
        return self.result() if stop == self.horizon else None

    # -- process management ------------------------------------------------

    def _spawn_worker(
        self,
        w: int,
        edges: Sequence[int],
        *,
        start: int,
        stop: int,
        replay_from: int,
        generation: int,
    ) -> _Shard:
        """Start one worker process and return its bookkeeping handle."""
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        resume = self._resume_payload(edges, replay_from)
        process = ctx.Process(
            target=_worker_main,
            args=(
                w,
                child_conn,
                self.config,
                list(edges),
                start,
                stop,
                self._faults,
                self._trace_path_for(w),
                resume,
                self._heartbeat_interval,
                self._chaos.get(w),
                replay_from,
            ),
            daemon=True,
            name=f"repro-shard-{w}",
        )
        process.start()
        # Close the child's end in the parent so a dead worker turns
        # into EOF here instead of a silent hang.
        child_conn.close()
        handle = _Shard(
            index=w,
            edges=tuple(edges),
            process=process,
            conn=parent_conn,
            generation=generation,
            live_from=start,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                WorkerSpawnEvent(
                    t=start, worker=w, num_edges=len(edges), generation=generation
                )
            )
        return handle

    def _trace_path_for(self, w: int) -> str | None:
        """The worker's JSONL trace target; respawns get a fresh suffix.

        :class:`~repro.obs.sinks.JsonlSink` truncates on open, so a
        respawned incarnation must not reuse its predecessor's file.
        """
        if self._shard_trace_paths is None or w >= len(self._shard_trace_paths):
            return None
        count = self._spawn_counts.get(w, 0)
        self._spawn_counts[w] = count + 1
        base = self._shard_trace_paths[w]
        return base if count == 0 else f"{base}.respawn{count}"

    def _resume_payload(
        self, edges: Sequence[int], replay_from: int
    ) -> dict | None:
        """The pickled state a (re)spawned worker restores and catches up from."""
        entries = {e: self._edge_payloads.get(e) for e in edges}
        if all(p is None for p in entries.values()) and replay_from == 0:
            return None
        resume: dict = {"edges": {}, "adapters": {}, "catchup": {}}
        for e, payload in entries.items():
            if payload is None:
                # Never checkpointed: fresh kernels, re-step from slot 0.
                resume["catchup"][e] = (0, "live")
                continue
            kernel_state, adapter_state, as_of, mode = payload
            if kernel_state is not None:
                resume["edges"][e] = kernel_state
                resume["adapters"][e] = adapter_state
            resume["catchup"][e] = (as_of, mode)
        return resume

    def _await_ready(self, handles: list[_Shard]) -> None:
        deadline = time.monotonic() + self._start_timeout
        while any(h.running and not h.ready for h in handles):
            if time.monotonic() > deadline:
                missing = [h.index for h in handles if not h.ready]
                raise RuntimeError(
                    f"timed out waiting for shard workers {missing} to start"
                )
            self._poll(handles, timeout=0.1)

    def _poll(self, handles: list[_Shard], *, timeout: float) -> None:
        """Multiplex pipe reads and process-death sentinels in one wait."""
        conn_map = {h.conn: h for h in handles if h.running and not h.eof}
        sentinel_map = {h.process.sentinel: h for h in handles if h.running}
        waitables = list(conn_map) + list(sentinel_map)
        if not waitables:
            return
        ready = multiprocessing.connection.wait(waitables, timeout)
        for obj in ready:
            handle = conn_map.get(obj)
            if handle is not None:
                try:
                    while handle.conn.poll():
                        self._dispatch(handle, recv_frame(handle.conn))
                except (EOFError, OSError):
                    self._handle_exit(handle)
            else:
                handle = sentinel_map[obj]
                for frame in drain_frames(handle.conn):
                    self._dispatch(handle, frame)
                self._handle_exit(handle)

    def _dispatch(self, handle: _Shard, frame: dict) -> None:
        handle.last_frame = time.monotonic()
        kind = frame["type"]
        if kind == SLOT:
            t = int(frame["t"])
            bucket = self._pending.setdefault(t, {})
            for outcome in frame["outcomes"]:
                bucket[outcome.edge] = outcome
                self._last_models[outcome.edge] = outcome.model
            ingress_payloads = frame.get("ingress")
            if ingress_payloads:
                # Stored, not merged: merging happens once at fold time so
                # a restart replay overwriting this slot cannot double-count.
                self._pending_ingress.setdefault(t, {}).update(ingress_payloads)
            handle.last_slot = max(handle.last_slot, t)
            if (
                handle.restarted
                and not handle.recovered
                and t >= handle.live_from
            ):
                handle.recovered = True
                died = self._death_ts.pop(handle.index, None)
                observe = self._on_stage_sample
                if died is not None and observe is not None:
                    observe("recovery", time.monotonic() - died)
            observe = self._on_stage_sample
            if observe is not None:
                for value in frame["queue_s"]:
                    observe("queue", value)
                for value in frame["serve_s"]:
                    observe("serve", value)
        elif kind == READY:
            handle.ready = True
        elif kind == HEARTBEAT:
            self._heartbeats.increment()
        elif kind == STATE:
            self._state_frames[handle.index] = frame
        elif kind == RESTART_STATE:
            as_of = int(frame["next_slot"])
            for e, kernel_state in frame["edges"].items():
                self._edge_payloads[e] = (
                    kernel_state,
                    frame["adapters"][e],
                    as_of,
                    "live",
                )
        elif kind == BYE:
            handle.byed = True
        elif kind == ERROR:
            handle.error = str(frame["message"])
            handle.errored = True
            if self.config.on_worker_death == "fail":
                trail = frame.get("traceback", "")
                raise RuntimeError(
                    f"shard worker {handle.index} failed: "
                    f"{frame['message']}\n{trail}"
                )

    def _handle_exit(self, handle: _Shard) -> None:
        if not handle.running:
            return
        handle.running = False
        handle.eof = True
        finished = handle.last_slot >= self._stop_slot - 1
        clean = finished or (handle.byed and not handle.errored)
        if clean:
            return
        self._on_death(handle)

    def _on_death(self, handle: _Shard) -> None:
        """Route a worker death through the configured policy."""
        self._shard_deaths.increment()
        policy = self.config.on_worker_death
        if self.tracer.enabled:
            self.tracer.emit(
                WorkerDeathEvent(
                    t=self.completed_slot + 1,
                    worker=handle.index,
                    policy=policy,
                    message=handle.error,
                )
            )
        if policy == "fail":
            detail = f": {handle.error}" if handle.error else ""
            raise RuntimeError(
                f"shard worker {handle.index} (edges {list(handle.edges)}) "
                f"died at slot {self.completed_slot + 1}{detail}; set "
                "on_worker_death='degrade' or 'restart' to complete without it"
            )
        if self._reconfiguring:
            # The barrier respawn below supersedes any healing: the dead
            # worker's edges fall back to their last checkpoint and catch
            # up over the already-folded slots.
            return
        if policy == "restart":
            used = self._restarts_used.get(handle.index, 0)
            if used < self.config.max_restarts:
                backoff = min(
                    self.config.restart_backoff_s * (2.0**used),
                    self.config.restart_backoff_max_s,
                )
                handle.restarting = True
                now = time.monotonic()
                self._death_ts[handle.index] = now
                self._restart_due[handle.index] = now + backoff
                self._restart_backoff[handle.index] = backoff
                return
        # Degrade (or a restart budget exhausted): synthesized offline
        # outcomes stand in for this shard for every remaining slot.
        handle.failed = True

    def _service_restarts(self) -> None:
        """Respawn every worker whose backoff ticket has come due."""
        if not self._restart_due:
            return
        now = time.monotonic()
        for w in [w for w, due in self._restart_due.items() if due <= now]:
            del self._restart_due[w]
            self._respawn(w)

    def _respawn(self, w: int) -> None:
        """Respawn worker ``w`` from its last-good state at the frontier.

        The new incarnation replays ``[replay_from, released + 1)`` as
        offline outcomes — every earlier slot of this shard either was
        already folded or sits in ``_pending`` from the dead incarnation's
        reported frames (pipe FIFO guarantees anything before the last
        checkpoint made it over) — and goes live right after the current
        release frontier, so the fold never double-counts a slot.
        """
        old = self._handles[w]
        used = self._restarts_used.get(w, 0) + 1
        self._restarts_used[w] = used
        backoff = self._restart_backoff.pop(w, 0.0)
        try:
            old.conn.close()
        except OSError:
            pass
        as_of = [
            payload[2]
            for payload in (self._edge_payloads.get(e) for e in old.edges)
            if payload is not None
        ]
        replay_from = max([self.completed_slot + 1, *as_of])
        start = self._released + 1
        handle = self._spawn_worker(
            w,
            old.edges,
            start=start,
            stop=self._stop_slot,
            replay_from=replay_from,
            generation=old.generation + 1,
        )
        handle.restarted = True
        self._handles[w] = handle
        for e in old.edges:
            self._owner[e] = handle
        self._restarts.increment()
        if self.tracer.enabled:
            self.tracer.emit(
                WorkerRestartEvent(
                    t=start,
                    worker=w,
                    replay_from=replay_from,
                    attempt=used,
                    backoff_s=backoff,
                )
            )
        # Hand the new incarnation the current release frontier: the
        # parent only broadcasts releases when the target advances, which
        # it might never do again near the end of the horizon.
        if self._released >= 0:
            try:
                send_frame(
                    handle.conn, {"type": RELEASE, "upto": self._released}
                )
            except (BrokenPipeError, OSError):
                pass  # an immediate death will surface via the sentinel

    def _check_stalls(self, handles: list[_Shard]) -> None:
        now = time.monotonic()
        for handle in handles:
            if not handle.running or handle.last_slot >= self._stop_slot - 1:
                continue
            if now - handle.last_frame > self._stall_timeout:
                handle.running = False
                handle.eof = True
                handle.process.terminate()
                self._on_death(handle)

    def _shutdown(self, handles: list[_Shard]) -> None:
        for handle in handles:
            if handle.running and not handle.eof:
                try:
                    send_frame(handle.conn, {"type": DRAIN})
                except (BrokenPipeError, OSError):
                    pass
        self._join_all(handles)

    def _join_all(self, handles: list[_Shard]) -> None:
        deadline = time.monotonic() + 10.0
        for handle in handles:
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.running = False
            try:
                handle.conn.close()
            except OSError:
                pass

    # -- live reconfiguration ----------------------------------------------

    def _apply_reconfig(self, barrier: int) -> None:
        """Drain, reshape, and respawn the fleet at a quiescent barrier.

        Every slot below ``barrier`` is folded and releases were capped at
        ``barrier - 1``, so each worker's kernels are settled at state
        ``barrier``: the drain checkpoint is exact, and a worker that dies
        mid-drain falls back to its last restart checkpoint (the slots in
        between were folded from real outcomes, which the deterministic
        catch-up re-steps bit-exactly).
        """
        assert self._reconfig is not None
        handles = self._handles
        # The full respawn below supersedes any pending restart tickets.
        self._restart_due.clear()
        self._restart_backoff.clear()
        self._death_ts.clear()
        self._state_frames = {}
        self._reconfiguring = True
        try:
            for handle in handles:
                if handle.running:
                    try:
                        send_frame(
                            handle.conn, {"type": RECONFIG, "barrier": barrier}
                        )
                    except (BrokenPipeError, OSError):
                        pass
            deadline = time.monotonic() + self._stall_timeout
            while any(
                h.running and h.index not in self._state_frames for h in handles
            ):
                if time.monotonic() > deadline:
                    missing = [
                        h.index
                        for h in handles
                        if h.running and h.index not in self._state_frames
                    ]
                    raise RuntimeError(
                        f"timed out draining shard workers {missing} at "
                        f"reconfig barrier {barrier}"
                    )
                self._poll(handles, timeout=0.1)
            self._join_all(handles)
        finally:
            self._reconfiguring = False
        for frame in self._state_frames.values():
            for e, kernel_state in frame["edges"].items():
                self._edge_payloads[e] = (
                    kernel_state,
                    frame["adapters"][e],
                    barrier,
                    "live",
                )
        self._state_frames = {}
        active = set(self._active)
        workers = self._num_workers
        old_count = len(active)
        for op in self._reconfig.ops_at(barrier):
            active, workers = apply_op(op, active, workers, self.num_edges)
            self._reconfigs.increment()
            if self.tracer.enabled:
                self.tracer.emit(
                    ReconfigAppliedEvent(
                        t=barrier,
                        op=op.kind,
                        edge=getattr(op, "edge", -1),
                        active_edges=len(active),
                        num_workers=workers,
                    )
                )
        self._active = tuple(sorted(active))
        self._num_workers = workers
        for e in range(self.num_edges):
            if e in active:
                continue
            payload = self._edge_payloads.get(e)
            if payload is None:
                self._edge_payloads[e] = (None, None, barrier, "offline")
            else:
                self._edge_payloads[e] = (*payload[:3], "offline")
        if len(active) != old_count:
            # Deterministic dual-state and trade-bound rescale; a factor
            # of 1.0 short-circuits, keeping no-op plans bit-exact.
            self.trading_kernel.rescale_fleet(len(active) / old_count)
        self.shards = self._partition(self._active, workers)
        new_handles = [
            self._spawn_worker(
                w,
                edges,
                start=barrier,
                stop=self._stop_slot,
                replay_from=barrier,
                generation=0,
            )
            for w, edges in enumerate(self.shards)
        ]
        self._handles[:] = new_handles
        self._owner = {e: h for h in new_handles for e in h.edges}
        self._await_ready(new_handles)

    # -- the slot fold -----------------------------------------------------

    def _next_barrier(self, completed: int) -> int | None:
        for b in self._barriers:
            if b > completed:
                return b
        return None

    def _release_target_for(self, completed: int) -> int:
        return release_target(
            completed,
            horizon=self.horizon,
            lockstep=self.config.virtual_clock,
            pipeline_depth=self.config.pipeline_depth,
            snapshot_every=self.config.snapshot_every,
            restart_state_every=(
                self.config.restart_state_every
                if self.config.on_worker_death == "restart"
                else 0
            ),
            barrier=self._next_barrier(completed),
        )

    def _release_through(self, target: int) -> None:
        if target <= self._released:
            return
        now = time.monotonic()
        tracer = self.tracer
        for t in range(self._released + 1, target + 1):
            self._release_ts[t] = now
            if tracer.enabled:
                tracer.emit(SlotStartEvent(t=t, horizon=self.horizon))
        frame = {"type": RELEASE, "upto": target}
        for handle in self._handles:
            if handle.running:
                try:
                    send_frame(handle.conn, frame)
                except (BrokenPipeError, OSError):
                    pass  # the death will surface via the sentinel
        self._released = target

    def _synthesize_offline(self, t: int, edge: int) -> EdgeSlotOutcome:
        return offline_outcome(t, edge, self._last_models.get(edge, -1))

    def _count(self, outcome: EdgeSlotOutcome) -> None:
        self._events_in.increment(outcome.arrivals)
        if outcome.offline:
            self._events_dropped_offline.increment(outcome.arrivals)
        elif outcome.shed:
            self._events_shed.increment(outcome.arrivals)
        else:
            self._events_served.increment(outcome.served)

    def _slot_complete(self, t: int) -> bool:
        bucket = self._pending.get(t, {})
        for e in range(self.num_edges):
            if e in bucket:
                continue
            owner = self._owner.get(e)
            if owner is None or owner.failed:
                continue  # inactive or degraded edge: the parent synthesizes
            # A live (or restarting — its replacement will replay) owner
            # still owes this slot.
            return False
        return True

    def _fold_ready(self) -> None:
        """Fold every slot whose outcomes (or death synthesis) are complete."""
        observe = self._on_stage_sample
        while self.completed_slot < self._stop_slot - 1:
            t = self.completed_slot + 1
            if not self._slot_complete(t):
                return
            bucket = self._pending.pop(t, {})
            outcomes = []
            for e in range(self.num_edges):
                outcome = bucket.get(e)
                if outcome is None:
                    outcome = self._synthesize_offline(t, e)
                self._count(outcome)
                outcomes.append(outcome)
            if self.ingress is not None:
                self._merge_ingress(t, observe)
            fold_start = time.monotonic()
            self.aggregator.fold(t, outcomes)
            folded = time.monotonic()
            if observe is not None:
                observe("trade", folded - fold_start)
                released_at = self._release_ts.pop(t, None)
                if released_at is not None:
                    observe("slot", folded - released_at)
            else:
                self._release_ts.pop(t, None)
            self.completed_slot = t
            self._slots_completed.increment()
            every = self.config.snapshot_every
            if every and (t + 1) % every == 0 and t + 1 < self.horizon:
                self._take_snapshot(t)
            if self._barriers and self._barriers[0] == t + 1:
                self._apply_reconfig(self._barriers.pop(0))
            self._release_through(self._release_target_for(t))

    def _merge_ingress(self, t: int, observe) -> None:
        """Fold slot ``t``'s resolved request stats into the run accounting.

        Runs exactly once per folded slot.  Parent-synthesized offline
        outcomes (degraded shards) carry no payload and need none: their
        requests were never generated, so ``requests_in`` never saw them
        and the accounting identity is waived while any worker is degraded
        (mirrors the ``total_events`` leg of the soak gate).  Deferral wait
        samples feed the ``on_stage_sample`` seam in units of *slots*.
        """
        assert self.ingress is not None
        for _, payload in sorted(self._pending_ingress.pop(t, {}).items()):
            self.ingress.absorb(payload)
            self._requests_in.increment(payload["in"])
            self._requests_dropped.increment(payload["dropped"])
            self._requests_deferred.increment(payload["deferred"])
            self._deadline_hits.increment(payload["hits"])
            self._deadline_misses.increment(payload["misses"])
            if observe is not None:
                for wait, count in sorted(payload["waits"].items()):
                    for _ in range(count):
                        observe("deferral", float(wait))

    def _take_snapshot(self, t: int) -> None:
        """Gather worker states at the quiescent boundary, persist one file.

        Degraded runs are not resumable — once any shard is dead, snapshots
        are skipped (the run still completes under ``degrade``).  Boundaries
        that race a pending or in-flight restart are skipped too: a
        replaying incarnation's kernels are not at the boundary state.
        """
        if self._restart_due or any(
            h.failed or h.restarting for h in self._handles
        ):
            return
        if any(h.live_from > t + 1 for h in self._handles):
            return  # a respawned worker is still past-due; skip this boundary
        self._state_frames = {}
        live = [h for h in self._handles if h.running]
        for handle in live:
            try:
                send_frame(handle.conn, {"type": SNAPSHOT_REQUEST})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + self._stall_timeout
        while True:
            waiting = [
                h for h in live if h.running and h.index not in self._state_frames
            ]
            if not waiting:
                break
            if any(h.failed or h.restarting for h in self._handles):
                return  # a death raced the snapshot; skip persisting
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"timed out waiting for shard state from "
                    f"{[h.index for h in waiting]}"
                )
            self._poll(self._handles, timeout=0.1)
        edges: list[object] = [None] * self.num_edges
        adapters: list[object] = [None] * self.num_edges
        for frame in self._state_frames.values():
            for e, kernel_state in frame["edges"].items():
                edges[e] = kernel_state
            for e, adapter_state in frame["adapters"].items():
                adapters[e] = adapter_state
        missing = [e for e in range(self.num_edges) if edges[e] is None]
        if missing:
            # Never persist a torn snapshot — resuming one would silently
            # corrupt the run.
            raise RuntimeError(
                f"snapshot at slot {t + 1} is missing state for edges "
                f"{missing}; a worker exited before answering"
            )
        state = {
            "label": self.label,
            "config": self.config.to_dict(),
            "next_slot": t + 1,
            "edges": edges,
            "adapters": adapters,
            "trading": self.trading_kernel.state_dict(),
            "arrays": self.aggregator.partial_arrays(t + 1),
        }
        path = self.config.snapshot_path
        assert path is not None  # enforced by ServeConfig validation
        save_snapshot(path, state)
        self._snapshots_taken.increment()
        if self.tracer.enabled:
            self.tracer.emit(SnapshotEvent(t=t, path=str(path)))


# --------------------------------------------------------------------------
# Dispatchers
# --------------------------------------------------------------------------


def make_runtime(
    config: ServeConfig,
    *,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
    **shard_kwargs,
) -> ServeRuntime | ShardRuntime:
    """The runtime matching ``config.num_workers`` (1 = in-process).

    Chaos and reconfig plans are shard-runtime features: passing either
    forces the sharded supervisor even for a single worker.
    """
    sharded = config.num_workers > 1 or any(
        shard_kwargs.get(key) is not None for key in ("chaos", "reconfig")
    )
    if sharded:
        return ShardRuntime(config, tracer=tracer, faults=faults, **shard_kwargs)
    return ServeRuntime(config, tracer=tracer, faults=faults)


def runtime_from_snapshot(
    path: str | Path,
    *,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
    **shard_kwargs,
) -> ServeRuntime | ShardRuntime:
    """Resume whichever runtime class the snapshot's config asks for."""
    state = load_snapshot(path)
    config = ServeConfig.from_dict(state["config"])
    sharded = config.num_workers > 1 or any(
        shard_kwargs.get(key) is not None for key in ("chaos", "reconfig")
    )
    if sharded:
        return ShardRuntime.from_snapshot(
            path, tracer=tracer, faults=faults, **shard_kwargs
        )
    return ServeRuntime.from_snapshot(path, tracer=tracer, faults=faults)
