"""Deterministic chaos plans for the sharded edge tier.

A *chaos plan* declares, ahead of a soak or serve run, which
infrastructure failures the shard supervisor must heal through.  It
mirrors :mod:`repro.faults.plan` — frozen spec dataclasses with stable
``kind`` tags in a JSON-round-trippable container — but targets the
*process* layer rather than the simulated system:

* :class:`WorkerKill` — worker ``worker`` dies abruptly (``os._exit``,
  SIGKILL-like: its current slot goes unreported) when it batches slot
  ``at``.
* :class:`WorkerStall` — worker ``worker`` blocks its event loop for
  ``seconds`` when it batches slot ``at`` — heartbeats stop too, which is
  the point: a stalled worker looks exactly like a hung one.
* :class:`TransportDrop` — ``count`` consecutive frame transmissions in
  worker ``worker`` fail with a transient ``EINTR`` starting at slot
  ``at``, exercising the bounded retry in :mod:`repro.serve.frames`.
* :class:`RandomKills` — seeded probabilistic kills: each worker draws
  one uniform variate per slot in ``[start, end)`` from the named stream
  ``"random_kills-<spec index>"`` and dies at the first slot whose draw
  falls below ``probability`` (at most ``max_per_worker`` kills each).

:func:`realize` resolves a plan against a concrete fleet into one
:class:`WorkerChaos` schedule per worker — a pure function of
``(plan, num_workers, horizon, seed)``, so a chaos run is bit-reproducible
and an empty plan realizes to nothing.  Schedules are keyed by the worker
indices of the fleet at run start; a respawned worker incarnation inherits
its predecessor's schedule but only *live* slots trigger injections, so a
kill consumed before a restart does not re-fire during replay.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

from repro.utils.rng import RngFactory

__all__ = [
    "CHAOS_KINDS",
    "ChaosPlan",
    "ChaosSpec",
    "RandomKills",
    "TransportDrop",
    "WorkerChaos",
    "WorkerKill",
    "WorkerStall",
    "load_chaos_plan",
    "realize",
    "register_chaos",
]

#: Registry of chaos kind tag -> spec class, populated by ``register_chaos``.
CHAOS_KINDS: dict[str, type["ChaosSpec"]] = {}


def register_chaos(cls: type["ChaosSpec"]) -> type["ChaosSpec"]:
    """Class decorator adding a chaos spec to :data:`CHAOS_KINDS`."""
    if cls.kind in CHAOS_KINDS:
        raise ValueError(f"duplicate chaos kind tag {cls.kind!r}")
    CHAOS_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class ChaosSpec:
    """Base chaos spec: one declared process-layer failure."""

    #: Stable wire tag written to the ``"kind"`` key of the JSON form.
    kind: ClassVar[str] = "chaos"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping: the fields plus the ``"kind"`` tag."""
        return {"kind": self.kind, **dataclasses.asdict(self)}


@register_chaos
@dataclass(frozen=True)
class WorkerKill(ChaosSpec):
    """Worker ``worker`` dies abruptly when it batches slot ``at``."""

    worker: int
    at: int

    kind: ClassVar[str] = "worker_kill"

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be non-negative, got {self.worker}")
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")


@register_chaos
@dataclass(frozen=True)
class WorkerStall(ChaosSpec):
    """Worker ``worker`` blocks its loop for ``seconds`` at slot ``at``."""

    worker: int
    at: int
    seconds: float

    kind: ClassVar[str] = "worker_stall"

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be non-negative, got {self.worker}")
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be positive, got {self.seconds}")


@register_chaos
@dataclass(frozen=True)
class TransportDrop(ChaosSpec):
    """``count`` frame sends in worker ``worker`` fail transiently at ``at``."""

    worker: int
    at: int
    count: int = 1

    kind: ClassVar[str] = "transport_drop"

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be non-negative, got {self.worker}")
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@register_chaos
@dataclass(frozen=True)
class RandomKills(ChaosSpec):
    """Seeded probabilistic worker kills over slots ``[start, end)``.

    ``end=None`` means the horizon.  Realized from the named RNG stream
    ``"random_kills-<spec index>"`` so two runs of the same plan and seed
    inject identical kills.
    """

    probability: float
    start: int = 0
    end: int | None = None
    max_per_worker: int = 1

    kind: ClassVar[str] = "random_kills"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"window [{self.start}, {self.end}) is empty or inverted"
            )
        if self.max_per_worker < 1:
            raise ValueError(
                f"max_per_worker must be >= 1, got {self.max_per_worker}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable collection of chaos specs for one run."""

    specs: tuple[ChaosSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, ChaosSpec):
                raise TypeError(
                    f"chaos plan entries must be ChaosSpec, got {spec!r}"
                )

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def to_dict(self) -> dict[str, object]:
        return {"chaos": [spec.as_dict() for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosPlan":
        entries = payload.get("chaos", [])
        specs = []
        for entry in entries:
            fields = dict(entry)
            kind = fields.pop("kind", None)
            spec_cls = CHAOS_KINDS.get(kind)
            if spec_cls is None:
                raise ValueError(
                    f"unknown chaos kind {kind!r}; "
                    f"expected one of {sorted(CHAOS_KINDS)}"
                )
            try:
                specs.append(spec_cls(**fields))
            except TypeError as exc:
                raise ValueError(f"bad chaos spec {entry!r}: {exc}") from exc
        return cls(specs=tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("chaos plan JSON must hold an object")
        return cls.from_dict(payload)


def load_chaos_plan(path: str | Path) -> ChaosPlan:
    """Load a :class:`ChaosPlan` from a JSON file."""
    return ChaosPlan.from_json(Path(path).read_text(encoding="utf-8"))


@dataclass(frozen=True)
class WorkerChaos:
    """One worker's realized injection schedule (picklable, spawn-safe).

    ``kills`` are slot indices; ``stalls`` maps slot -> blocking seconds;
    ``drops`` maps slot -> number of transient transport faults to arm.
    """

    kills: tuple[int, ...] = ()
    stalls: tuple[tuple[int, float], ...] = ()
    drops: tuple[tuple[int, int], ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.kills or self.stalls or self.drops)


def realize(
    plan: ChaosPlan | None,
    *,
    num_workers: int,
    horizon: int,
    seed: int,
) -> dict[int, WorkerChaos]:
    """Resolve ``plan`` into one :class:`WorkerChaos` per targeted worker.

    Deterministic in ``(plan, num_workers, horizon, seed)``; specs naming
    workers outside ``range(num_workers)`` are ignored (a plan written for
    a larger fleet stays loadable on a smaller one).
    """
    if plan is None or plan.is_empty:
        return {}
    kills: dict[int, set[int]] = {}
    stalls: dict[int, dict[int, float]] = {}
    drops: dict[int, dict[int, int]] = {}
    rng = RngFactory(seed)
    for i, spec in enumerate(plan.specs):
        if isinstance(spec, WorkerKill):
            if spec.worker < num_workers:
                kills.setdefault(spec.worker, set()).add(spec.at)
        elif isinstance(spec, WorkerStall):
            if spec.worker < num_workers:
                stalls.setdefault(spec.worker, {})[spec.at] = spec.seconds
        elif isinstance(spec, TransportDrop):
            if spec.worker < num_workers:
                per = drops.setdefault(spec.worker, {})
                per[spec.at] = per.get(spec.at, 0) + spec.count
        elif isinstance(spec, RandomKills):
            end = horizon if spec.end is None else min(spec.end, horizon)
            if end <= spec.start:
                continue
            stream = rng.get(f"{spec.kind}-{i}")
            draws = stream.random((num_workers, end - spec.start))
            for w in range(num_workers):
                hits = [
                    spec.start + int(j)
                    for j in (draws[w] < spec.probability).nonzero()[0]
                ]
                for at in hits[: spec.max_per_worker]:
                    kills.setdefault(w, set()).add(at)
    schedules: dict[int, WorkerChaos] = {}
    for w in set(kills) | set(stalls) | set(drops):
        schedules[w] = WorkerChaos(
            kills=tuple(sorted(kills.get(w, ()))),
            stalls=tuple(sorted(stalls.get(w, {}).items())),
            drops=tuple(sorted(drops.get(w, {}).items())),
        )
    return schedules
