"""Length-prefixed pickle frames between the shard parent and its workers.

The wire protocol of :mod:`repro.serve.shard`.  A frame is a plain dict
with a ``"type"`` key, pickled and written with
``multiprocessing.Connection.send_bytes`` — the OS pipe carries a 4-byte
length header before each payload, so frames are explicitly
length-prefixed and a dead peer surfaces as ``EOFError`` on the next read
rather than a torn message.

Frame vocabulary (all carry ``"worker"`` where a sender index matters):

=====================  ======  ==================================================
type                   dir     payload
=====================  ======  ==================================================
``ready``              w -> p  worker built its kernels and entered its loop
``release``            p -> w  ``upto``: run slots through this index
``slot``               w -> p  ``t``, ``outcomes`` (edge order within the
                               shard), ``queue_s``/``serve_s`` per-edge stage
                               latencies in seconds
``heartbeat``          w -> p  liveness proof while slots are long
``snapshot_request``   p -> w  capture kernel/adapter state at the (quiescent)
                               boundary
``state``              w -> p  ``edges``/``adapters``: per-edge state dicts
``drain``              p -> w  finish sending, then exit cleanly
``bye``                w -> p  clean exit imminent; EOF after this is not a death
``error``              w -> p  ``message``/``traceback``: a task crashed
=====================  ======  ==================================================

Frames deliberately carry picklable simulator objects (outcomes, state
dicts) rather than JSON projections: the parent folds the *same*
:class:`~repro.sim.kernel.EdgeSlotOutcome` values an in-process run would,
which is what keeps sharded virtual-clock runs bit-identical to
``Simulator.run``.
"""

from __future__ import annotations

import pickle
from multiprocessing.connection import Connection
from typing import Iterator

__all__ = [
    "BYE",
    "DRAIN",
    "ERROR",
    "FRAME_TYPES",
    "HEARTBEAT",
    "READY",
    "RELEASE",
    "SLOT",
    "SNAPSHOT_REQUEST",
    "STATE",
    "drain_frames",
    "recv_frame",
    "send_frame",
]

READY = "ready"
RELEASE = "release"
SLOT = "slot"
HEARTBEAT = "heartbeat"
SNAPSHOT_REQUEST = "snapshot_request"
STATE = "state"
DRAIN = "drain"
BYE = "bye"
ERROR = "error"

#: Every frame type either side may legally send.
FRAME_TYPES = (
    READY,
    RELEASE,
    SLOT,
    HEARTBEAT,
    SNAPSHOT_REQUEST,
    STATE,
    DRAIN,
    BYE,
    ERROR,
)


def send_frame(conn: Connection, frame: dict) -> None:
    """Pickle ``frame`` and write it as one length-prefixed message."""
    if frame.get("type") not in FRAME_TYPES:
        raise ValueError(
            f"frame type {frame.get('type')!r} is not one of {FRAME_TYPES}"
        )
    conn.send_bytes(pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL))


def recv_frame(conn: Connection) -> dict:
    """Read one frame; raises ``EOFError`` when the peer is gone."""
    frame = pickle.loads(conn.recv_bytes())
    if not isinstance(frame, dict) or frame.get("type") not in FRAME_TYPES:
        raise ValueError(f"malformed frame on the wire: {frame!r}")
    return frame


def drain_frames(conn: Connection) -> Iterator[dict]:
    """Yield every frame already buffered on ``conn`` without blocking.

    Stops at an ``EOFError`` (peer closed) so callers can drain the last
    frames of a dying worker before handling its death.
    """
    while True:
        try:
            if not conn.poll():
                return
            yield recv_frame(conn)
        except (EOFError, OSError):
            return
