"""Length-prefixed pickle frames between the shard parent and its workers.

The wire protocol of :mod:`repro.serve.shard`.  A frame is a plain dict
with a ``"type"`` key, pickled and written with
``multiprocessing.Connection.send_bytes`` — the OS pipe carries a 4-byte
length header before each payload, so frames are explicitly
length-prefixed and a dead peer surfaces as ``EOFError`` on the next read
rather than a torn message.

Frame vocabulary (all carry ``"worker"`` where a sender index matters):

=====================  ======  ==================================================
type                   dir     payload
=====================  ======  ==================================================
``ready``              w -> p  worker built its kernels and entered its loop
``release``            p -> w  ``upto``: run slots through this index
``slot``               w -> p  ``t``, ``outcomes`` (edge order within the
                               shard), ``queue_s``/``serve_s`` per-edge stage
                               latencies in seconds
``heartbeat``          w -> p  liveness proof while slots are long
``snapshot_request``   p -> w  capture kernel/adapter state at the (quiescent)
                               boundary
``state``              w -> p  ``edges``/``adapters``: per-edge state dicts
``restart_state``      w -> p  ``next_slot``, ``edges``/``adapters``: a
                               restart checkpoint captured at a quiescent
                               restart boundary (``restart_state_every``)
``reconfig``           p -> w  ``barrier``: capture state, answer with
                               ``state`` then ``bye``, and exit — the fleet
                               is being repartitioned at this slot
``drain``              p -> w  finish sending, then exit cleanly
``bye``                w -> p  clean exit imminent; EOF after this is not a death
``error``              w -> p  ``message``/``traceback``: a task crashed
=====================  ======  ==================================================

Frames deliberately carry picklable simulator objects (outcomes, state
dicts) rather than JSON projections: the parent folds the *same*
:class:`~repro.sim.kernel.EdgeSlotOutcome` values an in-process run would,
which is what keeps sharded virtual-clock runs bit-identical to
``Simulator.run``.

Transient transport errors (``EINTR``-style interrupted syscalls,
momentary ``EAGAIN``) are retried in place with capped exponential
backoff rather than surfacing as a worker death — only a genuine
``EOFError``/``BrokenPipeError`` (the peer is gone) propagates.  The
chaos harness injects exactly these transient errors through
:func:`arm_transport_faults` to exercise the retry path end to end.
"""

from __future__ import annotations

import errno
import pickle
import time
from multiprocessing.connection import Connection
from typing import Iterator

__all__ = [
    "BYE",
    "DRAIN",
    "ERROR",
    "FRAME_TYPES",
    "HEARTBEAT",
    "READY",
    "RECONFIG",
    "RELEASE",
    "RESTART_STATE",
    "SLOT",
    "SNAPSHOT_REQUEST",
    "STATE",
    "TRANSPORT_RETRIES",
    "arm_transport_faults",
    "drain_frames",
    "recv_frame",
    "send_frame",
]

READY = "ready"
RELEASE = "release"
SLOT = "slot"
HEARTBEAT = "heartbeat"
SNAPSHOT_REQUEST = "snapshot_request"
STATE = "state"
RESTART_STATE = "restart_state"
RECONFIG = "reconfig"
DRAIN = "drain"
BYE = "bye"
ERROR = "error"

#: Every frame type either side may legally send.
FRAME_TYPES = (
    READY,
    RELEASE,
    SLOT,
    HEARTBEAT,
    SNAPSHOT_REQUEST,
    STATE,
    RESTART_STATE,
    RECONFIG,
    DRAIN,
    BYE,
    ERROR,
)

#: Retries for a transient transport error before it propagates.
TRANSPORT_RETRIES = 5

#: First retry pause in seconds; doubles per attempt (2ms, 4ms, 8ms, ...).
TRANSPORT_BACKOFF_S = 0.002

#: Errnos that mean "interrupted / try again", not "peer is gone".
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.EWOULDBLOCK})

#: Remaining injected transient faults (chaos harness); module-local to the
#: process that armed it, so a worker's injection never leaks to the parent.
_fault_budget = 0


def arm_transport_faults(count: int) -> None:
    """Make the next ``count`` frame sends/receives in this process fail
    once each with ``InterruptedError`` before succeeding on retry."""
    global _fault_budget
    _fault_budget = int(count)


def _maybe_inject_fault() -> None:
    global _fault_budget
    if _fault_budget > 0:
        _fault_budget -= 1
        raise InterruptedError(errno.EINTR, "injected transient transport fault")


def _transient(exc: OSError) -> bool:
    if isinstance(exc, (InterruptedError, BlockingIOError)):
        return True
    return exc.errno in _TRANSIENT_ERRNOS


def _retry_pause(attempt: int) -> None:
    time.sleep(TRANSPORT_BACKOFF_S * (2**attempt))


def send_frame(conn: Connection, frame: dict) -> None:
    """Pickle ``frame`` and write it as one length-prefixed message.

    Transient transport errors are retried ``TRANSPORT_RETRIES`` times
    with exponential backoff; a dead peer (``BrokenPipeError``) is not
    transient and propagates immediately.
    """
    if frame.get("type") not in FRAME_TYPES:
        raise ValueError(
            f"frame type {frame.get('type')!r} is not one of {FRAME_TYPES}"
        )
    payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    for attempt in range(TRANSPORT_RETRIES + 1):
        try:
            _maybe_inject_fault()
            conn.send_bytes(payload)
            return
        except BrokenPipeError:
            raise
        except OSError as exc:
            if not _transient(exc) or attempt == TRANSPORT_RETRIES:
                raise
            _retry_pause(attempt)


def recv_frame(conn: Connection) -> dict:
    """Read one frame; raises ``EOFError`` when the peer is gone.

    Transient read errors (interrupted syscalls) are retried like sends;
    ``EOFError`` means the peer closed and is never retried.
    """
    for attempt in range(TRANSPORT_RETRIES + 1):
        try:
            _maybe_inject_fault()
            payload = conn.recv_bytes()
            break
        except EOFError:
            raise
        except OSError as exc:
            if not _transient(exc) or attempt == TRANSPORT_RETRIES:
                raise
            _retry_pause(attempt)
    frame = pickle.loads(payload)
    if not isinstance(frame, dict) or frame.get("type") not in FRAME_TYPES:
        raise ValueError(f"malformed frame on the wire: {frame!r}")
    return frame


def drain_frames(conn: Connection) -> Iterator[dict]:
    """Yield every frame already buffered on ``conn`` without blocking.

    Stops at an ``EOFError`` (peer closed) so callers can drain the last
    frames of a dying worker before handling its death.
    """
    while True:
        try:
            if not conn.poll():
                return
            yield recv_frame(conn)
        except (EOFError, OSError):
            return
