"""repro.serve: the async streaming edge-fleet runtime.

Runs Algorithm 1 (per-edge online model selection) and Algorithm 2 (central
carbon-allowance trading) as long-lived asyncio tasks over pluggable stream
adapters, with bounded-queue backpressure, periodic snapshot/restore, a
stdlib health endpoint, and a deterministic virtual-clock mode that is
bit-identical to :meth:`repro.sim.simulator.Simulator.run`.
"""

from repro.serve.adapters import (
    DatasetAdapter,
    PoissonAdapter,
    StreamAdapter,
    TraceReplayAdapter,
    arrival_counts_from_trace,
    make_adapters,
)
from repro.serve.clock import SlotClock, VirtualClock, WallClock
from repro.serve.config import ServeConfig
from repro.serve.http import StatusServer
from repro.serve.queues import BoundedWorkQueue, QueueStats, WorkItem
from repro.serve.runtime import ServeRuntime, serve_run
from repro.serve.snapshot import SNAPSHOT_VERSION, load_snapshot, save_snapshot

__all__ = [
    "SNAPSHOT_VERSION",
    "BoundedWorkQueue",
    "DatasetAdapter",
    "PoissonAdapter",
    "QueueStats",
    "ServeConfig",
    "ServeRuntime",
    "SlotClock",
    "StatusServer",
    "StreamAdapter",
    "TraceReplayAdapter",
    "VirtualClock",
    "WallClock",
    "WorkItem",
    "arrival_counts_from_trace",
    "load_snapshot",
    "make_adapters",
    "save_snapshot",
    "serve_run",
]
