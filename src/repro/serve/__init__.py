"""repro.serve: the async streaming edge-fleet runtime.

Runs Algorithm 1 (per-edge online model selection) and Algorithm 2 (central
carbon-allowance trading) as long-lived asyncio tasks over pluggable stream
adapters, with bounded-queue backpressure, periodic snapshot/restore, a
stdlib health endpoint, and a deterministic virtual-clock mode that is
bit-identical to :meth:`repro.sim.simulator.Simulator.run`.

The edge tier also runs *process-sharded* (:mod:`repro.serve.shard`):
edges partitioned across worker processes behind the same coordinator
protocol, with identical virtual-clock results, and a wall-clock soak
harness (:mod:`repro.serve.soak`, ``repro soak``) that drives the shards
under deterministic load shapes (:mod:`repro.serve.load`).
"""

from repro.serve.adapters import (
    DatasetAdapter,
    PoissonAdapter,
    ShapeAdapter,
    StreamAdapter,
    TraceReplayAdapter,
    arrival_counts_from_trace,
    make_adapters,
)
from repro.serve.chaos import (
    ChaosPlan,
    RandomKills,
    TransportDrop,
    WorkerChaos,
    WorkerKill,
    WorkerStall,
    load_chaos_plan,
)
from repro.serve.chaos import realize as realize_chaos
from repro.serve.clock import SlotClock, VirtualClock, WallClock, release_target
from repro.serve.config import ServeConfig
from repro.serve.http import StatusServer
from repro.serve.load import SHAPE_NAMES, make_load_grid, shape_profile
from repro.serve.queues import BoundedWorkQueue, QueueStats, WorkItem
from repro.serve.reconfig import (
    AddEdge,
    Rebalance,
    ReconfigPlan,
    RemoveEdge,
    load_reconfig_plan,
)
from repro.serve.runtime import (
    ServeRuntime,
    SlotAggregator,
    build_serve_kernels,
    serve_run,
)
from repro.serve.shard import (
    ShardRuntime,
    make_runtime,
    runtime_from_snapshot,
    shard_edges,
)
from repro.serve.snapshot import SNAPSHOT_VERSION, load_snapshot, save_snapshot
from repro.serve.soak import SoakReport, run_soak, run_soak_suite

__all__ = [
    "SHAPE_NAMES",
    "SNAPSHOT_VERSION",
    "AddEdge",
    "BoundedWorkQueue",
    "ChaosPlan",
    "DatasetAdapter",
    "PoissonAdapter",
    "QueueStats",
    "RandomKills",
    "Rebalance",
    "ReconfigPlan",
    "RemoveEdge",
    "ServeConfig",
    "ServeRuntime",
    "ShapeAdapter",
    "ShardRuntime",
    "SlotAggregator",
    "SlotClock",
    "SoakReport",
    "StatusServer",
    "StreamAdapter",
    "TraceReplayAdapter",
    "TransportDrop",
    "VirtualClock",
    "WallClock",
    "WorkItem",
    "WorkerChaos",
    "WorkerKill",
    "WorkerStall",
    "arrival_counts_from_trace",
    "build_serve_kernels",
    "load_chaos_plan",
    "load_reconfig_plan",
    "load_snapshot",
    "make_adapters",
    "make_load_grid",
    "make_runtime",
    "realize_chaos",
    "release_target",
    "run_soak",
    "run_soak_suite",
    "runtime_from_snapshot",
    "save_snapshot",
    "serve_run",
    "shape_profile",
    "shard_edges",
]
