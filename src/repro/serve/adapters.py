"""Stream adapters: where each edge's per-slot workload comes from.

Four sources, all reusing existing subsystems:

* :class:`PoissonAdapter` — synthetic arrivals from the scenario's workload
  trace via :class:`repro.data.streams.ArrivalProcess` (the simulator's own
  ``arrivals-<edge>`` stream, so serve runs see the identical workload);
* :class:`TraceReplayAdapter` — counts replayed verbatim from the
  ``arrival`` events of a recorded JSONL trace (:mod:`repro.obs`);
* :class:`ShapeAdapter` — counts from a seeded load-shape grid
  (:mod:`repro.serve.load`) for the soak harness;
* :class:`DatasetAdapter` — arrivals plus *pre-drawn* data-pool indices
  from the edge's ``data-<edge>`` stream, for dataset-backed (MNIST/CIFAR
  via :mod:`repro.nn`) serving where the adapter owns sample selection.
  The kernel skips its own draw when indices are provided, and the adapter
  consumes the same generator the kernel would have — determinism holds
  either way.

Adapters are synchronous, picklable state machines; the async feeder tasks
in :mod:`repro.serve.runtime` drive them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.streams import ArrivalProcess
from repro.obs.sinks import read_events
from repro.serve.queues import WorkItem
from repro.sim.kernel import EdgeSlotKernel, draw_pool_indices
from repro.sim.scenario import Scenario

__all__ = [
    "DatasetAdapter",
    "PoissonAdapter",
    "ShapeAdapter",
    "StreamAdapter",
    "TraceReplayAdapter",
    "arrival_counts_from_trace",
    "make_adapters",
]


class StreamAdapter:
    """Base adapter: produces one :class:`WorkItem` per slot, in order."""

    name = "base"

    def __init__(self, edge: int) -> None:
        self.edge = int(edge)

    def next_item(self, t: int) -> WorkItem:
        """The slot-``t`` workload for this adapter's edge."""
        raise NotImplementedError

    def state_dict(self) -> dict[str, object]:
        """Picklable resume state (default: stateless)."""
        return {}

    def load_state(self, state: dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict` (default: nothing)."""


class PoissonAdapter(StreamAdapter):
    """Synthetic Poisson arrivals over the scenario's workload trace."""

    name = "poisson"

    def __init__(self, edge: int, arrivals: ArrivalProcess) -> None:
        super().__init__(edge)
        self.arrivals = arrivals

    def next_item(self, t: int) -> WorkItem:
        return WorkItem(t=t, count=self.arrivals.sample(t))

    def state_dict(self) -> dict[str, object]:
        return {"arrivals": self.arrivals}

    def load_state(self, state: dict[str, object]) -> None:
        self.arrivals = state["arrivals"]


class TraceReplayAdapter(StreamAdapter):
    """Replays recorded per-slot arrival counts from a JSONL trace.

    Stateless by construction: the count for slot ``t`` is a pure lookup,
    so snapshots need not capture anything and a restored run continues
    from any slot.
    """

    name = "replay"

    def __init__(self, edge: int, counts: np.ndarray) -> None:
        super().__init__(edge)
        self.counts = np.asarray(counts, dtype=int)

    def next_item(self, t: int) -> WorkItem:
        return WorkItem(t=t, count=int(self.counts[t]))


class ShapeAdapter(TraceReplayAdapter):
    """Replays a deterministic load-shape grid (:mod:`repro.serve.load`).

    Mechanically a :class:`TraceReplayAdapter` over a generated count
    column: stateless, snapshot-free, and rebuildable from the serve config
    alone — sharded workers derive their own columns without shipping the
    grid over the pipe.
    """

    name = "shape"


class DatasetAdapter(StreamAdapter):
    """Arrivals plus pre-drawn pool indices for dataset-backed serving.

    Shares the edge kernel's ``data-<edge>`` generator: the draw the kernel
    would have made happens here instead, one slot earlier in the pipeline
    but in the same per-edge order — the stream consumption is identical.
    """

    name = "dataset"

    def __init__(
        self,
        edge: int,
        arrivals: ArrivalProcess,
        scenario: Scenario,
        data_rng: np.random.Generator,
        class_indices: list[np.ndarray] | None,
    ) -> None:
        super().__init__(edge)
        self.arrivals = arrivals
        self.scenario = scenario
        self.data_rng = data_rng
        self.class_indices = class_indices
        self.pool_size = scenario.profiles[0].pool_size

    def next_item(self, t: int) -> WorkItem:
        count = self.arrivals.sample(t)
        indices = draw_pool_indices(
            self.scenario,
            self.edge,
            count,
            self.data_rng,
            self.pool_size,
            self.class_indices,
        )
        return WorkItem(t=t, count=count, indices=indices)

    def state_dict(self) -> dict[str, object]:
        # data_rng is the kernel's generator; pickled in the same snapshot
        # payload, the shared identity survives the round-trip.
        return {"arrivals": self.arrivals, "data_rng": self.data_rng}

    def load_state(self, state: dict[str, object]) -> None:
        self.arrivals = state["arrivals"]
        self.data_rng = state["data_rng"]


def arrival_counts_from_trace(
    path: str | Path, *, horizon: int, num_edges: int
) -> np.ndarray:
    """Extract the ``(horizon, num_edges)`` arrival-count grid from a trace.

    Every cell must be covered by exactly one ``arrival`` event — a partial
    trace cannot drive a full replay, and duplicates would mask a corrupt
    log.
    """
    counts = np.full((horizon, num_edges), -1, dtype=int)
    for event in read_events(path):
        if event.type != "arrival":
            continue
        t, edge = int(event.t), int(event.edge)
        if not (0 <= t < horizon and 0 <= edge < num_edges):
            raise ValueError(
                f"trace arrival at (t={t}, edge={edge}) is outside the "
                f"({horizon}, {num_edges}) grid"
            )
        if counts[t, edge] >= 0:
            raise ValueError(
                f"duplicate arrival event at (t={t}, edge={edge})"
            )
        counts[t, edge] = int(event.count)
    missing = int((counts < 0).sum())
    if missing:
        raise ValueError(
            f"trace covers only {counts.size - missing} of {counts.size} "
            f"(slot, edge) cells; cannot replay a partial trace"
        )
    return counts


def make_adapters(
    name: str,
    scenario: Scenario,
    arrival_processes: list[ArrivalProcess],
    edge_kernels: list[EdgeSlotKernel],
    *,
    replay_log: str | Path | None = None,
    load_counts: np.ndarray | None = None,
) -> list[StreamAdapter]:
    """Build one adapter per edge for the named source."""
    num_edges = scenario.num_edges
    if name == "shape":
        if load_counts is None:
            raise ValueError(
                'adapter "shape" requires a load grid '
                "(see repro.serve.load.make_load_grid)"
            )
        counts = np.asarray(load_counts, dtype=int)
        if counts.shape != (scenario.horizon, num_edges):
            raise ValueError(
                f"load grid shape {counts.shape} does not match "
                f"({scenario.horizon}, {num_edges})"
            )
        return [ShapeAdapter(i, counts[:, i]) for i in range(num_edges)]
    if name == "poisson":
        return [
            PoissonAdapter(i, arrival_processes[i]) for i in range(num_edges)
        ]
    if name == "replay":
        if replay_log is None:
            raise ValueError('adapter "replay" requires a trace path')
        counts = arrival_counts_from_trace(
            replay_log, horizon=scenario.horizon, num_edges=num_edges
        )
        return [
            TraceReplayAdapter(i, counts[:, i]) for i in range(num_edges)
        ]
    if name == "dataset":
        return [
            DatasetAdapter(
                i,
                arrival_processes[i],
                scenario,
                edge_kernels[i].data_rng,
                edge_kernels[i].class_indices,
            )
            for i in range(num_edges)
        ]
    raise ValueError(f"unknown adapter {name!r}")
