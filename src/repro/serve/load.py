"""Deterministic load-shape grids for the soak harness.

A load shape turns ``(shape, horizon, num_edges, total_events, seed)`` into
a ``(horizon, num_edges)`` integer arrival grid.  The grid is a pure
function of those five values — every process that knows the serve config
can rebuild the identical workload, which is what lets sharded workers
derive their own feed without any grid bytes crossing the pipe.

Three guarantees, locked by ``tests/test_soak_properties.py``:

* **conservation** — the grid sums to exactly ``total_events``, achieved by
  largest-remainder rounding of the real-valued shape profile (floor
  quotas, then one extra event to the cells with the largest fractional
  parts, ties broken by cell index);
* **reproducibility** — the per-cell jitter stream comes from
  :class:`repro.utils.rng.RngFactory`, so equal seeds give bit-equal grids;
* **non-negativity** — profiles are strictly positive before rounding and
  floors cannot go below zero.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngFactory

__all__ = ["SHAPE_NAMES", "make_load_grid", "shape_profile"]

#: Load shapes the soak harness can generate.
SHAPE_NAMES = ("constant", "sawtooth", "spike", "step")

#: Default multiplicative jitter half-width applied per (slot, edge) cell.
DEFAULT_JITTER = 0.2


def shape_profile(shape: str, horizon: int) -> np.ndarray:
    """The per-slot relative intensity of a named shape (length ``horizon``).

    Profiles are strictly positive and dimensionless; :func:`make_load_grid`
    scales them to the requested event total.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    t = np.arange(horizon, dtype=float)
    if shape == "constant":
        return np.ones(horizon)
    if shape == "sawtooth":
        # Rising ramps, four teeth across the horizon (at least 4 slots each).
        period = max(4, horizon // 4)
        return 1.0 + np.mod(t, period)
    if shape == "spike":
        # Quiet baseline with one 20x burst window around mid-horizon.
        profile = np.ones(horizon)
        width = max(1, horizon // 16)
        start = horizon // 2
        profile[start : start + width] = 20.0
        return profile
    if shape == "step":
        # Low first half, 4x second half — the classic capacity step.
        profile = np.ones(horizon)
        profile[horizon // 2 :] = 4.0
        return profile
    raise ValueError(
        f"unknown load shape {shape!r}; expected one of {SHAPE_NAMES}"
    )


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Integerize ``weights`` to sum exactly to ``total`` (non-negative).

    Floor the proportional quotas, then hand the remaining events to the
    cells with the largest fractional parts; the stable sort makes the
    tie-break (lower flat index first) deterministic.
    """
    quotas = weights / weights.sum() * float(total)
    base = np.floor(quotas).astype(np.int64)
    remainder = int(total - base.sum())
    if remainder:
        fractions = quotas - base
        order = np.argsort(-fractions, kind="stable")
        base[order[:remainder]] += 1
    return base


def make_load_grid(
    shape: str,
    *,
    horizon: int,
    num_edges: int,
    total_events: int,
    seed: int = 0,
    jitter: float = DEFAULT_JITTER,
) -> np.ndarray:
    """A ``(horizon, num_edges)`` arrival grid for the named shape.

    The slot profile is broadcast across edges, each cell multiplied by a
    seeded jitter factor in ``[1 - jitter, 1 + jitter]`` so edges are not
    mirror images of each other, then integerized with exact conservation:
    ``grid.sum() == total_events`` always holds.
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    if total_events < 0:
        raise ValueError(
            f"total_events must be non-negative, got {total_events}"
        )
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    profile = shape_profile(shape, horizon)
    weights = np.repeat(profile[:, None], num_edges, axis=1)
    if jitter:
        rng = RngFactory(seed).child("load").get(f"jitter-{shape}")
        weights = weights * rng.uniform(
            1.0 - jitter, 1.0 + jitter, size=weights.shape
        )
    if total_events == 0:
        return np.zeros((horizon, num_edges), dtype=np.int64)
    flat = _largest_remainder(weights.ravel(), total_events)
    return flat.reshape(horizon, num_edges)
